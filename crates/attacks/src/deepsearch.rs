//! DeepSearch-style coarse-to-fine one-pixel attack (Zhang et al.,
//! arXiv:1910.06296), adapted to the corner candidate space.
//!
//! DeepSearch attacks by refinement: probe coarse image regions, keep the
//! region that hurts the classifier most, and recursively split it until a
//! single pixel remains. Our one-pixel adaptation runs a deterministic
//! best-first quadtree search: every region is summarized by one probe
//! (its centre pixel swapped to the centre's top-ranked corner), regions
//! are expanded in ascending goal-margin order, and a 1×1 region is
//! finished by scanning its remaining corners in rank order. Because every
//! pixel of a split region is covered by exactly one child, the search is
//! exhaustive — like the sketch it finds a corner attack whenever one
//! exists — but it spends its early queries on the coarse structure of the
//! image instead of a fixed pixel order.

use crate::traits::{Attack, AttackOutcome};
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::{argmax, BudgetExhausted, Oracle};
use oppsla_core::pair::{Corner, Location, Pixel};
use oppsla_core::telemetry::{self, Counter};
use oppsla_core::tracing::record_oracle_query;
use rand::RngCore;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// An axis-aligned sub-rectangle of the image, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    row: u16,
    col: u16,
    height: u16,
    width: u16,
}

impl Region {
    fn center(self) -> Location {
        Location::new(self.row + self.height / 2, self.col + self.width / 2)
    }

    fn is_pixel(self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Quadrant split; every pixel of `self` lands in exactly one child.
    fn split(self) -> impl Iterator<Item = Region> {
        let top = self.height.div_ceil(2);
        let left = self.width.div_ceil(2);
        let quads = [
            (self.row, self.col, top, left),
            (self.row, self.col + left, top, self.width - left),
            (self.row + top, self.col, self.height - top, left),
            (
                self.row + top,
                self.col + left,
                self.height - top,
                self.width - left,
            ),
        ];
        quads
            .into_iter()
            .filter(|&(_, _, h, w)| h > 0 && w > 0)
            .map(|(row, col, height, width)| Region {
                row,
                col,
                height,
                width,
            })
            // A 1×n or n×1 region yields its parent's shape as one child;
            // dropping it would lose pixels, so keep every non-empty quad
            // except an exact duplicate of the parent (impossible once
            // h > 1 or w > 1 on the split axis).
            .filter(move |r| *r != self)
    }
}

/// Best-first frontier entry: regions pop in ascending margin order, ties
/// broken by insertion sequence so the search is fully deterministic.
#[derive(Debug, Clone, Copy)]
struct Node {
    margin: f32,
    seq: u64,
    region: Region,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    // BinaryHeap is a max-heap: reverse both keys so the smallest margin
    // (earliest insertion on ties) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .margin
            .total_cmp(&self.margin)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// What probing one candidate produced.
enum Probe {
    /// Goal margin of the perturbed image (lower = closer to adversarial).
    Margin(f32),
    /// The candidate flipped the classifier.
    Adversarial,
}

/// Deterministic best-first coarse-to-fine search over the corner space.
///
/// The `rng` argument is ignored: like the sketch, two runs on the same
/// image and classifier spend identical queries in identical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeepSearch {
    goal: AttackGoal,
}

impl DeepSearch {
    /// Sets the attack goal (untargeted by default).
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Probes `location` swapped to `corner`, deduplicating against
    /// `probed` so no candidate is ever submitted twice (region centres
    /// recur as their own quadrant's centre). Counted queries are traced
    /// and attributed to `phase`; memo-served repeats are not.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        start: u64,
        location: Location,
        corner: Corner,
        phase: (&'static str, Counter),
        probed: &mut HashMap<(u16, u16, u8), f32>,
        scores: &mut Vec<f32>,
    ) -> Result<Probe, BudgetExhausted> {
        let key = (location.row, location.col, corner.index());
        if let Some(&m) = probed.get(&key) {
            return Ok(Probe::Margin(m));
        }
        let before = oracle.queries();
        oracle.query_pixel_delta_into(image, location, corner.as_pixel(), scores)?;
        if oracle.queries() > before {
            telemetry::count(phase.1);
            record_oracle_query(
                phase.0,
                oracle.queries() - start,
                Some((location, corner.as_pixel())),
                scores,
                true_class,
                self.goal,
            );
        }
        if self.goal.is_adversarial(scores, true_class) {
            return Ok(Probe::Adversarial);
        }
        let m = self.goal.margin(scores, true_class);
        probed.insert(key, m);
        Ok(Probe::Margin(m))
    }

    /// Arms the speculative batch with the candidates about to be probed,
    /// skipping already-scored ones (they never reach the classifier).
    fn prefetch(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        group: &[(Location, Corner)],
        probed: &HashMap<(u16, u16, u8), f32>,
    ) {
        if oracle.has_prefetched() {
            return;
        }
        let fresh: Vec<(Location, Pixel)> = group
            .iter()
            .filter(|(loc, c)| !probed.contains_key(&(loc.row, loc.col, c.index())))
            .map(|&(loc, c)| (loc, c.as_pixel()))
            .collect();
        if !fresh.is_empty() {
            oracle.prefetch_pixel_batch(image, &fresh);
        }
    }
}

impl Attack for DeepSearch {
    fn name(&self) -> &'static str {
        "deepsearch"
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        _rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let start = oracle.queries();
        let spent = |oracle: &Oracle<'_>| oracle.queries() - start;

        let before_baseline = oracle.queries();
        let clean = match oracle.query(image) {
            Ok(s) => s,
            Err(_) => {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        };
        if oracle.queries() > before_baseline {
            telemetry::count(Counter::QueryBaseline);
            record_oracle_query(
                "baseline",
                spent(oracle),
                None,
                &clean,
                true_class,
                self.goal,
            );
        }
        self.goal.validate(oracle.num_classes(), true_class);
        if argmax(&clean) != true_class {
            return AttackOutcome::AlreadyMisclassified {
                queries: spent(oracle),
            };
        }

        // Deduplication (not re-proposal) guarantees every classifier
        // submission is unique, so the whole run shares one guard scope.
        oracle.begin_candidate_scope();
        let mut probed: HashMap<(u16, u16, u8), f32> = HashMap::new();
        let mut scores: Vec<f32> = Vec::with_capacity(clean.len());
        let mut frontier: BinaryHeap<Node> = BinaryHeap::new();
        let mut seq: u64 = 0;

        let root = Region {
            row: 0,
            col: 0,
            height: image.height() as u16,
            width: image.width() as u16,
        };
        // Seed the frontier with the root's quadrants (the root's own
        // probe would be split immediately anyway). On a 1×1 image the
        // root has no proper children, so it seeds itself.
        let seeds: Vec<Region> = if root.is_pixel() {
            vec![root]
        } else {
            root.split().collect()
        };

        let enqueue = |regions: &[Region],
                       oracle: &mut Oracle<'_>,
                       probed: &mut HashMap<(u16, u16, u8), f32>,
                       scores: &mut Vec<f32>,
                       frontier: &mut BinaryHeap<Node>,
                       seq: &mut u64|
         -> Result<Option<(Location, Pixel)>, BudgetExhausted> {
            let group: Vec<(Location, Corner)> = regions
                .iter()
                .map(|r| {
                    let c = r.center();
                    (c, Corner::ranked_by_distance(image.pixel(c))[0])
                })
                .collect();
            self.prefetch(oracle, image, &group, probed);
            for (region, &(loc, corner)) in regions.iter().zip(&group) {
                match self.probe(
                    oracle,
                    image,
                    true_class,
                    start,
                    loc,
                    corner,
                    ("init_scan", Counter::QueryInitScan),
                    probed,
                    scores,
                )? {
                    Probe::Adversarial => return Ok(Some((loc, corner.as_pixel()))),
                    Probe::Margin(m) => {
                        frontier.push(Node {
                            margin: m,
                            seq: *seq,
                            region: *region,
                        });
                        *seq += 1;
                    }
                }
            }
            Ok(None)
        };

        match enqueue(
            &seeds,
            oracle,
            &mut probed,
            &mut scores,
            &mut frontier,
            &mut seq,
        ) {
            Ok(Some((location, pixel))) => {
                return AttackOutcome::Success {
                    location,
                    pixel,
                    queries: spent(oracle),
                }
            }
            Ok(None) => {}
            Err(_) => {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        }

        while let Some(node) = frontier.pop() {
            if node.region.is_pixel() {
                // Finish the pixel: remaining corners in rank order (the
                // top corner was already spent as the region's probe).
                let loc = node.region.center();
                let ranked = Corner::ranked_by_distance(image.pixel(loc));
                let group: Vec<(Location, Corner)> = ranked.iter().map(|&c| (loc, c)).collect();
                self.prefetch(oracle, image, &group, &probed);
                for &(loc, corner) in &group {
                    match self.probe(
                        oracle,
                        image,
                        true_class,
                        start,
                        loc,
                        corner,
                        ("refine", Counter::QueryRefine),
                        &mut probed,
                        &mut scores,
                    ) {
                        Ok(Probe::Adversarial) => {
                            return AttackOutcome::Success {
                                location: loc,
                                pixel: corner.as_pixel(),
                                queries: spent(oracle),
                            }
                        }
                        Ok(Probe::Margin(_)) => {}
                        Err(_) => {
                            return AttackOutcome::Failure {
                                queries: spent(oracle),
                            }
                        }
                    }
                }
            } else {
                let children: Vec<Region> = node.region.split().collect();
                match enqueue(
                    &children,
                    oracle,
                    &mut probed,
                    &mut scores,
                    &mut frontier,
                    &mut seq,
                ) {
                    Ok(Some((location, pixel))) => {
                        return AttackOutcome::Success {
                            location,
                            pixel,
                            queries: spent(oracle),
                        }
                    }
                    Ok(None) => {}
                    Err(_) => {
                        return AttackOutcome::Failure {
                            queries: spent(oracle),
                        }
                    }
                }
            }
        }

        AttackOutcome::Failure {
            queries: spent(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn split_partitions_every_region() {
        for (h, w) in [(1u16, 2u16), (2, 1), (2, 2), (3, 3), (5, 7), (1, 1)] {
            let root = Region {
                row: 0,
                col: 0,
                height: h,
                width: w,
            };
            if root.is_pixel() {
                assert_eq!(root.split().count(), 0);
                continue;
            }
            let mut covered = vec![vec![0u32; w as usize]; h as usize];
            let mut stack = vec![root];
            while let Some(r) = stack.pop() {
                if r.is_pixel() {
                    covered[r.row as usize][r.col as usize] += 1;
                } else {
                    stack.extend(r.split());
                }
            }
            for (i, row) in covered.iter().enumerate() {
                for (j, &n) in row.iter().enumerate() {
                    assert_eq!(n, 1, "pixel ({i}, {j}) covered {n} times in {h}x{w}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_hence_always_finds_existing_attack() {
        for (r, c) in [(0u16, 0u16), (3, 3), (1, 2), (3, 0)] {
            let target = Location::new(r, c);
            let clf = FnClassifier::new(2, move |img: &Image| {
                if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
                    vec![0.1, 0.9]
                } else {
                    vec![0.9, 0.1]
                }
            });
            let img = Image::filled(4, 4, Pixel([0.2, 0.2, 0.2]));
            let mut oracle = Oracle::new(&clf);
            match DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng()) {
                AttackOutcome::Success {
                    location, pixel, ..
                } => {
                    assert_eq!(location, target);
                    assert_eq!(pixel, Pixel([1.0, 1.0, 1.0]));
                }
                other => panic!("target ({r}, {c}): expected success, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhausts_whole_space_without_duplicate_queries() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let img = Image::filled(3, 3, Pixel([0.5, 0.5, 0.5]));
        let mut oracle = Oracle::new(&clf);
        let outcome = DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng());
        // Deduplication makes exhaustion exactly the candidate count:
        // 1 baseline + 8 corners x 9 pixels, like the sketch.
        assert_eq!(outcome, AttackOutcome::Failure { queries: 73 });
    }

    #[test]
    fn deterministic_across_runs_and_ignores_the_rng() {
        let target = Location::new(2, 4);
        let clf = FnClassifier::new(3, move |img: &Image| {
            let d = img.pixel(target).distance(Pixel([0.0, 0.0, 0.0]));
            if d < 0.05 {
                vec![0.1, 0.8, 0.1]
            } else {
                vec![0.6, 0.2, 0.2]
            }
        });
        let img = Image::filled(6, 6, Pixel([0.4, 0.4, 0.4]));
        let runs: Vec<AttackOutcome> = (0..3)
            .map(|seed| {
                let mut oracle = Oracle::new(&clf);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng)
            })
            .collect();
        assert!(runs[0].is_success());
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn coarse_structure_beats_uniform_order_on_an_off_centre_target() {
        // A target far from the centre in a large image: best-first
        // refinement homes in via region probes instead of sweeping the
        // centre-out order past thousands of dead candidates.
        let target = Location::new(1, 14);
        let clf = FnClassifier::new(2, move |img: &Image| {
            // Margin shrinks as the perturbed pixel nears the target, so
            // region probes near it look promising; only the target pixel
            // itself flips the decision.
            let mut d_min = u16::MAX;
            for row in 0..img.height() as u16 {
                for col in 0..img.width() as u16 {
                    let loc = Location::new(row, col);
                    if img.pixel(loc).distance(Pixel([0.25; 3])) > 0.4 {
                        d_min = d_min.min(loc.distance(target));
                    }
                }
            }
            if d_min == 0 {
                vec![0.2, 0.8]
            } else {
                let m = if d_min == u16::MAX {
                    0.9
                } else {
                    (0.1 + 0.02 * d_min as f32).min(0.9)
                };
                vec![0.5 + m / 2.0, 0.5 - m / 2.0]
            }
        });
        let img = Image::filled(16, 16, Pixel([0.25, 0.25, 0.25]));
        let mut oracle = Oracle::new(&clf);
        let outcome = DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng());
        assert!(outcome.is_success(), "got {outcome:?}");
        let full_scan = 8 * 16 * 16;
        assert!(
            outcome.queries() < full_scan / 4,
            "best-first spent {} queries, worse than a quarter of the {full_scan} scan",
            outcome.queries()
        );
    }

    #[test]
    fn already_misclassified_short_circuits() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.1, 0.9]);
        let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
        let mut oracle = Oracle::new(&clf);
        let outcome = DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng());
        assert_eq!(outcome, AttackOutcome::AlreadyMisclassified { queries: 1 });
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let img = Image::filled(5, 5, Pixel([0.5, 0.5, 0.5]));
        let mut oracle = Oracle::with_budget(&clf, 10);
        let outcome = DeepSearch::default().attack(&mut oracle, &img, 0, &mut rng());
        assert_eq!(outcome, AttackOutcome::Failure { queries: 10 });
    }
}
