//! One-pixel attack implementations for the OPPSLA reproduction.
//!
//! This crate hosts the attacks the paper evaluates:
//!
//! * [`SketchProgramAttack`] — a synthesized (or baseline) adversarial
//!   program run through the core sketch; OPPSLA's own attack object and
//!   the Sketch+False / Sketch+Random ablation vehicles.
//! * [`SparseRs`] — the one-pixel instantiation of Sparse-RS (Croce et
//!   al., AAAI 2022), the state-of-the-art query-efficiency baseline.
//! * [`SuOpa`] — the original differential-evolution one-pixel attack (Su
//!   et al., 2017), which searches the continuous colour space.
//! * [`DeepSearch`] — a coarse-to-fine best-first refinement baseline in
//!   the style of DeepSearch (Zhang et al., 2019), probing image regions
//!   before pixels.
//! * [`RandomPairs`] — exhaustive enumeration in uniformly random order.
//! * [`SparseRsMulti`] — the general few-pixel (`k > 1`) form of
//!   Sparse-RS, an extension beyond the paper's one-pixel evaluation.
//!
//! All of them implement the [`Attack`] trait and spend queries through an
//! [`oppsla_core::oracle::Oracle`], so experiment harnesses can compare
//! them on identical footing.

#![warn(missing_docs)]

mod deepsearch;
mod multi;
mod random_pairs;
mod sketch_attack;
mod sparse_rs;
mod suopa;
mod traits;

pub use deepsearch::DeepSearch;
pub use multi::{MultiAttackOutcome, SparseRsMulti, SparseRsMultiConfig};
pub use random_pairs::RandomPairs;
pub use sketch_attack::SketchProgramAttack;
pub use sparse_rs::{SparseRs, SparseRsConfig};
pub use suopa::{SuOpa, SuOpaConfig};
pub use traits::{margin, Attack, AttackOutcome};
