//! Few-pixel attacks: the general `k`-pixel form of Sparse-RS.
//!
//! The paper evaluates the one-pixel special case, but Sparse-RS (Croce
//! et al., AAAI 2022) is a *few*-pixel framework: the attacker perturbs a
//! set `U` of `k` pixels, each to an RGB-cube corner. This module
//! implements that general form as an extension — random search over
//! `(location, corner)` sets, resampling a decaying fraction of the set
//! each step and keeping the candidate whenever the margin loss does not
//! worsen.
//!
//! Multi-pixel success is a different shape from the one-pixel
//! [`AttackOutcome`](crate::AttackOutcome) (there are `k` winning pixels),
//! so this module has its own outcome type rather than widening the
//! one-pixel interface.

use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::{argmax, Oracle};
use oppsla_core::pair::{Corner, Location, Pixel};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use std::fmt;

/// Result of a few-pixel attack.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiAttackOutcome {
    /// A successful `k`-pixel perturbation.
    Success {
        /// The perturbed pixels (all `k` of them, even if fewer would do).
        pixels: Vec<(Location, Pixel)>,
        /// Queries spent by this run.
        queries: u64,
    },
    /// Budget or iteration limit reached.
    Failure {
        /// Queries spent by this run.
        queries: u64,
    },
    /// The clean image was already misclassified.
    AlreadyMisclassified {
        /// Queries spent (the baseline query).
        queries: u64,
    },
}

impl MultiAttackOutcome {
    /// Queries spent, regardless of outcome.
    pub fn queries(&self) -> u64 {
        match self {
            MultiAttackOutcome::Success { queries, .. }
            | MultiAttackOutcome::Failure { queries }
            | MultiAttackOutcome::AlreadyMisclassified { queries } => *queries,
        }
    }

    /// True for [`MultiAttackOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, MultiAttackOutcome::Success { .. })
    }
}

impl fmt::Display for MultiAttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiAttackOutcome::Success { pixels, queries } => {
                write!(
                    f,
                    "success with {} pixels after {queries} queries",
                    pixels.len()
                )
            }
            MultiAttackOutcome::Failure { queries } => write!(f, "failure after {queries} queries"),
            MultiAttackOutcome::AlreadyMisclassified { queries } => {
                write!(f, "already misclassified ({queries} queries)")
            }
        }
    }
}

/// Configuration of the `k`-pixel Sparse-RS attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRsMultiConfig {
    /// Number of perturbed pixels `k`.
    pub k: usize,
    /// Maximum proposals (one query each).
    pub max_iterations: u64,
    /// Initial fraction of the pixel set resampled per step (decays
    /// linearly to `min_resample_frac`, Sparse-RS's α-schedule).
    pub initial_resample_frac: f64,
    /// Final resample fraction (at least one pixel always moves).
    pub min_resample_frac: f64,
}

impl Default for SparseRsMultiConfig {
    fn default() -> Self {
        SparseRsMultiConfig {
            k: 3,
            max_iterations: 10_000,
            initial_resample_frac: 0.8,
            min_resample_frac: 0.1,
        }
    }
}

/// The `k`-pixel Sparse-RS random-search attack.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseRsMulti {
    config: SparseRsMultiConfig,
    goal: AttackGoal,
}

/// The current candidate: `k` distinct locations with corner colours.
#[derive(Debug, Clone, PartialEq)]
struct Candidate {
    pixels: Vec<(Location, Corner)>,
}

impl Candidate {
    fn apply(&self, image: &Image) -> Image {
        let mut out = image.clone();
        for &(loc, corner) in &self.pixels {
            out.set_pixel(loc, corner.as_pixel());
        }
        out
    }

    fn as_success_pixels(&self) -> Vec<(Location, Pixel)> {
        self.pixels
            .iter()
            .map(|&(loc, corner)| (loc, corner.as_pixel()))
            .collect()
    }
}

impl SparseRsMulti {
    /// Creates the attack with `config` (untargeted).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the resample fractions are not in `(0, 1]`.
    pub fn new(config: SparseRsMultiConfig) -> Self {
        assert!(config.k > 0, "k must be at least 1");
        assert!(
            config.initial_resample_frac > 0.0 && config.initial_resample_frac <= 1.0,
            "initial_resample_frac must be in (0, 1]"
        );
        assert!(
            config.min_resample_frac > 0.0 && config.min_resample_frac <= 1.0,
            "min_resample_frac must be in (0, 1]"
        );
        SparseRsMulti {
            config,
            goal: AttackGoal::Untargeted,
        }
    }

    /// Sets the attack goal (untargeted by default).
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Pixels resampled at `iteration`: `max(1, ⌈α_i · k⌉)`.
    fn resample_count(&self, iteration: u64) -> usize {
        let t = (iteration as f64 / self.config.max_iterations as f64).min(1.0);
        let frac = self.config.initial_resample_frac
            + (self.config.min_resample_frac - self.config.initial_resample_frac) * t;
        ((frac * self.config.k as f64).ceil() as usize).clamp(1, self.config.k)
    }

    fn random_candidate(&self, rng: &mut dyn RngCore, h: usize, w: usize) -> Candidate {
        let k = self.config.k.min(h * w);
        let mut all: Vec<Location> = (0..h as u16)
            .flat_map(|row| (0..w as u16).map(move |col| Location::new(row, col)))
            .collect();
        all.shuffle(rng);
        Candidate {
            pixels: all[..k]
                .iter()
                .map(|&loc| (loc, Corner::new(rng.gen_range(0..8u8))))
                .collect(),
        }
    }

    /// Runs the attack. Returns a [`MultiAttackOutcome`] (few-pixel
    /// successes carry all `k` pixels).
    ///
    /// # Panics
    ///
    /// Panics if the goal is unsatisfiable for the oracle's class count.
    pub fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> MultiAttackOutcome {
        let start = oracle.queries();
        let spent = |oracle: &Oracle<'_>| oracle.queries() - start;
        let (h, w) = (image.height(), image.width());

        let clean = match oracle.query(image) {
            Ok(s) => s,
            Err(_) => {
                return MultiAttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        };
        self.goal.validate(oracle.num_classes(), true_class);
        if argmax(&clean) != true_class {
            return MultiAttackOutcome::AlreadyMisclassified {
                queries: spent(oracle),
            };
        }

        let mut current = self.random_candidate(rng, h, w);
        let mut best_margin = f32::INFINITY;

        for iteration in 0..self.config.max_iterations {
            let candidate = if iteration == 0 {
                current.clone()
            } else {
                let mut next = current.clone();
                let moves = self.resample_count(iteration);
                // Resample `moves` entries: fresh locations (unused by the
                // rest of the set) and fresh corners.
                let mut indices: Vec<usize> = (0..next.pixels.len()).collect();
                indices.shuffle(rng);
                for &i in indices.iter().take(moves) {
                    if rng.gen_bool(0.5) {
                        // Move the pixel somewhere not already perturbed.
                        loop {
                            let loc = Location::new(
                                rng.gen_range(0..h as u16),
                                rng.gen_range(0..w as u16),
                            );
                            if next.pixels.iter().all(|&(l, _)| l != loc) {
                                next.pixels[i].0 = loc;
                                break;
                            }
                        }
                    } else {
                        next.pixels[i].1 = Corner::new(rng.gen_range(0..8u8));
                    }
                }
                next
            };
            let scores = match oracle.query(&candidate.apply(image)) {
                Ok(s) => s,
                Err(_) => {
                    return MultiAttackOutcome::Failure {
                        queries: spent(oracle),
                    }
                }
            };
            if self.goal.is_adversarial(&scores, true_class) {
                return MultiAttackOutcome::Success {
                    pixels: candidate.as_success_pixels(),
                    queries: spent(oracle),
                };
            }
            let m = self.goal.margin(&scores, true_class);
            if m <= best_margin {
                best_margin = m;
                current = candidate;
            }
        }
        MultiAttackOutcome::Failure {
            queries: spent(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Flips only when at least `needed` pixels are pure white; the margin
    /// shrinks with the white count, guiding the search.
    fn count_classifier(needed: usize) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, move |img: &Image| {
            let mut whites = 0usize;
            for row in 0..img.height() as u16 {
                for col in 0..img.width() as u16 {
                    if img.pixel(Location::new(row, col)) == Pixel([1.0, 1.0, 1.0]) {
                        whites += 1;
                    }
                }
            }
            if whites >= needed {
                vec![0.1, 0.9]
            } else {
                let conf = 0.9 - 0.1 * whites as f32;
                vec![conf, 1.0 - conf]
            }
        })
    }

    #[test]
    fn three_pixel_attack_beats_a_three_white_threshold() {
        // A one-pixel attack cannot flip this classifier; k=3 can.
        let clf = count_classifier(3);
        let img = Image::filled(8, 8, Pixel([0.4, 0.4, 0.4]));
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 3,
            max_iterations: 20_000,
            ..SparseRsMultiConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut oracle = Oracle::new(&clf);
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        match outcome {
            MultiAttackOutcome::Success { pixels, .. } => {
                assert_eq!(pixels.len(), 3);
                let whites = pixels
                    .iter()
                    .filter(|(_, p)| *p == Pixel([1.0, 1.0, 1.0]))
                    .count();
                assert_eq!(whites, 3, "all three pixels must be white");
                // Locations are distinct.
                let mut locs: Vec<Location> = pixels.iter().map(|(l, _)| *l).collect();
                locs.sort();
                locs.dedup();
                assert_eq!(locs.len(), 3);
            }
            other => panic!("expected success, got {other}"),
        }
    }

    #[test]
    fn one_pixel_special_case_works() {
        let clf = count_classifier(1);
        let img = Image::filled(6, 6, Pixel([0.4, 0.4, 0.4]));
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 1,
            max_iterations: 5_000,
            ..SparseRsMultiConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        assert!(attack.attack(&mut oracle, &img, 0, &mut rng).is_success());
    }

    #[test]
    fn respects_budget_and_iteration_limits() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let img = Image::filled(6, 6, Pixel([0.4, 0.4, 0.4]));
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 2,
            max_iterations: 30,
            ..SparseRsMultiConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, MultiAttackOutcome::Failure { queries: 31 });

        let mut oracle = Oracle::with_budget(&clf, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, MultiAttackOutcome::Failure { queries: 7 });
    }

    #[test]
    fn resample_count_decays_but_never_hits_zero() {
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 10,
            max_iterations: 1000,
            ..SparseRsMultiConfig::default()
        });
        assert!(attack.resample_count(0) >= attack.resample_count(999));
        assert!(attack.resample_count(999) >= 1);
        assert!(attack.resample_count(0) <= 10);
    }

    #[test]
    fn k_larger_than_image_is_clamped() {
        let clf = count_classifier(1);
        let img = Image::filled(2, 2, Pixel([0.4, 0.4, 0.4]));
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 100,
            max_iterations: 100,
            ..SparseRsMultiConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        // Must not panic; 4 pixels max on a 2x2 image.
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        if let MultiAttackOutcome::Success { pixels, .. } = outcome {
            assert!(pixels.len() <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        SparseRsMulti::new(SparseRsMultiConfig {
            k: 0,
            ..SparseRsMultiConfig::default()
        });
    }

    #[test]
    fn deterministic_under_seed() {
        let clf = count_classifier(2);
        let img = Image::filled(6, 6, Pixel([0.4, 0.4, 0.4]));
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k: 2,
            max_iterations: 3_000,
            ..SparseRsMultiConfig::default()
        });
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let mut oracle = Oracle::new(&clf);
            attack.attack(&mut oracle, &img, 0, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
