//! Uniform no-replacement sampling over the corner candidate space — the
//! simplest possible baseline: like the sketch it is exhaustive (finds an
//! attack whenever one exists), but with no prioritization at all.

use crate::traits::{Attack, AttackOutcome};
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::{argmax, Oracle};
use oppsla_core::pair::{Corner, Location, Pair};
use oppsla_core::telemetry::{self, Counter};
use oppsla_core::tracing::record_oracle_query;
use rand::seq::SliceRandom;
use rand::RngCore;

/// Exhaustive random-order enumeration of all `8·d₁·d₂` candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomPairs {
    goal: AttackGoal,
}

impl RandomPairs {
    /// Sets the attack goal (untargeted by default).
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }
}

impl Attack for RandomPairs {
    fn name(&self) -> &'static str {
        "random-pairs"
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let start = oracle.queries();
        let spent = |oracle: &Oracle<'_>| oracle.queries() - start;

        let before_baseline = oracle.queries();
        let clean = match oracle.query(image) {
            Ok(s) => s,
            Err(_) => {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        };
        // A memo-served baseline is not a counted query: no phase
        // attribution, no trace record.
        if oracle.queries() > before_baseline {
            telemetry::count(Counter::QueryBaseline);
            record_oracle_query(
                "baseline",
                spent(oracle),
                None,
                &clean,
                true_class,
                self.goal,
            );
        }
        self.goal.validate(oracle.num_classes(), true_class);
        if argmax(&clean) != true_class {
            return AttackOutcome::AlreadyMisclassified {
                queries: spent(oracle),
            };
        }

        let mut pairs: Vec<Pair> = (0..image.height() as u16)
            .flat_map(|row| {
                (0..image.width() as u16).flat_map(move |col| {
                    Corner::ALL
                        .into_iter()
                        .map(move |corner| Pair::new(Location::new(row, col), corner))
                })
            })
            .collect();
        pairs.shuffle(rng);

        // Candidates are one-pixel swaps of the base image: route them
        // through the pixel-delta query path so incremental backends reuse
        // cached base activations. The shuffle enumerates each candidate
        // exactly once, so the whole run shares one query-guard scope.
        oracle.begin_candidate_scope();
        let mut scores: Vec<f32> = Vec::with_capacity(clean.len());
        // The visiting order is fixed once shuffled, so upcoming chunks can
        // be speculatively prefetched: a batched backend evaluates 8
        // candidates per sweep, and an early success simply abandons the
        // unconsumed tail (computed but never counted).
        const PREFETCH_BATCH: usize = 8;
        let mut upcoming: Vec<(Location, oppsla_core::pair::Pixel)> =
            Vec::with_capacity(PREFETCH_BATCH);
        for (i, &pair) in pairs.iter().enumerate() {
            if !oracle.has_prefetched() {
                upcoming.clear();
                upcoming.extend(
                    pairs[i..]
                        .iter()
                        .take(PREFETCH_BATCH)
                        .map(|p| (p.location, p.corner.as_pixel())),
                );
                oracle.prefetch_pixel_batch(image, &upcoming);
            }
            let before = oracle.queries();
            match oracle.query_pixel_delta_into(
                image,
                pair.location,
                pair.corner.as_pixel(),
                &mut scores,
            ) {
                Ok(()) => {
                    if oracle.queries() > before {
                        telemetry::count(Counter::QueryInitScan);
                        record_oracle_query(
                            "init_scan",
                            spent(oracle),
                            Some((pair.location, pair.corner.as_pixel())),
                            &scores,
                            true_class,
                            self.goal,
                        );
                    }
                    if self.goal.is_adversarial(&scores, true_class) {
                        return AttackOutcome::Success {
                            location: pair.location,
                            pixel: pair.corner.as_pixel(),
                            queries: spent(oracle),
                        };
                    }
                }
                Err(_) => {
                    return AttackOutcome::Failure {
                        queries: spent(oracle),
                    }
                }
            }
        }
        AttackOutcome::Failure {
            queries: spent(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::Pixel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exhaustive_hence_always_finds_existing_attack() {
        let target = Location::new(3, 3);
        let clf = FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([1.0, 0.0, 0.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut oracle = Oracle::new(&clf);
            let outcome = RandomPairs::default().attack(&mut oracle, &img, 0, &mut rng);
            match outcome {
                AttackOutcome::Success { location, .. } => assert_eq!(location, target),
                other => panic!("seed {seed}: expected success, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhausts_whole_space_on_robust_classifier() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let img = Image::filled(3, 3, Pixel([0.5, 0.5, 0.5]));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        let outcome = RandomPairs::default().attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 73 });
    }

    #[test]
    fn different_seeds_visit_in_different_orders() {
        // The expected query count differs across seeds for a fixed target.
        let target = Location::new(0, 0);
        let clf = FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([0.0, 0.0, 0.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let img = Image::filled(5, 5, Pixel([0.5, 0.5, 0.5]));
        let counts: Vec<u64> = (0..6)
            .map(|seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut oracle = Oracle::new(&clf);
                RandomPairs::default()
                    .attack(&mut oracle, &img, 0, &mut rng)
                    .queries()
            })
            .collect();
        let mut unique = counts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 1, "all seeds gave {counts:?}");
    }
}
