//! Adapter exposing a synthesized (or baseline) sketch program as an
//! [`Attack`].

use crate::traits::{Attack, AttackOutcome};
use oppsla_core::dsl::Program;
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::Oracle;
use oppsla_core::prior::{Prior, Uniform};
use oppsla_core::sketch::{run_sketch_with_goal_prior, SketchOutcome};
use rand::RngCore;
use std::sync::Arc;

/// An adversarial program run through the one-pixel sketch.
///
/// This is OPPSLA's output object: deterministic (the `rng` argument is
/// ignored), guaranteed to succeed whenever a corner one-pixel attack
/// exists, and differing from other instantiations only in query count.
///
/// # Examples
///
/// ```
/// use oppsla_attacks::{Attack, SketchProgramAttack};
/// use oppsla_core::dsl::Program;
/// use oppsla_core::image::Image;
/// use oppsla_core::oracle::{FnClassifier, Oracle};
/// use oppsla_core::pair::{Location, Pixel};
/// use rand::SeedableRng;
///
/// let clf = FnClassifier::new(2, |img: &Image| {
///     if img.pixel(Location::new(0, 0)).0[0] > 0.9 { vec![0.1, 0.9] } else { vec![0.9, 0.1] }
/// });
/// let attack = SketchProgramAttack::new(Program::paper_example());
/// let mut oracle = Oracle::new(&clf);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let img = Image::filled(3, 3, Pixel([0.2, 0.2, 0.2]));
/// assert!(attack.attack(&mut oracle, &img, 0, &mut rng).is_success());
/// ```
#[derive(Clone)]
pub struct SketchProgramAttack {
    program: Program,
    name: &'static str,
    goal: AttackGoal,
    /// Initial-queue prior; `None` = the paper's uniform order.
    prior: Option<Arc<dyn Prior>>,
}

impl std::fmt::Debug for SketchProgramAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchProgramAttack")
            .field("program", &self.program)
            .field("name", &self.name)
            .field("goal", &self.goal)
            .field(
                "prior",
                &self.prior.as_ref().map_or("uniform", |p| p.name()),
            )
            .finish()
    }
}

impl PartialEq for SketchProgramAttack {
    fn eq(&self, other: &Self) -> bool {
        let same_prior = match (&self.prior, &other.prior) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.program == other.program
            && self.name == other.name
            && self.goal == other.goal
            && same_prior
    }
}

impl SketchProgramAttack {
    /// Wraps `program` as an untargeted attack named `"oppsla-program"`.
    pub fn new(program: Program) -> Self {
        SketchProgramAttack {
            program,
            name: "oppsla-program",
            goal: AttackGoal::Untargeted,
            prior: None,
        }
    }

    /// Wraps `program` under a custom report name (e.g. `"sketch+false"`).
    pub fn named(program: Program, name: &'static str) -> Self {
        SketchProgramAttack {
            program,
            name,
            goal: AttackGoal::Untargeted,
            prior: None,
        }
    }

    /// Sets the attack goal (untargeted by default).
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Sets the initial-queue prior (the paper's uniform centre-out
    /// order by default). The prior only permutes the starting order;
    /// success guarantees and accounting are untouched.
    pub fn with_prior(mut self, prior: Arc<dyn Prior>) -> Self {
        self.prior = Some(prior);
        self
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl Attack for SketchProgramAttack {
    fn name(&self) -> &'static str {
        self.name
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        _rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let prior: &dyn Prior = match &self.prior {
            Some(p) => p.as_ref(),
            None => &Uniform,
        };
        match run_sketch_with_goal_prior(&self.program, oracle, image, true_class, self.goal, prior)
        {
            SketchOutcome::Success { pair, queries } => AttackOutcome::Success {
                location: pair.location,
                pixel: pair.corner.as_pixel(),
                queries,
            },
            SketchOutcome::Exhausted { queries } | SketchOutcome::OutOfBudget { queries } => {
                AttackOutcome::Failure { queries }
            }
            SketchOutcome::AlreadyMisclassified { queries } => {
                AttackOutcome::AlreadyMisclassified { queries }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn success_maps_pair_to_location_and_pixel() {
        let target = Location::new(2, 1);
        let clf = FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([0.0, 0.0, 0.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let attack = SketchProgramAttack::new(Program::constant(false));
        let mut oracle = Oracle::new(&clf);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let img = Image::filled(4, 4, Pixel([0.6, 0.6, 0.6]));
        match attack.attack(&mut oracle, &img, 0, &mut rng) {
            AttackOutcome::Success {
                location, pixel, ..
            } => {
                assert_eq!(location, target);
                assert_eq!(pixel, Pixel([0.0, 0.0, 0.0]));
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_maps_to_failure() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let attack = SketchProgramAttack::named(Program::constant(false), "sketch+false");
        assert_eq!(attack.name(), "sketch+false");
        let mut oracle = Oracle::new(&clf);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let img = Image::filled(3, 3, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 73 });
    }
}
