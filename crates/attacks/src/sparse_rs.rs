//! The one-pixel instantiation of Sparse-RS (Croce et al., AAAI 2022) —
//! the paper's main query-efficiency baseline.
//!
//! Sparse-RS is a random search over the set of perturbed pixels. For
//! `k = 1` it maintains a single current candidate (location, corner
//! colour) with the best margin loss seen so far, and at each step
//! proposes either a fresh location (keeping the colour) or a fresh
//! colour (keeping the location), accepting the proposal whenever the
//! margin does not worsen. The probability of resampling the location
//! decays over iterations, mirroring Sparse-RS's α-schedule: early steps
//! explore positions globally, late steps fine-tune the colour.

use crate::traits::{Attack, AttackOutcome};
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::Oracle;
use oppsla_core::pair::{Corner, Location};
use oppsla_core::telemetry::{self, Counter};
use oppsla_core::tracing::record_oracle_query;
use rand::Rng;
use rand::RngCore;

/// Configuration of the Sparse-RS one-pixel attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRsConfig {
    /// Maximum proposals (each proposal costs one query). The attack also
    /// stops when the oracle's budget runs out.
    pub max_iterations: u64,
    /// Initial probability of resampling the location (decays linearly to
    /// `min_location_prob`).
    pub initial_location_prob: f64,
    /// Final probability of resampling the location.
    pub min_location_prob: f64,
}

impl Default for SparseRsConfig {
    fn default() -> Self {
        SparseRsConfig {
            max_iterations: 10_000,
            initial_location_prob: 0.8,
            min_location_prob: 0.1,
        }
    }
}

/// The Sparse-RS one-pixel random-search attack.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseRs {
    config: SparseRsConfig,
    goal: AttackGoal,
}

impl SparseRs {
    /// Creates the attack with `config` (untargeted).
    pub fn new(config: SparseRsConfig) -> Self {
        SparseRs {
            config,
            goal: AttackGoal::Untargeted,
        }
    }

    /// Sets the attack goal (untargeted by default).
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }

    fn location_prob(&self, iteration: u64) -> f64 {
        let t = (iteration as f64 / self.config.max_iterations as f64).min(1.0);
        self.config.initial_location_prob
            + (self.config.min_location_prob - self.config.initial_location_prob) * t
    }
}

fn random_location(rng: &mut dyn RngCore, height: usize, width: usize) -> Location {
    Location::new(
        rng.gen_range(0..height as u16),
        rng.gen_range(0..width as u16),
    )
}

fn random_corner(rng: &mut dyn RngCore) -> Corner {
    Corner::new(rng.gen_range(0..8u8))
}

impl Attack for SparseRs {
    fn name(&self) -> &'static str {
        "sparse-rs"
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let start = oracle.queries();
        let spent = |oracle: &Oracle<'_>| oracle.queries() - start;
        let (h, w) = (image.height(), image.width());

        // Baseline query: verifies the clean classification (and costs one
        // query, as in our other attacks — unless a memo-attached oracle
        // serves it for free, in which case it is neither attributed nor
        // traced: the trace is a per-counted-query stream).
        let before_baseline = oracle.queries();
        let clean = match oracle.query(image) {
            Ok(s) => s,
            Err(_) => {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        };
        if oracle.queries() > before_baseline {
            telemetry::count(Counter::QueryBaseline);
            record_oracle_query(
                "baseline",
                spent(oracle),
                None,
                &clean,
                true_class,
                self.goal,
            );
        }
        self.goal.validate(oracle.num_classes(), true_class);
        if oppsla_core::oracle::argmax(&clean) != true_class {
            return AttackOutcome::AlreadyMisclassified {
                queries: spent(oracle),
            };
        }

        let mut current_loc = random_location(rng, h, w);
        let mut current_corner = random_corner(rng);
        let mut best_margin = f32::INFINITY;
        // Every proposal is the base image with one pixel swapped, so it
        // goes through the pixel-delta query path: incremental backends
        // serve it from cached base activations instead of a full forward
        // pass. Counts and scores are identical to querying the perturbed
        // image in full. Random search legitimately re-proposes the same
        // candidate, so each proposal opens its own query-guard scope.
        let mut scores: Vec<f32> = Vec::with_capacity(clean.len());

        // Speculative batching: the RNG decisions for an iteration depend
        // only on the iteration index, so they can be pre-drawn a chunk at
        // a time (same draws, same stream order as drawing them one per
        // iteration) and turned into speculative candidates under the
        // assumption that no proposal in the chunk is accepted. An accept
        // changes `current_*`, invalidating every still-pending speculated
        // candidate, so the attack re-prefetches from the new state at the
        // next iteration (the oracle replaces the stale batch) —
        // accounting and scores are unaffected either way. Pre-drawing
        // happens unconditionally so candidate sequences are identical
        // whether or not the oracle actually prefetches.
        #[derive(Clone, Copy)]
        enum Draw {
            /// Iteration 0: propose the initial candidate as-is.
            Current,
            Loc(Location),
            Corner(Corner),
        }
        const PREFETCH_BATCH: usize = 8;
        let mut drawn: std::collections::VecDeque<Draw> =
            std::collections::VecDeque::with_capacity(PREFETCH_BATCH);
        let mut upcoming: Vec<(Location, oppsla_core::pair::Pixel)> =
            Vec::with_capacity(PREFETCH_BATCH);
        let mut stale = false;

        for iteration in 0..self.config.max_iterations {
            if drawn.is_empty() {
                let n = (self.config.max_iterations - iteration).min(PREFETCH_BATCH as u64);
                for j in 0..n {
                    let it = iteration + j;
                    drawn.push_back(if it == 0 {
                        Draw::Current
                    } else if rng.gen_bool(self.location_prob(it)) {
                        Draw::Loc(random_location(rng, h, w))
                    } else {
                        Draw::Corner(random_corner(rng))
                    });
                }
            }
            if stale || !oracle.has_prefetched() {
                stale = false;
                upcoming.clear();
                upcoming.extend(drawn.iter().map(|d| match d {
                    Draw::Current => (current_loc, current_corner.as_pixel()),
                    Draw::Loc(l) => (*l, current_corner.as_pixel()),
                    Draw::Corner(c) => (current_loc, c.as_pixel()),
                }));
                oracle.prefetch_pixel_batch(image, &upcoming);
            }
            let (loc, corner, phase, trace_phase) = match drawn.pop_front().expect("refilled above")
            {
                Draw::Current => (
                    current_loc,
                    current_corner,
                    Counter::QueryInitScan,
                    "init_scan",
                ),
                Draw::Loc(l) => (l, current_corner, Counter::QueryInitScan, "init_scan"),
                Draw::Corner(c) => (current_loc, c, Counter::QueryRefine, "refine"),
            };
            oracle.begin_candidate_scope();
            let before = oracle.queries();
            if oracle
                .query_pixel_delta_into(image, loc, corner.as_pixel(), &mut scores)
                .is_err()
            {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                };
            }
            // Memo hits (re-proposed candidates) are not counted queries:
            // no phase attribution, no trace record.
            if oracle.queries() > before {
                telemetry::count(phase);
                record_oracle_query(
                    trace_phase,
                    spent(oracle),
                    Some((loc, corner.as_pixel())),
                    &scores,
                    true_class,
                    self.goal,
                );
            }
            let m = self.goal.margin(&scores, true_class);
            if m < 0.0 {
                return AttackOutcome::Success {
                    location: loc,
                    pixel: corner.as_pixel(),
                    queries: spent(oracle),
                };
            }
            if m <= best_margin {
                best_margin = m;
                if (loc, corner) != (current_loc, current_corner) {
                    stale = true;
                }
                current_loc = loc;
                current_corner = corner;
            }
        }
        AttackOutcome::Failure {
            queries: spent(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::Pixel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A classifier whose margin shrinks as the perturbed pixel approaches
    /// the target location, flipping exactly on the target with a white
    /// pixel — gives random search a gradient to follow.
    fn guided_classifier(target: Location) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, move |img: &Image| {
            // Find the brightest perturbation-like pixel: compare with a
            // mid-grey base.
            let mut best = f32::INFINITY;
            for row in 0..img.height() as u16 {
                for col in 0..img.width() as u16 {
                    let p = img.pixel(Location::new(row, col));
                    if p == Pixel([1.0, 1.0, 1.0]) {
                        let d = Location::new(row, col).distance(target) as f32;
                        best = best.min(d);
                    }
                }
            }
            if best == 0.0 {
                vec![0.1, 0.9]
            } else if best.is_finite() {
                let conf = 0.55 + 0.04 * best.min(10.0);
                vec![conf, 1.0 - conf]
            } else {
                vec![0.95, 0.05]
            }
        })
    }

    #[test]
    fn finds_a_guided_target() {
        let target = Location::new(5, 7);
        let clf = guided_classifier(target);
        let attack = SparseRs::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(10, 10, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        match outcome {
            AttackOutcome::Success { location, .. } => assert_eq!(location, target),
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn respects_max_iterations() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let attack = SparseRs::new(SparseRsConfig {
            max_iterations: 25,
            ..SparseRsConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(8, 8, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 26 });
    }

    #[test]
    fn respects_oracle_budget() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let attack = SparseRs::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::with_budget(&clf, 5);
        let img = Image::filled(8, 8, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 5 });
    }

    #[test]
    fn detects_already_misclassified() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.1, 0.9]);
        let attack = SparseRs::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::AlreadyMisclassified { queries: 1 });
    }

    #[test]
    fn location_probability_decays() {
        let attack = SparseRs::default();
        assert!(attack.location_prob(0) > attack.location_prob(5_000));
        assert!(attack.location_prob(5_000) > attack.location_prob(10_000));
        assert!(attack.location_prob(10_000) >= 0.1 - 1e-9);
    }

    #[test]
    fn is_deterministic_under_seed() {
        let target = Location::new(2, 2);
        let clf = guided_classifier(target);
        let attack = SparseRs::default();
        let img = Image::filled(6, 6, Pixel([0.5, 0.5, 0.5]));
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let mut oracle = Oracle::new(&clf);
            attack.attack(&mut oracle, &img, 0, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
