//! SuOPA: the original one-pixel attack of Su et al. (2017), based on
//! differential evolution.
//!
//! Unlike OPPSLA and Sparse-RS, SuOPA searches the *continuous* colour
//! space `[0, 1]³` (not just the RGB-cube corners) and was not designed to
//! minimize queries: every generation evaluates the whole population, so
//! the minimum query cost is one population's worth (400 in the paper).
//!
//! Candidates are encoded as 5-vectors `(row, col, r, g, b)`. Each
//! generation applies DE/rand/1 mutation `a + F·(b − c)` with `F = 0.5`
//! and greedy one-to-one selection on the true-class probability; the
//! attack stops early as soon as any candidate flips the decision.

use crate::traits::{Attack, AttackOutcome};
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::Oracle;
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::telemetry::{self, Counter};
use oppsla_core::tracing::record_oracle_query;
use rand::Rng;
use rand::RngCore;

/// Configuration of the differential-evolution one-pixel attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SuOpaConfig {
    /// Population size (the paper uses 400).
    pub population: usize,
    /// Maximum generations after the initial population.
    pub max_generations: usize,
    /// DE differential weight `F`.
    pub differential_weight: f32,
}

impl Default for SuOpaConfig {
    fn default() -> Self {
        SuOpaConfig {
            population: 400,
            max_generations: 100,
            differential_weight: 0.5,
        }
    }
}

/// One DE candidate: a location and a free colour.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gene {
    row: f32,
    col: f32,
    color: [f32; 3],
}

impl Gene {
    fn clamp(mut self, height: usize, width: usize) -> Gene {
        self.row = self.row.clamp(0.0, height as f32 - 1.0);
        self.col = self.col.clamp(0.0, width as f32 - 1.0);
        for c in &mut self.color {
            *c = c.clamp(0.0, 1.0);
        }
        self
    }

    fn location(&self) -> Location {
        Location::new(self.row.round() as u16, self.col.round() as u16)
    }

    fn pixel(&self) -> Pixel {
        Pixel(self.color)
    }
}

/// The SuOPA differential-evolution attack.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SuOpa {
    config: SuOpaConfig,
    goal: AttackGoal,
}

impl SuOpa {
    /// Creates the attack with `config` (untargeted).
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 4 (DE/rand/1 needs four
    /// distinct members).
    pub fn new(config: SuOpaConfig) -> Self {
        assert!(
            config.population >= 4,
            "DE needs a population of at least 4"
        );
        SuOpa {
            config,
            goal: AttackGoal::Untargeted,
        }
    }

    /// Sets the attack goal (untargeted by default). Targeted DE minimizes
    /// the negated target score, as in Su et al.'s targeted variant.
    pub fn with_goal(mut self, goal: AttackGoal) -> Self {
        self.goal = goal;
        self
    }
}

impl Attack for SuOpa {
    fn name(&self) -> &'static str {
        "su-opa"
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let start = oracle.queries();
        let spent = |oracle: &Oracle<'_>| oracle.queries() - start;
        let (h, w) = (image.height(), image.width());

        let before_baseline = oracle.queries();
        let clean = match oracle.query(image) {
            Ok(s) => s,
            Err(_) => {
                return AttackOutcome::Failure {
                    queries: spent(oracle),
                }
            }
        };
        // A memo-served baseline is not a counted query: no phase
        // attribution, no trace record.
        if oracle.queries() > before_baseline {
            telemetry::count(Counter::QueryBaseline);
            record_oracle_query(
                "baseline",
                spent(oracle),
                None,
                &clean,
                true_class,
                self.goal,
            );
        }
        self.goal.validate(oracle.num_classes(), true_class);
        if oppsla_core::oracle::argmax(&clean) != true_class {
            return AttackOutcome::AlreadyMisclassified {
                queries: spent(oracle),
            };
        }

        // Evaluate one gene: Ok(fitness) where lower is better, or the
        // success/budget outcome. Every candidate is the base image with
        // one pixel replaced, so it goes through the pixel-delta query
        // path and incremental backends recompute only the dirty region.
        // DE can re-propose a gene, so each evaluation opens its own
        // query-guard scope. `phase` attributes the query to the initial
        // population scan or the per-generation refinement.
        enum Eval {
            Fitness(f32),
            Success(Gene),
            Budget,
        }
        let mut scores: Vec<f32> = Vec::with_capacity(clean.len());
        let mut eval = |oracle: &mut Oracle<'_>, gene: Gene, phase: Counter| -> Eval {
            oracle.begin_candidate_scope();
            let before = oracle.queries();
            match oracle.query_pixel_delta_into(image, gene.location(), gene.pixel(), &mut scores) {
                Ok(()) => {
                    // Memo hits (re-proposed genes) are not counted
                    // queries: no phase attribution, no trace record.
                    if oracle.queries() > before {
                        telemetry::count(phase);
                        let trace_phase = if matches!(phase, Counter::QueryInitScan) {
                            "init_scan"
                        } else {
                            "refine"
                        };
                        record_oracle_query(
                            trace_phase,
                            spent(oracle),
                            Some((gene.location(), gene.pixel())),
                            &scores,
                            true_class,
                            self.goal,
                        );
                    }
                    if self.goal.is_adversarial(&scores, true_class) {
                        Eval::Success(gene)
                    } else {
                        Eval::Fitness(self.goal.fitness(&scores, true_class))
                    }
                }
                Err(_) => Eval::Budget,
            }
        };

        // Speculative batching: initial genes are pure RNG draws and each
        // generation's DE picks depend only on the RNG stream and the
        // member index, so both can be pre-drawn a chunk at a time (same
        // draws, same stream order) and speculatively evaluated as a
        // batch. Accepted mutants change the population, invalidating the
        // still-pending speculated mutants, so the attack re-prefetches
        // from the updated population at the next step (the oracle
        // replaces the stale batch) — accounting and scores are
        // unaffected either way.
        const PREFETCH_BATCH: usize = 8;
        let mut upcoming: Vec<(Location, Pixel)> = Vec::with_capacity(PREFETCH_BATCH);

        // Initial population: uniform locations, uniform colours. The
        // genes never depend on evaluation results, so the whole
        // population is drawn up front and prefetched in chunks.
        let genes: Vec<Gene> = (0..self.config.population)
            .map(|_| {
                Gene {
                    row: rng.gen_range(0.0..h as f32),
                    col: rng.gen_range(0.0..w as f32),
                    color: [rng.gen(), rng.gen(), rng.gen()],
                }
                .clamp(h, w)
            })
            .collect();
        let mut population = Vec::with_capacity(self.config.population);
        let mut fitness = Vec::with_capacity(self.config.population);
        for (i, &gene) in genes.iter().enumerate() {
            if !oracle.has_prefetched() {
                upcoming.clear();
                upcoming.extend(
                    genes[i..]
                        .iter()
                        .take(PREFETCH_BATCH)
                        .map(|g| (g.location(), g.pixel())),
                );
                oracle.prefetch_pixel_batch(image, &upcoming);
            }
            match eval(oracle, gene, Counter::QueryInitScan) {
                Eval::Fitness(f) => {
                    population.push(gene);
                    fitness.push(f);
                }
                Eval::Success(g) => {
                    return AttackOutcome::Success {
                        location: g.location(),
                        pixel: g.pixel(),
                        queries: spent(oracle),
                    }
                }
                Eval::Budget => {
                    return AttackOutcome::Failure {
                        queries: spent(oracle),
                    }
                }
            }
        }

        let f = self.config.differential_weight;
        let mutant_of = |population: &[Gene], (a, b, c): (usize, usize, usize)| {
            Gene {
                row: population[a].row + f * (population[b].row - population[c].row),
                col: population[a].col + f * (population[b].col - population[c].col),
                color: [
                    population[a].color[0] + f * (population[b].color[0] - population[c].color[0]),
                    population[a].color[1] + f * (population[b].color[1] - population[c].color[1]),
                    population[a].color[2] + f * (population[b].color[2] - population[c].color[2]),
                ],
            }
            .clamp(h, w)
        };

        let mut picks: std::collections::VecDeque<(usize, usize, usize)> =
            std::collections::VecDeque::with_capacity(PREFETCH_BATCH);
        let mut stale = false;
        for _ in 0..self.config.max_generations {
            picks.clear();
            for i in 0..population.len() {
                // DE/rand/1 member picks depend only on the RNG stream and
                // the target index, so a chunk is pre-drawn (in stream
                // order) and the corresponding mutants — computed from the
                // population *as of the prefetch* — batched speculatively.
                if picks.is_empty() {
                    let n = (population.len() - i).min(PREFETCH_BATCH);
                    for idx in i..i + n {
                        // Three distinct members, none equal to idx.
                        let mut pick = || loop {
                            let j = rng.gen_range(0..population.len());
                            if j != idx {
                                return j;
                            }
                        };
                        picks.push_back((pick(), pick(), pick()));
                    }
                }
                if stale || !oracle.has_prefetched() {
                    stale = false;
                    upcoming.clear();
                    upcoming.extend(picks.iter().map(|&abc| {
                        let m = mutant_of(&population, abc);
                        (m.location(), m.pixel())
                    }));
                    oracle.prefetch_pixel_batch(image, &upcoming);
                }
                let abc = picks.pop_front().expect("refilled above");
                let mutant = mutant_of(&population, abc);
                match eval(oracle, mutant, Counter::QueryRefine) {
                    Eval::Fitness(fit) => {
                        if fit < fitness[i] {
                            population[i] = mutant;
                            fitness[i] = fit;
                            stale = true;
                        }
                    }
                    Eval::Success(g) => {
                        return AttackOutcome::Success {
                            location: g.location(),
                            pixel: g.pixel(),
                            queries: spent(oracle),
                        }
                    }
                    Eval::Budget => {
                        return AttackOutcome::Failure {
                            queries: spent(oracle),
                        }
                    }
                }
            }
        }
        AttackOutcome::Failure {
            queries: spent(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_config() -> SuOpaConfig {
        SuOpaConfig {
            population: 8,
            max_generations: 20,
            differential_weight: 0.5,
        }
    }

    /// Flips when any pixel is brighter than 0.95 in all channels; the
    /// true-class probability decreases with the brightest pixel, giving
    /// DE a fitness gradient.
    fn brightness_classifier() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, |img: &Image| {
            let max = img.data().iter().copied().fold(0.0f32, f32::max);
            if max > 0.95 {
                vec![0.1, 0.9]
            } else {
                let conf = 0.95 - 0.3 * max;
                vec![conf, 1.0 - conf]
            }
        })
    }

    #[test]
    fn de_finds_bright_pixel_attack() {
        let clf = brightness_classifier();
        let attack = SuOpa::new(small_config());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(6, 6, Pixel([0.3, 0.3, 0.3]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        match outcome {
            AttackOutcome::Success { pixel, .. } => {
                // The classifier flips when the brightest channel exceeds 0.95.
                assert!(pixel.0.iter().any(|&c| c > 0.95), "{pixel}");
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn minimum_queries_is_baseline_plus_population() {
        // On an unattackable classifier the first generation alone costs
        // population queries (plus the baseline).
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let attack = SuOpa::new(SuOpaConfig {
            population: 8,
            max_generations: 0,
            differential_weight: 0.5,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 9 });
    }

    #[test]
    fn respects_oracle_budget_mid_generation() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let attack = SuOpa::new(small_config());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut oracle = Oracle::with_budget(&clf, 13);
        let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
        let outcome = attack.attack(&mut oracle, &img, 0, &mut rng);
        assert_eq!(outcome, AttackOutcome::Failure { queries: 13 });
    }

    #[test]
    fn gene_clamping_keeps_candidates_valid() {
        let g = Gene {
            row: -3.0,
            col: 99.0,
            color: [1.5, -0.5, 0.5],
        }
        .clamp(8, 8);
        assert_eq!(g.location(), Location::new(0, 7));
        assert_eq!(g.pixel(), Pixel([1.0, 0.0, 0.5]));
    }

    #[test]
    #[should_panic(expected = "population of at least 4")]
    fn rejects_tiny_population() {
        SuOpa::new(SuOpaConfig {
            population: 3,
            max_generations: 1,
            differential_weight: 0.5,
        });
    }

    #[test]
    fn is_deterministic_under_seed() {
        let clf = brightness_classifier();
        let attack = SuOpa::new(small_config());
        let img = Image::filled(5, 5, Pixel([0.4, 0.4, 0.4]));
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            let mut oracle = Oracle::new(&clf);
            attack.attack(&mut oracle, &img, 0, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
