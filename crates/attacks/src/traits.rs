//! The common attack interface all one-pixel attacks implement.

use oppsla_core::image::Image;
use oppsla_core::oracle::Oracle;
use oppsla_core::pair::{Location, Pixel};
use rand::RngCore;
use std::fmt;

/// Result of attacking one image.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackOutcome {
    /// A perturbation that flips the classifier was found.
    Success {
        /// Perturbed location.
        location: Location,
        /// The adversarial pixel value.
        pixel: Pixel,
        /// Queries spent by this attack run.
        queries: u64,
    },
    /// The attack gave up (budget exhausted or search space exhausted).
    Failure {
        /// Queries spent by this attack run.
        queries: u64,
    },
    /// The clean image was already misclassified; nothing to do.
    AlreadyMisclassified {
        /// Queries spent (typically the single baseline query).
        queries: u64,
    },
}

impl AttackOutcome {
    /// Queries spent, regardless of outcome.
    pub fn queries(&self) -> u64 {
        match self {
            AttackOutcome::Success { queries, .. }
            | AttackOutcome::Failure { queries }
            | AttackOutcome::AlreadyMisclassified { queries } => *queries,
        }
    }

    /// True for [`AttackOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, AttackOutcome::Success { .. })
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOutcome::Success {
                location,
                pixel,
                queries,
            } => write!(f, "success at {location} ← {pixel} after {queries} queries"),
            AttackOutcome::Failure { queries } => write!(f, "failure after {queries} queries"),
            AttackOutcome::AlreadyMisclassified { queries } => {
                write!(f, "already misclassified ({queries} queries)")
            }
        }
    }
}

/// A black-box one-pixel attack.
///
/// Attacks receive a query-counting [`Oracle`] (which may carry a budget)
/// and a random source; deterministic attacks ignore the latter. All
/// randomness must come from `rng` so experiments are reproducible.
pub trait Attack {
    /// A short stable name for reports (e.g. `"sparse-rs"`).
    fn name(&self) -> &'static str;

    /// Attacks `image` (true class `true_class`) through `oracle`.
    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> AttackOutcome;
}

/// The margin loss used by the query-efficient baselines:
/// `scores[c] − max_{j≠c} scores[j]`. Negative iff the classifier's
/// decision is not `c`.
///
/// # Panics
///
/// Panics if `scores` has fewer than two entries or `true_class` is out of
/// range.
pub fn margin(scores: &[f32], true_class: usize) -> f32 {
    assert!(scores.len() >= 2, "margin needs at least two classes");
    assert!(true_class < scores.len(), "true class out of range");
    let mut best_other = f32::NEG_INFINITY;
    for (j, &s) in scores.iter().enumerate() {
        if j != true_class && s > best_other {
            best_other = s;
        }
    }
    scores[true_class] - best_other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_sign_tracks_decision() {
        assert!(margin(&[0.7, 0.2, 0.1], 0) > 0.0);
        assert!(margin(&[0.2, 0.7, 0.1], 0) < 0.0);
        assert_eq!(margin(&[0.5, 0.5], 0), 0.0);
    }

    #[test]
    fn margin_uses_best_other_class() {
        let m = margin(&[0.5, 0.1, 0.4], 0);
        assert!((m - 0.1).abs() < 1e-6);
    }

    #[test]
    fn outcome_queries_accessor() {
        let o = AttackOutcome::Failure { queries: 42 };
        assert_eq!(o.queries(), 42);
        assert!(!o.is_success());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn margin_rejects_bad_class() {
        margin(&[0.5, 0.5], 3);
    }
}
