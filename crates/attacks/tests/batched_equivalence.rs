//! A/B equivalence for the speculative batch route: every attack must
//! produce the *same outcome with the same query count* whether the
//! classifier serves prefetched batches through the default sequential
//! fallback or through a genuine [`Classifier::scores_pixel_delta_batch_into`]
//! override — and the override must actually be exercised, proving the
//! attacks arm the batch path at all.

use oppsla_attacks::{Attack, RandomPairs, SparseRs, SparseRsConfig, SuOpa, SuOpaConfig};
use oppsla_core::image::Image;
use oppsla_core::oracle::{Classifier, FnClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use std::cell::Cell;

/// Wraps a classifier with a real batch override (scoring all candidates
/// in one call) and counts how often the batch entry point runs.
struct BatchingClassifier<C> {
    inner: C,
    batch_calls: Cell<u64>,
    batched_candidates: Cell<u64>,
}

impl<C> BatchingClassifier<C> {
    fn new(inner: C) -> Self {
        BatchingClassifier {
            inner,
            batch_calls: Cell::new(0),
            batched_candidates: Cell::new(0),
        }
    }
}

impl<C: Classifier> Classifier for BatchingClassifier<C> {
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.inner.scores(image)
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.inner
            .scores_pixel_delta_into(base, location, pixel, out);
    }

    fn scores_pixel_delta_batch_into(
        &self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        self.batch_calls.set(self.batch_calls.get() + 1);
        self.batched_candidates
            .set(self.batched_candidates.get() + candidates.len() as u64);
        out.clear();
        let mut one = Vec::new();
        for &(location, pixel) in candidates {
            self.inner
                .scores_pixel_delta_into(base, location, pixel, &mut one);
            out.extend_from_slice(&one);
        }
    }
}

/// A classifier with a genuine one-pixel weakness plus a margin gradient,
/// so the stochastic attacks accept proposals (exercising batch flushes).
fn weak() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
    let target = Location::new(4, 2);
    FnClassifier::new(2, move |img: &Image| {
        if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
            return vec![0.1, 0.9];
        }
        let mut best = f32::INFINITY;
        for row in 0..img.height() as u16 {
            for col in 0..img.width() as u16 {
                let p = img.pixel(Location::new(row, col));
                if p != Pixel([0.5, 0.5, 0.5]) {
                    best = best.min(Location::new(row, col).distance(target) as f32);
                }
            }
        }
        let conf = if best.is_finite() {
            0.55 + 0.03 * best.min(12.0)
        } else {
            0.95
        };
        vec![conf, 1.0 - conf]
    })
}

fn check_attack(attack: &dyn Attack, seed: u64, dims: (usize, usize)) {
    use rand::SeedableRng;
    let img = Image::filled(dims.0, dims.1, Pixel([0.5, 0.5, 0.5]));

    let plain = weak();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut oracle = Oracle::new(&plain);
    let sequential = attack.attack(&mut oracle, &img, 0, &mut rng);
    let sequential_queries = oracle.queries();

    let batching = BatchingClassifier::new(weak());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut oracle = Oracle::new(&batching);
    let batched = attack.attack(&mut oracle, &img, 0, &mut rng);

    assert_eq!(batched, sequential, "{} outcome diverged", attack.name());
    assert_eq!(
        oracle.queries(),
        sequential_queries,
        "{} query accounting diverged",
        attack.name()
    );
    assert!(
        batching.batch_calls.get() > 0,
        "{} never armed the batch path",
        attack.name()
    );
    assert!(
        batching.batched_candidates.get() >= 2,
        "{} batches were trivial",
        attack.name()
    );
}

#[test]
fn random_pairs_batched_matches_sequential() {
    for seed in [0, 7] {
        check_attack(&RandomPairs::default(), seed, (6, 6));
    }
}

#[test]
fn sparse_rs_batched_matches_sequential() {
    let attack = SparseRs::new(SparseRsConfig {
        max_iterations: 120,
        ..SparseRsConfig::default()
    });
    for seed in [3, 11] {
        check_attack(&attack, seed, (8, 8));
    }
}

#[test]
fn suopa_batched_matches_sequential() {
    let attack = SuOpa::new(SuOpaConfig {
        population: 10,
        max_generations: 6,
        differential_weight: 0.5,
    });
    for seed in [1, 5] {
        check_attack(&attack, seed, (6, 6));
    }
}

#[test]
fn sketch_attack_batched_matches_sequential() {
    use oppsla_attacks::SketchProgramAttack;
    use oppsla_core::dsl::Program;
    // Both the reorder-free and the always-eager instantiations: the
    // latter reorders the queue constantly, stressing flush-and-fallback.
    for program in [Program::constant(false), Program::constant(true)] {
        let attack = SketchProgramAttack::new(program);
        check_attack(&attack, 0, (5, 5));
    }
}
