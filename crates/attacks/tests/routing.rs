//! A/B routing tests: every attack submits its one-pixel candidates
//! through [`Classifier::scores_pixel_delta_into`], the path incremental
//! backends accelerate — never through a full-image forward pass — and
//! the rerouting changes neither scores nor query accounting.

use oppsla_attacks::{Attack, RandomPairs, SparseRs, SparseRsConfig, SuOpa, SuOpaConfig};
use oppsla_core::image::Image;
use oppsla_core::oracle::{Classifier, FnClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;

/// Wraps a classifier and tallies which query path each call used.
struct RouteCounter<C> {
    inner: C,
    full: Cell<u64>,
    pixel_delta: Cell<u64>,
}

impl<C> RouteCounter<C> {
    fn new(inner: C) -> Self {
        RouteCounter {
            inner,
            full: Cell::new(0),
            pixel_delta: Cell::new(0),
        }
    }
}

impl<C: Classifier> Classifier for RouteCounter<C> {
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.full.set(self.full.get() + 1);
        self.inner.scores(image)
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        self.full.set(self.full.get() + 1);
        self.inner.scores_into(image, out);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.pixel_delta.set(self.pixel_delta.get() + 1);
        self.inner
            .scores_pixel_delta_into(base, location, pixel, out);
    }
}

/// A robust classifier: no one-pixel attack exists, so the attacks run
/// until their iteration cap and the candidate counts are deterministic.
fn robust() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
    FnClassifier::new(2, |_: &Image| vec![0.9, 0.1])
}

fn grey(h: usize, w: usize) -> Image {
    Image::filled(h, w, Pixel([0.5, 0.5, 0.5]))
}

#[test]
fn sparse_rs_routes_candidates_through_pixel_delta() {
    let clf = RouteCounter::new(robust());
    let attack = SparseRs::new(SparseRsConfig {
        max_iterations: 40,
        ..SparseRsConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut oracle = Oracle::new(&clf);
    let outcome = attack.attack(&mut oracle, &grey(8, 8), 0, &mut rng);
    // Accounting is unchanged by the rerouting: 1 baseline + 40 proposals.
    assert_eq!(outcome.queries(), 41);
    assert_eq!(clf.full.get(), 1, "only the baseline is a full query");
    // Speculative prefetching may re-evaluate candidates whose batch was
    // flushed by an accepted proposal — extra *classifier* work, never
    // extra counted queries — so the delta-path call count is a floor.
    assert!(
        clf.pixel_delta.get() >= 40,
        "every proposal is a pixel delta (got {})",
        clf.pixel_delta.get()
    );
}

#[test]
fn suopa_routes_candidates_through_pixel_delta() {
    let clf = RouteCounter::new(robust());
    let attack = SuOpa::new(SuOpaConfig {
        population: 6,
        max_generations: 3,
        differential_weight: 0.5,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut oracle = Oracle::new(&clf);
    let outcome = attack.attack(&mut oracle, &grey(6, 6), 0, &mut rng);
    // 1 baseline + 6 initial population + 3 generations of 6 mutants.
    assert_eq!(outcome.queries(), 25);
    assert_eq!(clf.full.get(), 1);
    assert_eq!(clf.pixel_delta.get(), 24);
}

#[test]
fn random_pairs_routes_candidates_through_pixel_delta() {
    let clf = RouteCounter::new(robust());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut oracle = Oracle::new(&clf);
    let outcome = RandomPairs::default().attack(&mut oracle, &grey(3, 3), 0, &mut rng);
    assert_eq!(outcome.queries(), 73);
    assert_eq!(clf.full.get(), 1);
    assert_eq!(clf.pixel_delta.get(), 72);
}

#[test]
fn rerouting_preserves_scores_and_outcomes() {
    // A classifier with a genuine weakness: the rerouted attacks must
    // find the same adversarial pixel with the same query spend as an
    // un-wrapped run (the wrapper only counts; the scores are identical).
    let target = Location::new(2, 3);
    let weak = move || {
        FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        })
    };
    let run = |clf: &dyn Classifier| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut oracle = Oracle::new(clf);
        RandomPairs::default().attack(&mut oracle, &grey(5, 5), 0, &mut rng)
    };
    let bare = weak();
    let wrapped = RouteCounter::new(weak());
    assert_eq!(run(&bare), run(&wrapped));
}
