//! Criterion bench: whole-attack cost per image against a synthetic
//! black-box classifier with a planted weakness — compares the sketch
//! (fixed and condition-guided) with Sparse-RS end to end, isolating
//! bookkeeping overhead from network cost (the classifier here is a cheap
//! closure, so queue and DSL overhead dominate).

use criterion::{criterion_group, criterion_main, Criterion};
use oppsla_attacks::{Attack, SketchProgramAttack, SparseRs, SparseRsConfig};
use oppsla_core::dsl::Program;
use oppsla_core::image::Image;
use oppsla_core::oracle::{FnClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    // Weakness off-centre so the fixed prioritization has real work to do.
    let clf = FnClassifier::new(2, |img: &Image| {
        if img.pixel(Location::new(25, 6)) == Pixel([1.0, 1.0, 1.0]) {
            vec![0.1, 0.9]
        } else {
            vec![0.9, 0.1]
        }
    });
    let image = Image::filled(32, 32, Pixel([0.3, 0.4, 0.5]));

    let mut group = c.benchmark_group("attack_per_image");
    group.sample_size(20);

    for (name, program) in [
        ("sketch_false", Program::constant(false)),
        ("sketch_paper_example", Program::paper_example()),
    ] {
        let attack = SketchProgramAttack::new(program);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut oracle = Oracle::new(&clf);
                let mut rng = ChaCha8Rng::seed_from_u64(0);
                black_box(attack.attack(&mut oracle, black_box(&image), 0, &mut rng))
            });
        });
    }

    let sparse = SparseRs::new(SparseRsConfig {
        max_iterations: 8192,
        ..SparseRsConfig::default()
    });
    group.bench_function("sparse_rs", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(&clf);
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            black_box(sparse.attack(&mut oracle, black_box(&image), 0, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
