//! Criterion bench: condition-language operations — parsing,
//! pretty-printing, typed mutation and condition evaluation. These run
//! once per popped pair inside the sketch's hot loop (eval) and once per
//! MH iteration (mutate), so their costs bound synthesis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use oppsla_core::dsl::{mutate, parse_program, random_program, CondCtx, ImageDims, Program};
use oppsla_core::image::Image;
use oppsla_core::pair::{Location, Pixel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_dsl(c: &mut Criterion) {
    let program = Program::paper_example();
    let text = program.to_string();

    c.bench_function("dsl/parse_program", |b| {
        b.iter(|| parse_program(black_box(&text)).unwrap());
    });

    c.bench_function("dsl/display_program", |b| {
        b.iter(|| black_box(&program).to_string());
    });

    let dims = ImageDims::new(32, 32);
    c.bench_function("dsl/mutate", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut current = random_program(&mut rng, dims);
        b.iter(|| {
            current = mutate(&mut rng, &current, dims);
            black_box(current.is_paper_grammar())
        });
    });

    let image = Image::filled(32, 32, Pixel([0.3, 0.5, 0.7]));
    let orig = vec![0.8f32, 0.05, 0.15];
    let pert = vec![0.6f32, 0.2, 0.2];
    let ctx = CondCtx {
        image: &image,
        location: Location::new(10, 20),
        perturbation: Pixel([1.0, 0.0, 1.0]),
        orig_scores: &orig,
        pert_scores: &pert,
        true_class: 0,
    };
    c.bench_function("dsl/eval_four_conditions", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for i in 1..=4 {
                hits += black_box(&program).condition(i, black_box(&ctx)) as u32;
            }
            black_box(hits)
        });
    });
}

criterion_group!(benches, bench_dsl);
criterion_main!(benches);
