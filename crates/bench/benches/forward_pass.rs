//! Criterion bench: classifier query latency (single-image forward pass)
//! for every zoo architecture — the unit cost behind every query count in
//! the paper's tables.

use criterion::{criterion_group, criterion_main, Criterion};
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_pass_32x32");
    let image = Tensor::from_fn([3, 32, 32], |i| (i % 97) as f32 / 97.0);
    for arch in [
        Arch::VggSmall,
        Arch::ResNetSmall,
        Arch::GoogLeNetSmall,
        Arch::DenseNetSmall,
        Arch::Mlp,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(arch, InputSpec::RGB32, 10, &mut rng);
        group.bench_function(arch.id(), |b| {
            b.iter(|| black_box(net.scores(black_box(&image))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("forward_pass_64x64");
    let image = Tensor::from_fn([3, 64, 64], |i| (i % 97) as f32 / 97.0);
    for arch in [Arch::ResNetSmall, Arch::DenseNetSmall] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(arch, InputSpec::RGB64, 20, &mut rng);
        group.bench_function(arch.id(), |b| {
            b.iter(|| black_box(net.scores(black_box(&image))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
