//! Criterion bench: the sketch's pair-queue operations, including the
//! DESIGN.md ablation against a naive `VecDeque` + linear-scan
//! implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use oppsla_core::image::Image;
use oppsla_core::pair::{Corner, Location, Pair, Pixel};
use oppsla_core::queue::PairQueue;
use std::collections::VecDeque;
use std::hint::black_box;

/// The naive reference used as the ablation baseline.
struct NaiveQueue(VecDeque<Pair>);

impl NaiveQueue {
    fn from_real(real: &PairQueue) -> Self {
        NaiveQueue(real.iter().collect())
    }
    fn pop(&mut self) -> Option<Pair> {
        self.0.pop_front()
    }
    fn remove(&mut self, pair: Pair) -> bool {
        match self.0.iter().position(|&p| p == pair) {
            Some(i) => {
                self.0.remove(i);
                true
            }
            None => false,
        }
    }
    fn push_back(&mut self, pair: Pair) -> bool {
        if self.remove(pair) {
            self.0.push_back(pair);
            true
        } else {
            false
        }
    }
    fn next_at_location(&self, loc: Location) -> Option<Pair> {
        self.0.iter().find(|p| p.location == loc).copied()
    }
}

fn workload_pairs(image: &Image) -> Vec<Pair> {
    // A deterministic mixed workload touching the whole grid.
    let (h, w) = (image.height() as u16, image.width() as u16);
    (0..200u32)
        .map(|i| {
            Pair::new(
                Location::new((i * 7 % h as u32) as u16, (i * 13 % w as u32) as u16),
                Corner::new((i % 8) as u8),
            )
        })
        .collect()
}

fn bench_queue(c: &mut Criterion) {
    let image = Image::filled(32, 32, Pixel([0.3, 0.5, 0.7]));
    let pairs = workload_pairs(&image);

    c.bench_function("queue/init_32x32", |b| {
        b.iter(|| black_box(PairQueue::for_image(black_box(&image))));
    });

    let template = PairQueue::for_image(&image);
    c.bench_function("queue/mixed_ops/arena", |b| {
        b.iter_with_setup(
            || template.clone(),
            |mut q| {
                for &p in &pairs {
                    q.push_back(p);
                    q.remove(p);
                    black_box(q.next_at_location(p.location));
                    black_box(q.pop());
                }
                black_box(q.len())
            },
        );
    });

    c.bench_function("queue/mixed_ops/naive_vecdeque", |b| {
        b.iter_with_setup(
            || NaiveQueue::from_real(&template),
            |mut q| {
                for &p in &pairs {
                    q.push_back(p);
                    q.remove(p);
                    black_box(q.next_at_location(p.location));
                    black_box(q.pop());
                }
                black_box(q.0.len())
            },
        );
    });

    c.bench_function("queue/drain_32x32", |b| {
        b.iter_with_setup(
            || template.clone(),
            |mut q| {
                while let Some(p) = q.pop() {
                    black_box(p);
                }
            },
        );
    });
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
