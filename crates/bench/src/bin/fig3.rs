//! Figure 3 reproduction: success rate vs. query budget for OPPSLA,
//! Sparse-RS, SuOPA and DeepSearch on the CIFAR-scale and ImageNet-scale
//! classifier rosters.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin fig3 -- \
//!     [--scale cifar|imagenet|both]  (default cifar)
//!     [--test-per-class N]           (default 2)
//!     [--budget B]                   (default 8192)
//!     [--synth-train N]              (images per class for synthesis, default 3)
//!     [--synth-iters N]              (MH iterations, default 40)
//!     [--synth-budget B]             (per-image cap during synthesis, default 1500)
//!     [--no-prefilter]               (keep unattackable training images)
//!     [--seed S]                     (default 0)
//!     [--fresh]                      (ignore cached program suites)
//!     [--threads N]                  (worker threads; 0 = auto, default 0)
//!     [--memo]                       (share a per-classifier query memo across
//!                                     the attack roster; build with
//!                                     --features query-memo)
//!     [--prior PATH]                 (mined saliency prior JSON reordering the
//!                                     OPPSLA initial queue; see oppsla_eval::prior)
//!     [--telemetry PATH]             (append per-phase telemetry events as JSONL)
//!     [--trace PATH]                 (record per-query trace records as JSONL;
//!                                     build with --features trace)
//! ```
//!
//! Results are bit-identical for any `--threads` value; the knob only
//! changes wall-clock time. `--telemetry` writes only to `PATH` and
//! stderr, never stdout — table and chart output stays byte-identical
//! with or without it (build with `--features telemetry` for non-zero
//! counters). Without `--memo` the memo machinery is never touched, so
//! stdout is byte-identical whether or not `query-memo` was compiled in.
//!
//! Defaults are scaled down to finish in minutes on a laptop; the paper's
//! full setting is `--test-per-class 100 --budget 10000 --synth-train 50
//! --synth-iters 210`.

use oppsla_attacks::{Attack, DeepSearch, SparseRs, SparseRsConfig, SuOpa, SuOpaConfig};
use oppsla_bench::cli::Args;
use oppsla_bench::{
    cifar_archs, finish_trace, imagenet_archs, print_telemetry_summary, reports_dir, start_trace,
    suites_dir, telemetry_sink, threads_from,
};
use oppsla_core::dsl::GrammarConfig;
use oppsla_core::oracle::{Classifier, MemoBank, DEFAULT_MEMO_CAPACITY};
use oppsla_core::synth::SynthConfig;
use oppsla_core::telemetry::{trace, FieldValue};
use oppsla_eval::curves::{
    evaluate_attack_parallel_with_memo, evaluate_attack_parallel_with_sink, AttackEval,
};
use oppsla_eval::obs::with_phase;
use oppsla_eval::plot::{render_chart, ChartConfig, Series};
use oppsla_eval::report::{fmt_rate, fmt_stat, Table};
use oppsla_eval::suite::{synthesize_suite_cached_parallel, SuiteAttack};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla_nn::models::Arch;
use std::time::Instant;

/// One curve series: (classifier id, attack name, sampled curve).
type CurveRow = (String, String, Vec<(u64, f64)>);

fn main() {
    let args = Args::parse();
    let scales: Vec<Scale> = match args.get_str("scale", "cifar").as_str() {
        "cifar" => vec![Scale::Cifar],
        "imagenet" => vec![Scale::ImageNetLike],
        "both" => vec![Scale::Cifar, Scale::ImageNetLike],
        other => panic!("--scale must be cifar|imagenet|both, got {other:?}"),
    };
    let test_per_class = args.get_usize("test-per-class", 2);
    let budget = args.get_u64("budget", 8192);
    let threads = threads_from(&args);
    let tune = oppsla_bench::tune_from(&args);
    eprintln!("running on {threads} worker thread(s), --tune {tune}");
    let synth = SynthConfig {
        max_iterations: args.get_usize("synth-iters", 40),
        beta: 0.01,
        seed: args.get_u64("seed", 0),
        per_image_budget: Some(args.get_u64("synth-budget", 1500)),
        prefilter: !args.has("no-prefilter"),
        grammar: GrammarConfig::paper(),
        threads,
    };
    let synth_train_per_class = args.get_usize("synth-train", 3);
    let seed = args.get_u64("seed", 0);
    let use_memo = args.has("memo");
    if use_memo && cfg!(not(feature = "query-memo")) {
        eprintln!("warning: built without --features query-memo; --memo is inert");
    }
    let prior = args.get_opt_str("prior").map(|path| {
        let prior = oppsla_eval::prior::load_prior(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("--prior: {e}"));
        eprintln!(
            "loaded saliency prior ({0}x{0} grid) from {path}",
            prior.grid()
        );
        std::sync::Arc::new(prior)
    });
    let mut sink = telemetry_sink(&args);
    let tracing = start_trace(&args);

    let checkpoints: Vec<u64> = [100u64, 500, 1000, budget]
        .into_iter()
        .filter(|&q| q <= budget)
        .collect();
    let grid: Vec<u64> = (1..=40).map(|i| i * budget / 40).collect();

    for scale in scales {
        let archs: Vec<Arch> = match scale {
            Scale::Cifar => cifar_archs().to_vec(),
            Scale::ImageNetLike => imagenet_archs().to_vec(),
        };
        let mut headers = vec!["Classifier".to_owned(), "Attack".to_owned()];
        headers.extend(checkpoints.iter().map(|q| format!("q<={q}")));
        headers.push("Avg #Q (succ)".into());
        let mut table = Table::new(
            format!("Figure 3 ({scale}): success rate by query budget"),
            headers,
        );
        let mut curve_rows: Vec<CurveRow> = Vec::new();

        for arch in archs {
            let t0 = Instant::now();
            let model = train_or_load(arch, scale, &ZooConfig::default());
            eprintln!(
                "[{scale}/{arch}] model ready in {:.1?} (test acc {:.3})",
                t0.elapsed(),
                model.test_accuracy
            );

            let train = attack_test_set(scale, synth_train_per_class, seed.wrapping_add(10));
            let cache = (!args.has("fresh")).then(|| {
                suites_dir().join(format!(
                    "{}-{}-i{}-t{}-s{}.json",
                    arch.id(),
                    scale.id(),
                    synth.max_iterations,
                    synth_train_per_class,
                    synth.seed
                ))
            });
            // The engine-backed classifier snapshot serves every query of
            // synthesis and evaluation: allocation-free forward passes,
            // shareable across worker threads.
            let classifier = model.classifier();
            let t1 = Instant::now();
            let synth_labels = [
                ("scale", FieldValue::Str(scale.to_string())),
                ("arch", FieldValue::Str(arch.id().to_owned())),
                ("train_images", FieldValue::U64(train.len() as u64)),
            ];
            trace::begin_section(trace::SectionMeta {
                label: format!("fig3/{scale}/{}/synthesis", arch.id()),
                scale: scale.id().to_owned(),
                arch: arch.id().to_owned(),
                set: "synth_train".to_owned(),
                per_class: synth_train_per_class as u32,
                set_seed: seed.wrapping_add(10),
                budget: synth.per_image_budget.unwrap_or(0),
                attack: "synthesis".to_owned(),
                attack_seed: synth.seed,
            });
            let (suite, reports) = with_phase(&mut *sink, "suite_synthesis", &synth_labels, || {
                synthesize_suite_cached_parallel(
                    &classifier,
                    &train,
                    model.num_classes(),
                    &synth,
                    cache.as_deref(),
                )
            });
            match reports {
                Some(reports) => {
                    let synth_queries: u64 =
                        reports.iter().flatten().map(|r| r.total_queries).sum();
                    eprintln!(
                        "[{scale}/{arch}] synthesized suite in {:.1?} ({synth_queries} synthesis queries)",
                        t1.elapsed()
                    );
                }
                None => eprintln!("[{scale}/{arch}] loaded cached program suite"),
            }

            let test = attack_test_set(scale, test_per_class, seed.wrapping_add(999));
            let mut suite_attack = SuiteAttack::new(suite);
            if let Some(prior) = &prior {
                suite_attack = suite_attack.with_prior(prior.clone());
            }
            let attacks: Vec<Box<dyn Attack + Sync>> = vec![
                Box::new(suite_attack),
                Box::new(SparseRs::new(SparseRsConfig {
                    max_iterations: budget,
                    ..SparseRsConfig::default()
                })),
                Box::new(SuOpa::new(SuOpaConfig::default())),
                Box::new(DeepSearch::default()),
            ];
            // One bank per classifier, shared across the whole roster:
            // memo keys carry no classifier identity, so the bank must
            // never outlive this arch.
            let memo_bank = use_memo.then(|| MemoBank::new(test.len(), DEFAULT_MEMO_CAPACITY));
            for attack in &attacks {
                let t2 = Instant::now();
                trace::begin_section(trace::SectionMeta {
                    label: format!("fig3/{scale}/{}/{}", arch.id(), attack.name()),
                    scale: scale.id().to_owned(),
                    arch: arch.id().to_owned(),
                    set: "test".to_owned(),
                    per_class: test_per_class as u32,
                    set_seed: seed.wrapping_add(999),
                    budget,
                    attack: attack.name().to_owned(),
                    attack_seed: seed,
                });
                let eval: AttackEval = match &memo_bank {
                    Some(bank) => {
                        let labels = [
                            ("attack", FieldValue::Str(attack.name().to_owned())),
                            ("budget", FieldValue::U64(budget)),
                            ("images", FieldValue::U64(test.len() as u64)),
                        ];
                        with_phase(&mut *sink, "attack_eval", &labels, || {
                            evaluate_attack_parallel_with_memo(
                                attack.as_ref(),
                                &classifier,
                                &test,
                                budget,
                                seed,
                                threads,
                                bank,
                            )
                        })
                    }
                    None => evaluate_attack_parallel_with_sink(
                        attack.as_ref(),
                        &classifier,
                        &test,
                        budget,
                        seed,
                        threads,
                        &mut *sink,
                    ),
                };
                eprintln!(
                    "[{scale}/{arch}] {}: {} valid, success {} in {:.1?}",
                    attack.name(),
                    eval.num_valid(),
                    fmt_rate(eval.success_rate()),
                    t2.elapsed()
                );
                let mut row = vec![arch.id().to_owned(), attack.name().to_owned()];
                row.extend(
                    checkpoints
                        .iter()
                        .map(|&q| fmt_rate(eval.success_rate_at(q))),
                );
                row.push(fmt_stat(eval.avg_queries()));
                table.push_row(row);
                curve_rows.push((
                    arch.id().to_owned(),
                    attack.name().to_owned(),
                    eval.curve(&grid),
                ));
            }
        }

        println!("{table}");

        // One ASCII panel per classifier, matching the paper's layout.
        let mut by_arch: Vec<&str> = curve_rows.iter().map(|(a, _, _)| a.as_str()).collect();
        by_arch.dedup();
        for arch in by_arch {
            let series: Vec<Series> = curve_rows
                .iter()
                .filter(|(a, _, _)| a == arch)
                .map(|(_, attack, curve)| {
                    Series::new(
                        attack.clone(),
                        curve.iter().map(|&(q, r)| (q as f64, r)).collect(),
                    )
                })
                .collect();
            let chart = render_chart(
                &series,
                &ChartConfig {
                    width: 60,
                    height: 12,
                    title: format!("{arch}: success rate vs queries (log x)"),
                    x_label: "queries".into(),
                    y_label: "success rate".into(),
                    log_x: true,
                },
            );
            println!("{chart}");
        }

        let mut csv = Table::new(
            format!("fig3-{scale}"),
            vec![
                "classifier".into(),
                "attack".into(),
                "budget".into(),
                "success_rate".into(),
            ],
        );
        for (arch, attack, curve) in &curve_rows {
            for (q, rate) in curve {
                csv.push_row(vec![
                    arch.clone(),
                    attack.clone(),
                    q.to_string(),
                    format!("{rate:.4}"),
                ]);
            }
        }
        let path = reports_dir().join(format!("fig3-{scale}.csv"));
        match csv.write_csv(&path) {
            Ok(()) => println!("curve data written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    print_telemetry_summary();
    finish_trace(tracing);
}
