//! Figure 4 reproduction: average attack queries of the intermediate
//! accepted programs as a function of synthesis queries (left panel) and
//! iterations (right panel), compared against the fixed-prioritization
//! (Sketch+False) baseline.
//!
//! The paper runs this on VGG-16-BN with a 50-image Airplane training set
//! and a 1000-image Airplane test set; we run it on the VGG-family
//! stand-in with one `shapes32` class.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin fig4 -- \
//!     [--class C]        (default 0)
//!     [--train N]        (training images of that class, default 4)
//!     [--test N]         (test images of that class, default 8)
//!     [--iters N]        (MH iterations, default 40)
//!     [--synth-budget B] (per-image cap during synthesis, default 1500)
//!     [--no-prefilter]   (keep unattackable training images)
//!     [--budget B]       (evaluation budget, default 8192)
//!     [--seed S]         (default 0)
//!     [--threads N]      (worker threads; 0 = auto, default 0)
//!     [--telemetry PATH] (append per-phase telemetry events as JSONL)
//! ```
//!
//! Results are bit-identical for any `--threads` value and with or
//! without `--telemetry` (which writes only to `PATH` and stderr).

use oppsla_bench::cli::Args;
use oppsla_bench::{print_telemetry_summary, reports_dir, telemetry_sink, threads_from};
use oppsla_core::dsl::GrammarConfig;
use oppsla_core::synth::SynthConfig;
use oppsla_eval::plot::{render_chart, ChartConfig, Series};
use oppsla_eval::report::Table;
use oppsla_eval::trajectory::{run_trajectory_parallel_with_sink, trajectory_table};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla_nn::models::Arch;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let class = args.get_usize("class", 0);
    let train_n = args.get_usize("train", 4);
    let test_n = args.get_usize("test", 8);
    let budget = args.get_u64("budget", 8192);
    let threads = threads_from(&args);
    let tune = oppsla_bench::tune_from(&args);
    eprintln!("running on {threads} worker thread(s), --tune {tune}");
    let synth = SynthConfig {
        max_iterations: args.get_usize("iters", 40),
        beta: 0.01,
        seed: args.get_u64("seed", 0),
        per_image_budget: Some(args.get_u64("synth-budget", 1500)),
        prefilter: !args.has("no-prefilter"),
        grammar: GrammarConfig::paper(),
        threads,
    };
    let seed = args.get_u64("seed", 0);
    let mut sink = telemetry_sink(&args);

    let scale = Scale::Cifar;
    let t0 = Instant::now();
    let model = train_or_load(Arch::VggSmall, scale, &ZooConfig::default());
    eprintln!(
        "model ready in {:.1?} (test acc {:.3})",
        t0.elapsed(),
        model.test_accuracy
    );

    // One-class training and test sets, like the paper's Airplane setup.
    let of_class = |per_class: usize, seed: u64| -> Vec<_> {
        attack_test_set(scale, per_class, seed)
            .into_iter()
            .filter(|(_, c)| *c == class)
            .collect()
    };
    let train = of_class(train_n, seed.wrapping_add(10));
    let test = of_class(test_n, seed.wrapping_add(999));
    eprintln!(
        "class {class}: {} training images, {} test images",
        train.len(),
        test.len()
    );

    // Engine-backed weight snapshot: allocation-free forward passes,
    // shareable across worker threads (the model itself is not `Sync`).
    let classifier = model.classifier();
    let t1 = Instant::now();
    let result = run_trajectory_parallel_with_sink(
        &classifier,
        &train,
        &test,
        &synth,
        budget,
        seed,
        &mut *sink,
    );
    eprintln!(
        "trajectory computed in {:.1?} ({} accepted programs, {} total synthesis queries)",
        t1.elapsed(),
        result.points.len(),
        result.report.total_queries
    );

    let table = trajectory_table(&result);
    println!("{table}");

    // The two panels of Figure 4 as ASCII charts, with the Sketch+False
    // line as a flat comparison series.
    for (title, x_label, xs) in [
        (
            "avg #queries vs synthesis queries",
            "synthesis queries",
            result
                .points
                .iter()
                .map(|p| p.synthesis_queries as f64)
                .collect::<Vec<_>>(),
        ),
        (
            "avg #queries vs iterations",
            "iteration",
            result.points.iter().map(|p| p.iteration as f64).collect(),
        ),
    ] {
        let oppsla_series = Series::new(
            "oppsla (accepted programs)",
            xs.iter()
                .zip(&result.points)
                .map(|(&x, p)| (x, p.test_avg_queries))
                .collect(),
        );
        let baseline = Series::new(
            "sketch+false",
            xs.iter().map(|&x| (x, result.fixed_baseline_avg)).collect(),
        );
        let chart = render_chart(
            &[oppsla_series, baseline],
            &ChartConfig {
                width: 60,
                height: 12,
                title: title.into(),
                x_label: x_label.into(),
                y_label: "avg #queries (test)".into(),
                log_x: false,
            },
        );
        println!("{chart}");
    }
    if let Some(last) = result.points.last() {
        let improvement = result.fixed_baseline_avg / last.test_avg_queries;
        println!(
            "final accepted program vs Sketch+False baseline: {:.2}x fewer queries",
            improvement
        );
        println!("final program: {}", last.program);
    }

    let mut csv = Table::new(
        "fig4",
        vec![
            "iteration".into(),
            "synthesis_queries".into(),
            "test_avg_queries".into(),
            "test_success_rate".into(),
        ],
    );
    for p in &result.points {
        csv.push_row(vec![
            p.iteration.to_string(),
            p.synthesis_queries.to_string(),
            format!("{:.3}", p.test_avg_queries),
            format!("{:.4}", p.test_success_rate),
        ]);
    }
    let path = reports_dir().join("fig4.csv");
    match csv.write_csv(&path) {
        Ok(()) => println!("trajectory data written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    print_telemetry_summary();
}
