//! Forward-pass microbenchmark: tape-based `ConvNet::scores` vs. the
//! compiled allocation-free [`InferencePlan`] hot path, plus parallel
//! query throughput and the incremental pixel-delta engine, for every zoo
//! architecture.
//!
//! Emits machine-readable JSON reports (default `BENCH_forward.json` and
//! `BENCH_incremental.json` at the current directory) so CI and future
//! sessions can track the query hot path's cost without parsing criterion
//! output.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin forward_bench -- \
//!     [--iters N]     (timed queries per measurement, default 200)
//!     [--batch N]     (images per throughput measurement, default 64)
//!     [--batch-k N]   (candidates per batched sweep, default 8)
//!     [--threads N]   (worker threads; 0 = auto, default 0)
//!     [--gemm-threads N] (GEMM worker fan-out; 0 = leave process default)
//!     [--tune MODE]   (conv route tuning: measure | off, default measure)
//!     [--out PATH]    (default BENCH_forward.json)
//!     [--inc-out PATH] (default BENCH_incremental.json)
//!     [--batched-out PATH] (default BENCH_batched.json)
//! ```
//!
//! `engine_speedup` is the seed repo's per-query cost (the allocating
//! autograd tape, still exercised by `ConvNet::scores`) divided by the
//! compiled plan's per-query cost on the same weights and input.
//! `incremental_speedup` is the compiled plan's full-forward cost divided
//! by the dirty-region pixel-delta cost on the same base image, measured
//! over a sweep of candidate pixels that mirrors the attack's query
//! pattern (one cached base, many single-pixel candidates).

use oppsla_bench::cli::Args;
use oppsla_bench::{threads_from, tune_from};
use oppsla_core::parallel::parallel_map_with;
use oppsla_nn::delta::BaseActivations;
use oppsla_nn::infer::InferenceEngine;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::{gemm, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// One architecture's measurements, all in nanoseconds per query or
/// queries per second, plus the tuner's route decisions so regressions
/// are attributable to dispatch vs kernel.
struct Row {
    arch: &'static str,
    input: String,
    tape_ns: f64,
    engine_ns: f64,
    incremental_ns: f64,
    batched_delta_ns: f64,
    batched_forward_ns: f64,
    sequential_qps: f64,
    parallel_qps: f64,
    /// Full-forward conv routes, e.g. `direct:2,gemm:6` (`none` = no convs).
    fwd_routes: String,
    /// Batched-delta group thresholds, e.g. `g8:5,g32:3`.
    delta_routes: String,
}

/// Compacts per-conv route labels into `label:count` pairs in first-seen
/// order (`none` for conv-free plans like the MLP).
fn route_summary(labels: impl Iterator<Item = String>) -> String {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for l in labels {
        match counts.iter_mut().find(|(k, _)| *k == l) {
            Some((_, c)) => *c += 1,
            None => counts.push((l, 1)),
        }
    }
    if counts.is_empty() {
        return "none".to_owned();
    }
    counts
        .iter()
        .map(|(k, c)| format!("{k}:{c}"))
        .collect::<Vec<_>>()
        .join(",")
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tape_ns / self.engine_ns
    }

    fn incremental_speedup(&self) -> f64 {
        self.engine_ns / self.incremental_ns
    }

    /// Batched candidate throughput over the sequential delta path.
    fn batched_speedup(&self) -> f64 {
        self.incremental_ns / self.batched_delta_ns
    }

    /// Batched full-forward throughput over the sequential full forward.
    fn batched_forward_speedup(&self) -> f64 {
        self.engine_ns / self.batched_forward_ns
    }
}

fn main() {
    let args = Args::parse();
    let iters = args.get_usize("iters", 200).max(1);
    let batch = args.get_usize("batch", 64).max(1);
    let batch_k = args.get_usize("batch-k", 8).max(1);
    let threads = threads_from(&args);
    let tune = tune_from(&args);
    // GEMM fan-out inside a single product: 0 (default) leaves the
    // process-wide setting (OPPSLA_GEMM_THREADS or 1) untouched.
    let gemm_threads_arg = args.get_usize("gemm-threads", 0);
    if gemm_threads_arg > 0 {
        gemm::set_gemm_threads(gemm_threads_arg);
    }
    let gemm_threads = gemm::gemm_threads();
    let simd_isa = gemm::simd_isa();
    let out_path = args.get_str("out", "BENCH_forward.json");
    let inc_out_path = args.get_str("inc-out", "BENCH_incremental.json");
    let batched_out_path = args.get_str("batched-out", "BENCH_batched.json");

    eprintln!(
        "{iters} iters, {batch}-image batches, {batch_k}-candidate sweeps, {threads} worker \
         thread(s), simd {simd_isa}, {gemm_threads} GEMM thread(s), --tune {tune}"
    );

    let cases: [(Arch, InputSpec, usize); 7] = [
        (Arch::VggSmall, InputSpec::RGB32, 10),
        (Arch::ResNetSmall, InputSpec::RGB32, 10),
        (Arch::GoogLeNetSmall, InputSpec::RGB32, 10),
        (Arch::DenseNetSmall, InputSpec::RGB32, 10),
        (Arch::Mlp, InputSpec::RGB32, 10),
        (Arch::ResNetSmall, InputSpec::RGB64, 20),
        (Arch::DenseNetSmall, InputSpec::RGB64, 20),
    ];

    let mut rows = Vec::new();
    for (arch, input, classes) in cases {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(arch, input, classes, &mut rng);
        let engine = InferenceEngine::new(&net);
        let plan = engine.plan();
        let image = Tensor::from_fn([input.channels, input.height, input.width], |i| {
            (i % 97) as f32 / 97.0
        });

        // Warm-up both paths (first tape call grows its arena; first plan
        // call touches the workspace pages).
        let tape_scores = net.scores(&image);
        let engine_scores = engine.scores(&image);
        assert_eq!(
            tape_scores, engine_scores,
            "[{arch}] engine disagrees with the tape"
        );

        // Seed path: autograd tape, allocating per query.
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(net.scores(black_box(&image)));
        }
        let tape_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        // Compiled path: reused workspace + score buffer, zero
        // steady-state allocations.
        let mut ws = plan.workspace();
        let mut buf = Vec::with_capacity(plan.num_classes());
        let t1 = Instant::now();
        for _ in 0..iters {
            plan.scores_into(&mut ws, black_box(&image), &mut buf);
            black_box(&buf);
        }
        let engine_ns = t1.elapsed().as_nanos() as f64 / iters as f64;

        // Incremental path: one cached base, many single-pixel candidates
        // — the attack's actual query pattern. The candidate sweep walks
        // the image with RGB-corner values like the sketch's pair queue.
        let delta = engine.delta_plan();
        let acts = BaseActivations::capture(plan, &mut ws, &image);
        let mut dws = delta.workspace(&acts);
        let corners = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 1.0],
            [0.0, 1.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        let (h, w) = (input.height, input.width);
        // Sanity: the incremental path must be bit-identical to a full
        // forward on the poked image.
        {
            let (row, col) = (h / 3, w / 2);
            let rgb = corners[1];
            delta.scores_pixel_delta_into(plan, &acts, &mut dws, row, col, rgb, &mut buf);
            let mut poked = image.clone();
            let area = h * w;
            for (c, v) in rgb.iter().enumerate() {
                poked.data_mut()[c * area + row * w + col] = *v;
            }
            let mut full = Vec::new();
            plan.scores_into(&mut ws, &poked, &mut full);
            assert_eq!(
                buf, full,
                "[{arch}] incremental disagrees with full forward"
            );
        }
        let t2 = Instant::now();
        for i in 0..iters {
            let (row, col) = ((i * 13) % h, (i * 29) % w);
            delta.scores_pixel_delta_into(
                plan,
                &acts,
                &mut dws,
                black_box(row),
                black_box(col),
                corners[i % corners.len()],
                &mut buf,
            );
            black_box(&buf);
        }
        let incremental_ns = t2.elapsed().as_nanos() as f64 / iters as f64;

        // Batched candidate path: the same pixel-candidate sweep, `batch_k`
        // candidates per layer-major sweep over shared base activations.
        let mut batch_dws: Vec<_> = (0..batch_k).map(|_| delta.workspace(&acts)).collect();
        let mut scratch = oppsla_nn::delta::DeltaBatchScratch::new();
        let mut cands: Vec<(usize, usize, [f32; 3])> = Vec::with_capacity(batch_k);
        let mut batch_buf: Vec<f32> = Vec::with_capacity(batch_k * plan.num_classes());
        let sweeps = (iters / batch_k).max(1);
        let fill_cands = |cands: &mut Vec<(usize, usize, [f32; 3])>, sweep: usize| {
            cands.clear();
            for j in 0..batch_k {
                let q = sweep * batch_k + j;
                cands.push(((q * 13) % h, (q * 29) % w, corners[q % corners.len()]));
            }
        };
        fill_cands(&mut cands, 0); // warm-up sweep
        delta.scores_pixel_delta_batch_into(
            plan,
            &acts,
            &mut batch_dws,
            &cands,
            &mut scratch,
            &mut batch_buf,
        );
        let t3 = Instant::now();
        for sweep in 0..sweeps {
            fill_cands(&mut cands, sweep);
            delta.scores_pixel_delta_batch_into(
                plan,
                &acts,
                &mut batch_dws,
                black_box(&cands),
                &mut scratch,
                &mut batch_buf,
            );
            black_box(&batch_buf);
        }
        let batched_delta_ns = t3.elapsed().as_nanos() as f64 / (sweeps * batch_k) as f64;

        // Batched full forward: `batch_k` whole images per layer-major
        // sweep against the sequential compiled forward.
        let batch_images: Vec<Tensor> = (0..batch_k)
            .map(|b| {
                Tensor::from_fn([input.channels, input.height, input.width], |i| {
                    ((i + b * 53) % 97) as f32 / 97.0
                })
            })
            .collect();
        let batched_plan = plan.batched();
        let mut bws = batched_plan.workspace(batch_k);
        batched_plan.scores_batch_into(&mut bws, &batch_images, &mut batch_buf); // warm-up
        let t4 = Instant::now();
        for _ in 0..sweeps {
            batched_plan.scores_batch_into(&mut bws, black_box(&batch_images), &mut batch_buf);
            black_box(&batch_buf);
        }
        let batched_forward_ns = t4.elapsed().as_nanos() as f64 / (sweeps * batch_k) as f64;

        // Throughput over a batch of distinct images, sequential vs. the
        // scoped-thread parallel map used by synthesis and evaluation.
        let images: Vec<Tensor> = (0..batch)
            .map(|b| {
                Tensor::from_fn([input.channels, input.height, input.width], |i| {
                    ((i + b * 31) % 97) as f32 / 97.0
                })
            })
            .collect();
        let run_batch = |threads: usize| -> f64 {
            let t = Instant::now();
            let top: Vec<usize> = parallel_map_with(
                threads,
                &images,
                || (plan.workspace(), Vec::with_capacity(plan.num_classes())),
                |(ws, buf), _, image| {
                    plan.scores_into(ws, image, buf);
                    buf.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                },
            );
            black_box(top);
            images.len() as f64 / t.elapsed().as_secs_f64()
        };
        run_batch(threads); // warm-up (thread spawn, page faults)
        let sequential_qps = run_batch(1);
        let parallel_qps = run_batch(threads);

        let row = Row {
            arch: arch.id(),
            input: format!("{}x{}x{}", input.channels, input.height, input.width),
            tape_ns,
            engine_ns,
            incremental_ns,
            batched_delta_ns,
            batched_forward_ns,
            sequential_qps,
            parallel_qps,
            fwd_routes: route_summary(plan.tuner_report().iter().map(|d| d.route().to_owned())),
            delta_routes: route_summary(delta.tuner_report().iter().map(|d| d.route())),
        };
        eprintln!(
            "[{arch} {}] tape {:.0} ns/q, engine {:.0} ns/q ({:.2}x), incr {:.0} ns/q ({:.2}x), batched-delta {:.0} ns/q ({:.2}x), batched-fwd {:.0} ns/q ({:.2}x), {:.0} q/s seq, {:.0} q/s x{threads}",
            row.input,
            row.tape_ns,
            row.engine_ns,
            row.speedup(),
            row.incremental_ns,
            row.incremental_speedup(),
            row.batched_delta_ns,
            row.batched_speedup(),
            row.batched_forward_ns,
            row.batched_forward_speedup(),
            row.sequential_qps,
            row.parallel_qps,
        );
        rows.push(row);
    }

    // Hand-rolled JSON: flat schema, stable key order, no serde needed.
    // Telemetry instrumentation adds per-op timer reads to the full
    // forward path, so reports must state whether it was compiled in —
    // only `telemetry_enabled: false` numbers are comparable baselines.
    let telemetry_enabled = oppsla_core::telemetry::enabled();

    // Cost of one op-timer hook (a no-op without the feature): two clock
    // reads plus a thread-local add. Per-query telemetry overhead is this
    // times the plan's op count (tens of ops, so microseconds against
    // forwards costing hundreds) — measured in-process because wall-clock
    // A/B diffs between separately compiled binaries drown in
    // code-layout noise.
    let hook_ns = {
        let hook_iters = 200_000u32;
        let th = Instant::now();
        for _ in 0..hook_iters {
            let t = oppsla_core::telemetry::op_timer(oppsla_core::telemetry::OpKind::Conv);
            black_box(&t);
        }
        th.elapsed().as_nanos() as f64 / f64::from(hook_iters)
    };
    // Cost of one disarmed trace hook (route tag + query record): the
    // trace recorder's hot-path sites each start with one relaxed atomic
    // load, so with the feature compiled in but no `--trace` given the
    // per-query cost must stay in single-digit nanoseconds — and with the
    // feature off the hooks are `const false` branches, reported as an
    // exact 0.0 so the CI gate can assert zero-cost-when-off.
    let trace_enabled = oppsla_core::telemetry::trace::enabled();
    let trace_hook_ns = if !trace_enabled {
        0.0
    } else {
        use oppsla_core::telemetry::trace;
        let hook_iters = 200_000u32;
        let th = Instant::now();
        for i in 0..hook_iters {
            trace::tag_route(trace::RouteTag::Delta);
            trace::record_query(trace::QueryInfo {
                phase: "bench",
                seq: u64::from(i),
                pixel: None,
                margin: 0.0,
                pred: 0,
                flip: false,
            });
        }
        th.elapsed().as_nanos() as f64 / f64::from(hook_iters)
    };
    eprintln!(
        "telemetry enabled: {telemetry_enabled}, op-timer hook ~{hook_ns:.0} ns; \
         trace enabled: {trace_enabled}, disarmed query hook ~{trace_hook_ns:.1} ns"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"forward_pass\",\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"batch\": {batch},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"simd_isa\": \"{simd_isa}\",\n"));
    json.push_str(&format!("  \"gemm_threads\": {gemm_threads},\n"));
    json.push_str(&format!("  \"tune\": \"{tune}\",\n"));
    json.push_str(&format!("  \"telemetry_enabled\": {telemetry_enabled},\n"));
    json.push_str(&format!("  \"telemetry_hook_ns_per_op\": {hook_ns:.1},\n"));
    json.push_str(&format!("  \"trace_enabled\": {trace_enabled},\n"));
    json.push_str(&format!(
        "  \"trace_hook_ns_per_op\": {trace_hook_ns:.1},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"arch\": \"{}\", \"input\": \"{}\", ",
                "\"tape_ns_per_query\": {:.1}, \"engine_ns_per_query\": {:.1}, ",
                "\"engine_speedup\": {:.3}, \"sequential_queries_per_sec\": {:.1}, ",
                "\"parallel_queries_per_sec\": {:.1}, \"tuned_route\": \"{}\"}}{}\n"
            ),
            row.arch,
            row.input,
            row.tape_ns,
            row.engine_ns,
            row.speedup(),
            row.sequential_qps,
            row.parallel_qps,
            row.fwd_routes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("report written to {out_path}"),
        Err(e) => {
            eprintln!("warning: could not write {out_path}: {e}");
            println!("{json}");
        }
    }

    // Companion report: the incremental pixel-delta engine against the
    // full compiled forward, same flat hand-rolled schema.
    let mut inc = String::from("{\n");
    inc.push_str("  \"benchmark\": \"incremental_pixel_delta\",\n");
    inc.push_str(&format!("  \"iters\": {iters},\n"));
    inc.push_str(&format!("  \"simd_isa\": \"{simd_isa}\",\n"));
    inc.push_str(&format!("  \"gemm_threads\": {gemm_threads},\n"));
    inc.push_str(&format!("  \"tune\": \"{tune}\",\n"));
    inc.push_str(&format!("  \"telemetry_enabled\": {telemetry_enabled},\n"));
    inc.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        inc.push_str(&format!(
            concat!(
                "    {{\"arch\": \"{}\", \"input\": \"{}\", ",
                "\"full_ns_per_query\": {:.1}, \"incremental_ns_per_query\": {:.1}, ",
                "\"incremental_speedup\": {:.3}, \"tuned_route\": \"{}\"}}{}\n"
            ),
            row.arch,
            row.input,
            row.engine_ns,
            row.incremental_ns,
            row.incremental_speedup(),
            row.fwd_routes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    inc.push_str("  ]\n}\n");

    match std::fs::write(&inc_out_path, &inc) {
        Ok(()) => println!("report written to {inc_out_path}"),
        Err(e) => {
            eprintln!("warning: could not write {inc_out_path}: {e}");
            println!("{inc}");
        }
    }

    // Companion report: batched candidate inference (layer-major sweeps
    // over shared base activations, plus batched whole-image forwards)
    // against the sequential paths, same flat hand-rolled schema.
    let mut bat = String::from("{\n");
    bat.push_str("  \"benchmark\": \"batched_inference\",\n");
    bat.push_str(&format!("  \"iters\": {iters},\n"));
    bat.push_str(&format!("  \"batch_k\": {batch_k},\n"));
    bat.push_str(&format!("  \"simd_isa\": \"{simd_isa}\",\n"));
    bat.push_str(&format!("  \"gemm_threads\": {gemm_threads},\n"));
    bat.push_str(&format!("  \"tune\": \"{tune}\",\n"));
    bat.push_str(&format!("  \"telemetry_enabled\": {telemetry_enabled},\n"));
    bat.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        bat.push_str(&format!(
            concat!(
                "    {{\"arch\": \"{}\", \"input\": \"{}\", ",
                "\"sequential_delta_ns_per_candidate\": {:.1}, ",
                "\"batched_delta_ns_per_candidate\": {:.1}, ",
                "\"batched_candidates_per_sec\": {:.1}, ",
                "\"batched_speedup\": {:.3}, ",
                "\"sequential_forward_ns_per_image\": {:.1}, ",
                "\"batched_forward_ns_per_image\": {:.1}, ",
                "\"batched_forward_speedup\": {:.3}, \"tuned_route\": \"{}\"}}{}\n"
            ),
            row.arch,
            row.input,
            row.incremental_ns,
            row.batched_delta_ns,
            1e9 / row.batched_delta_ns,
            row.batched_speedup(),
            row.engine_ns,
            row.batched_forward_ns,
            row.batched_forward_speedup(),
            row.delta_routes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    bat.push_str("  ]\n}\n");

    match std::fs::write(&batched_out_path, &bat) {
        Ok(()) => println!("report written to {batched_out_path}"),
        Err(e) => {
            eprintln!("warning: could not write {batched_out_path}: {e}");
            println!("{bat}");
        }
    }
}
