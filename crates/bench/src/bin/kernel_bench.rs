//! GEMM micro-kernel benchmark: every SIMD level the host can execute,
//! plus the threaded column-partition path, on the conv-shaped products
//! the inference engine actually runs. Asserts bit-identity against the
//! naive reference kernel for every configuration before timing it, so a
//! kernel that got fast by getting wrong can never produce a report.
//!
//! Emits `BENCH_kernel.json` (flat hand-rolled schema like the other
//! bench reports); CI uploads it as an artifact so per-ISA kernel
//! regressions are attributable separately from dispatch decisions.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin kernel_bench -- \
//!     [--iters N]   (timed repetitions per shape, default 20)
//!     [--out PATH]  (default BENCH_kernel.json)
//! ```

use oppsla_bench::cli::Args;
use oppsla_tensor::gemm::{available_levels, matmul_packed_into_with, pack_a, simd_isa, SimdLevel};
use oppsla_tensor::ops::matmul_into;
use std::hint::black_box;
use std::time::Instant;

/// Conv-shaped GEMM sizes from the zoo: `[out_c, k] × [k, columns]`.
/// Labels name the layer the shape is taken from.
const SHAPES: [(&str, usize, usize, usize); 4] = [
    ("vgg_conv_32x32", 64, 576, 1024),
    ("densenet_stem_64x64", 64, 432, 4096),
    ("resnet_block_16x16", 128, 1152, 256),
    ("delta_group_4x4", 256, 2304, 48),
];

fn lcg_data(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

struct Config {
    level: SimdLevel,
    threads: usize,
}

fn main() {
    let args = Args::parse();
    let iters = args.get_usize("iters", 20).max(1);
    let out_path = args.get_str("out", "BENCH_kernel.json");

    let levels = available_levels();
    let mut configs: Vec<Config> = levels
        .iter()
        .map(|&level| Config { level, threads: 1 })
        .collect();
    // Thread sweep at the widest level only — the partition logic is
    // level-independent.
    let widest = *levels.last().expect("scalar always available");
    for threads in [2, 4] {
        configs.push(Config {
            level: widest,
            threads,
        });
    }

    eprintln!(
        "{iters} iters/shape, detected isa {}, {} configuration(s)",
        simd_isa(),
        configs.len()
    );

    // rows: (shape label, level, threads, best ns, gflops, speedup vs scalar)
    let mut rows: Vec<(String, String, usize, u64, f64, f64)> = Vec::new();
    for &(label, m, k, n) in &SHAPES {
        let a = lcg_data(m * k, 0xa11ce);
        let b = lcg_data(k * n, 0xb0b);
        let packed = pack_a(&a, m, k);
        let mut reference = vec![f32::NAN; m * n];
        matmul_into(&a, &b, m, k, n, &mut reference);
        let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        let flops = 2.0 * (m * k * n) as f64;

        let mut scalar_ns = 0u64;
        for config in &configs {
            let mut pack_buf = Vec::new();
            let mut out = vec![f32::NAN; m * n];
            // Correctness first: this configuration must reproduce the
            // naive kernel bit for bit or the benchmark is meaningless.
            matmul_packed_into_with(
                config.level,
                config.threads,
                &packed,
                &b,
                n,
                &mut pack_buf,
                &mut out,
            );
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_bits,
                "{label}: level {} threads {} diverged from the naive kernel",
                config.level.as_str(),
                config.threads
            );

            let mut best = u64::MAX;
            for _ in 0..iters {
                let t = Instant::now();
                matmul_packed_into_with(
                    config.level,
                    config.threads,
                    &packed,
                    black_box(&b),
                    n,
                    &mut pack_buf,
                    &mut out,
                );
                black_box(&out);
                best = best.min(t.elapsed().as_nanos() as u64);
            }
            if config.level == SimdLevel::Scalar && config.threads == 1 {
                scalar_ns = best;
            }
            let gflops = flops / best as f64;
            let vs_scalar = scalar_ns as f64 / best as f64;
            eprintln!(
                "[{label}] {m}x{k}x{n} {}/{}t: {best} ns, {gflops:.2} GFLOP/s, {vs_scalar:.2}x scalar",
                config.level.as_str(),
                config.threads
            );
            rows.push((
                label.to_owned(),
                config.level.as_str().to_owned(),
                config.threads,
                best,
                gflops,
                vs_scalar,
            ));
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"gemm_kernel\",\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"simd_isa\": \"{}\",\n", simd_isa()));
    json.push_str("  \"results\": [\n");
    for (i, (label, level, threads, ns, gflops, vs_scalar)) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"shape\": \"{}\", \"level\": \"{}\", \"threads\": {}, ",
                "\"best_ns\": {}, \"gflops\": {:.3}, \"speedup_vs_scalar\": {:.3}}}{}\n"
            ),
            label,
            level,
            threads,
            ns,
            gflops,
            vs_scalar,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("report written to {out_path}"),
        Err(e) => {
            eprintln!("warning: could not write {out_path}: {e}");
            println!("{json}");
        }
    }
}
