//! Search-efficiency benchmark: average queries-to-success with and
//! without the cross-restart query memo (`BENCH_search.json`).
//!
//! Runs a fixed attack roster — the paper's example sketch program and
//! the DeepSearch coarse-to-fine baseline — over the fig3 test set for
//! each architecture, `--restarts` times per arm. The `memo_off` arm
//! pays every oracle query in every restart; the `memo_on` arm shares
//! one per-classifier [`MemoBank`] across the whole roster and all
//! restarts, so a candidate is only ever paid for once (the
//! crash-recovery / CI-retry / re-evaluation scenario the memo exists
//! for). Both arms run the *same* evaluations with the same seeds and
//! budgets; the binary asserts the memo changed query counts only
//! downward and outcomes not at all before reporting.
//!
//! ```text
//! cargo run --release -p oppsla-bench --features query-memo --bin search_bench -- \
//!     [--archs mlp,vgg-small,resnet-small]  (cifar-scale roster)
//!     [--test-per-class N]   (default 1)
//!     [--budget B]           (default 600)
//!     [--restarts R]         (default 3; evaluations per arm)
//!     [--seed S]             (default 0)
//!     [--threads N]          (0 = auto)
//!     [--out PATH]           (one JSON row per arch + a summary row)
//!     [--require-speedup X]  (exit nonzero unless the geomean
//!                             queries-to-success speedup is >= X)
//!     [--trace PATH]         (record both arms' counted queries;
//!                             build with --features trace — replaying
//!                             the memo-on arm proves memo hits are
//!                             never counted as oracle queries)
//! ```
//!
//! Rows carry `arch`/`input`/`queries_speedup` in the shape
//! `scripts/bench_gate.sh` scans, so CI gates the geomean
//! queries-to-success ratio against the committed `BENCH_search.json`.
//! Query counts are exact integers from a deterministic evaluation —
//! unlike the timing benches there is no run-to-run noise, so the gate's
//! regression margin is pure headroom. Without the `query-memo` feature
//! the memo arm degenerates to the off arm (speedup 1.0); the binary
//! warns, and `--require-speedup` fails.

use oppsla_attacks::{Attack, DeepSearch, SketchProgramAttack};
use oppsla_bench::cli::Args;
use oppsla_bench::{finish_trace, reports_dir, start_trace, threads_from};
use oppsla_core::dsl::Program;
use oppsla_core::oracle::{MemoBank, DEFAULT_MEMO_CAPACITY};
use oppsla_core::telemetry::trace;
use oppsla_eval::curves::{
    evaluate_attack_parallel, evaluate_attack_parallel_with_memo, AttackEval,
};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla_nn::models::Arch;
use std::fmt::Write as _;
use std::time::Instant;

fn parse_archs(spec: &str) -> Vec<Arch> {
    spec.split(',')
        .map(|id| {
            [
                Arch::VggSmall,
                Arch::ResNetSmall,
                Arch::GoogLeNetSmall,
                Arch::DenseNetSmall,
                Arch::Mlp,
            ]
            .into_iter()
            .find(|a| a.id() == id.trim())
            .unwrap_or_else(|| panic!("--archs: unknown arch {id:?}"))
        })
        .collect()
}

/// Totals of one arm: counted queries and successes over every
/// (attack, restart) evaluation.
#[derive(Default)]
struct Arm {
    queries: u64,
    successes: u64,
    evals: Vec<AttackEval>,
}

impl Arm {
    fn absorb(&mut self, eval: AttackEval) {
        self.queries += eval.outcomes.iter().map(|o| o.queries()).sum::<u64>();
        self.successes += eval.success_queries().len() as u64;
        self.evals.push(eval);
    }

    /// Total counted queries per success — the paper's efficiency metric
    /// with the failures' spend honestly included in the numerator.
    fn avg_queries_to_success(&self) -> Option<f64> {
        (self.successes > 0).then(|| self.queries as f64 / self.successes as f64)
    }
}

fn main() {
    let args = Args::parse();
    let archs = parse_archs(&args.get_str("archs", "mlp,vgg-small,resnet-small"));
    let per_class = args.get_usize("test-per-class", 1);
    let budget = args.get_u64("budget", 600);
    let restarts = args.get_usize("restarts", 3).max(1);
    let seed = args.get_u64("seed", 0);
    let threads = threads_from(&args);
    let require: Option<f64> = args.get_opt_str("require-speedup").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--require-speedup expects a number, got {v:?}"))
    });
    if cfg!(not(feature = "query-memo")) {
        eprintln!(
            "warning: built without --features query-memo; the memo arm pays full price \
             and every speedup will be 1.0"
        );
    }
    let tracing = start_trace(&args);

    let scale = Scale::Cifar;
    let attacks: Vec<Box<dyn Attack + Sync>> = vec![
        Box::new(SketchProgramAttack::new(Program::paper_example())),
        Box::new(DeepSearch::default()),
    ];

    let mut rows: Vec<String> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for arch in archs {
        let t0 = Instant::now();
        let model = train_or_load(arch, scale, &ZooConfig::default());
        let classifier = model.classifier();
        let test = attack_test_set(scale, per_class, seed.wrapping_add(999));
        eprintln!(
            "[{arch}] model ready in {:.1?} (test acc {:.3}), {} image(s)",
            t0.elapsed(),
            model.test_accuracy,
            test.len()
        );

        // One memo bank per classifier, shared across attacks and
        // restarts; never across archs (memo keys carry no classifier
        // identity).
        let bank = MemoBank::new(test.len(), DEFAULT_MEMO_CAPACITY);
        let mut arms = [Arm::default(), Arm::default()];
        for (arm_idx, arm_name) in [(0usize, "memo_off"), (1, "memo_on")] {
            for attack in &attacks {
                trace::begin_section(trace::SectionMeta {
                    label: format!("search/{}/{}/{arm_name}", arch.id(), attack.name()),
                    scale: scale.id().to_owned(),
                    arch: arch.id().to_owned(),
                    set: "test".to_owned(),
                    per_class: per_class as u32,
                    set_seed: seed.wrapping_add(999),
                    budget,
                    attack: attack.name().to_owned(),
                    attack_seed: seed,
                });
                for _restart in 0..restarts {
                    let eval = if arm_idx == 1 {
                        evaluate_attack_parallel_with_memo(
                            attack.as_ref(),
                            &classifier,
                            &test,
                            budget,
                            seed,
                            threads,
                            &bank,
                        )
                    } else {
                        evaluate_attack_parallel(
                            attack.as_ref(),
                            &classifier,
                            &test,
                            budget,
                            seed,
                            threads,
                        )
                    };
                    arms[arm_idx].absorb(eval);
                }
            }
        }
        let [off, on] = &arms;

        // Honest-accounting A/B: the memo may only remove queries, never
        // change what the attack finds.
        assert_eq!(
            off.evals.len(),
            on.evals.len(),
            "arms ran different numbers of evaluations"
        );
        for (o, n) in off.evals.iter().zip(&on.evals) {
            assert_eq!(o.outcomes.len(), n.outcomes.len());
            for (a, b) in o.outcomes.iter().zip(&n.outcomes) {
                assert!(
                    b.queries() <= a.queries(),
                    "[{arch}] memo-on run spent {} > memo-off's {}",
                    b.queries(),
                    a.queries()
                );
            }
        }
        assert!(
            on.successes >= off.successes,
            "[{arch}] memo-on lost successes: {} < {}",
            on.successes,
            off.successes
        );

        let evals = off.evals.len();
        let mut row = format!(
            "{{\"bench\": \"search\", \"arch\": \"{}\", \"input\": \"{}\", \"images\": {}, \
             \"attacks\": {}, \"restarts\": {restarts}, \"budget\": {budget}, \
             \"evals_per_arm\": {evals}, \"queries_off\": {}, \"queries_on\": {}, \
             \"successes_off\": {}, \"successes_on\": {}",
            arch.id(),
            scale.id(),
            test.len(),
            attacks.len(),
            off.queries,
            on.queries,
            off.successes,
            on.successes,
        );
        match (off.avg_queries_to_success(), on.avg_queries_to_success()) {
            (Some(a_off), Some(a_on)) => {
                let speedup = a_off / a_on;
                write!(
                    row,
                    ", \"avg_queries_off\": {a_off:.3}, \"avg_queries_on\": {a_on:.3}, \
                     \"queries_speedup\": {speedup:.4}}}"
                )
                .expect("write to String");
                println!("[{arch}] avg queries-to-success {a_off:.1} -> {a_on:.1} ({speedup:.2}x)");
                speedups.push(speedup);
            }
            _ => {
                row.push('}');
                eprintln!(
                    "warning: [{arch}] no successful attacks in an arm; row carries no \
                     queries_speedup (raise --budget or --test-per-class)"
                );
            }
        }
        rows.push(row);
    }

    let geomean = (!speedups.is_empty())
        .then(|| (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp());
    if let Some(g) = geomean {
        println!(
            "geomean queries-to-success speedup over {} arch(es): {g:.2}x",
            speedups.len()
        );
        rows.push(format!(
            "{{\"bench\": \"search_summary\", \"geomean_queries_speedup\": {g:.4}, \
             \"memo_feature\": {}}}",
            cfg!(feature = "query-memo")
        ));
    }

    let out = args
        .get_opt_str("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| reports_dir().join("BENCH_search.json"));
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let body = rows.iter().fold(String::new(), |mut acc, r| {
        acc.push_str(r);
        acc.push('\n');
        acc
    });
    match std::fs::write(&out, body) {
        Ok(()) => println!("report written to {}", out.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    finish_trace(tracing);

    if let Some(min) = require {
        match geomean {
            Some(g) if g >= min => {}
            Some(g) => {
                eprintln!("FAIL: geomean speedup {g:.2}x < required {min:.2}x");
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL: no comparable cells produced a speedup");
                std::process::exit(1);
            }
        }
    }
}
