//! Table 1 reproduction: transferability of synthesized programs across
//! the CIFAR-scale classifiers (GoogLeNet / ResNet18 / VGG-16-BN stand-ins).
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin table1 -- \
//!     [--test-per-class N]   (default 2)
//!     [--budget B]           (default 8192)
//!     [--synth-train N]      (default 3)
//!     [--synth-iters N]      (default 40)
//!     [--synth-budget B]     (default 1500)
//!     [--no-prefilter]       (keep unattackable training images)
//!     [--seed S]             (default 0)
//!     [--fresh]
//!     [--threads N]          (worker threads; 0 = auto, default 0)
//!     [--memo]               (share one query memo per *target* classifier
//!                             across all source suites; build with
//!                             --features query-memo)
//!     [--telemetry PATH]     (append per-phase telemetry events as JSONL)
//!     [--trace PATH]         (record per-query trace records as JSONL;
//!                             build with --features trace)
//! ```
//!
//! Results are bit-identical for any `--threads` value and with or
//! without `--telemetry` (which writes only to `PATH` and stderr).
//! Without `--memo` the memo machinery is never touched, so stdout is
//! byte-identical whether or not `query-memo` was compiled in.

use oppsla_bench::cli::Args;
use oppsla_bench::{
    cifar_archs, finish_trace, print_telemetry_summary, reports_dir, start_trace, suites_dir,
    telemetry_sink, threads_from,
};
use oppsla_core::dsl::GrammarConfig;
use oppsla_core::oracle::{BatchClassifier, Classifier, MemoBank, DEFAULT_MEMO_CAPACITY};
use oppsla_core::synth::SynthConfig;
use oppsla_core::telemetry::{trace, FieldValue};
use oppsla_eval::obs::with_phase;
use oppsla_eval::suite::{synthesize_suite_cached_parallel, ProgramSuite};
use oppsla_eval::transfer::{
    run_transfer_parallel_traced, run_transfer_parallel_with_memo, transfer_table,
};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooClassifier, ZooConfig};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let test_per_class = args.get_usize("test-per-class", 2);
    let budget = args.get_u64("budget", 8192);
    let threads = threads_from(&args);
    let tune = oppsla_bench::tune_from(&args);
    eprintln!("running on {threads} worker thread(s), --tune {tune}");
    let synth = SynthConfig {
        max_iterations: args.get_usize("synth-iters", 40),
        beta: 0.01,
        seed: args.get_u64("seed", 0),
        per_image_budget: Some(args.get_u64("synth-budget", 1500)),
        prefilter: !args.has("no-prefilter"),
        grammar: GrammarConfig::paper(),
        threads,
    };
    let synth_train_per_class = args.get_usize("synth-train", 3);
    let seed = args.get_u64("seed", 0);
    let use_memo = args.has("memo");
    if use_memo && cfg!(not(feature = "query-memo")) {
        eprintln!("warning: built without --features query-memo; --memo is inert");
    }
    let mut sink = telemetry_sink(&args);
    let tracing = start_trace(&args);

    let scale = Scale::Cifar;
    let mut labels = Vec::new();
    let mut classifiers: Vec<ZooClassifier> = Vec::new();
    let mut suites: Vec<ProgramSuite> = Vec::new();
    for arch in cifar_archs() {
        let t0 = Instant::now();
        let model = train_or_load(arch, scale, &ZooConfig::default());
        eprintln!(
            "[{arch}] model ready in {:.1?} (test acc {:.3})",
            t0.elapsed(),
            model.test_accuracy
        );
        let train = attack_test_set(scale, synth_train_per_class, seed.wrapping_add(10));
        let cache = (!args.has("fresh")).then(|| {
            suites_dir().join(format!(
                "{}-{}-i{}-t{}-s{}.json",
                arch.id(),
                scale.id(),
                synth.max_iterations,
                synth_train_per_class,
                synth.seed
            ))
        });
        // Engine-backed weight snapshot: allocation-free forward passes,
        // shareable across worker threads (the model itself is not `Sync`).
        let classifier = model.classifier();
        let t1 = Instant::now();
        let synth_labels = [
            ("arch", FieldValue::Str(arch.id().to_owned())),
            ("train_images", FieldValue::U64(train.len() as u64)),
        ];
        trace::begin_section(trace::SectionMeta {
            label: format!("table1/{}/synthesis", arch.id()),
            scale: scale.id().to_owned(),
            arch: arch.id().to_owned(),
            set: "synth_train".to_owned(),
            per_class: synth_train_per_class as u32,
            set_seed: seed.wrapping_add(10),
            budget: synth.per_image_budget.unwrap_or(0),
            attack: "synthesis".to_owned(),
            attack_seed: synth.seed,
        });
        let (suite, reports) = with_phase(&mut *sink, "suite_synthesis", &synth_labels, || {
            synthesize_suite_cached_parallel(
                &classifier,
                &train,
                model.num_classes(),
                &synth,
                cache.as_deref(),
            )
        });
        eprintln!(
            "[{arch}] suite {} in {:.1?}",
            if reports.is_some() {
                "synthesized"
            } else {
                "loaded from cache"
            },
            t1.elapsed()
        );
        labels.push(arch.id().to_owned());
        classifiers.push(classifier);
        suites.push(suite);
    }

    let classifier_refs: Vec<&dyn BatchClassifier> = classifiers
        .iter()
        .map(|c| c as &dyn BatchClassifier)
        .collect();
    let test = attack_test_set(scale, test_per_class, seed.wrapping_add(999));
    let t2 = Instant::now();
    let transfer_labels = [
        ("classifiers", FieldValue::U64(labels.len() as u64)),
        ("test_images", FieldValue::U64(test.len() as u64)),
        ("budget", FieldValue::U64(budget)),
    ];
    let transfer_meta = trace::SectionMeta {
        label: "table1/transfer".to_owned(),
        scale: scale.id().to_owned(),
        arch: String::new(), // stamped per (source, target) cell
        set: "test".to_owned(),
        per_class: test_per_class as u32,
        set_seed: seed.wrapping_add(999),
        budget,
        attack: String::new(), // stamped per (source, target) cell
        attack_seed: seed,
    };
    // Memo keys carry no classifier identity, so banks are strictly
    // per *target*: each bank only ever sees one classifier's scores.
    let memo_banks = use_memo.then(|| {
        (0..classifier_refs.len())
            .map(|_| MemoBank::new(test.len(), DEFAULT_MEMO_CAPACITY))
            .collect::<Vec<_>>()
    });
    let result = with_phase(
        &mut *sink,
        "transfer",
        &transfer_labels,
        || match &memo_banks {
            Some(banks) => run_transfer_parallel_with_memo(
                &labels,
                &classifier_refs,
                &suites,
                &test,
                budget,
                seed,
                threads,
                &transfer_meta,
                banks,
            ),
            None => run_transfer_parallel_traced(
                &labels,
                &classifier_refs,
                &suites,
                &test,
                budget,
                seed,
                threads,
                &transfer_meta,
            ),
        },
    );
    eprintln!("transfer matrix computed in {:.1?}", t2.elapsed());

    let table = transfer_table(&result);
    println!("{table}");

    // Success rates are reported separately (the paper notes they are
    // independent of which classifier a program was synthesized for).
    let mut rates =
        oppsla_eval::report::Table::new("Transfer success rates (valid images, within budget)", {
            let mut h = vec!["Target \\ Synthesized for".to_owned()];
            h.extend(labels.iter().cloned());
            h
        });
    for (target, label) in labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        row.extend(
            result.success_rate[target]
                .iter()
                .map(|&r| oppsla_eval::report::fmt_rate(r)),
        );
        rates.push_row(row);
    }
    println!("{rates}");

    let path = reports_dir().join("table1.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("table written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    print_telemetry_summary();
    finish_trace(tracing);
}
