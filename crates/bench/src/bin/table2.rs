//! Table 2 (Appendix C) reproduction: average and median query counts of
//! OPPSLA vs Sketch+False vs Sketch+Random vs Sparse-RS on the CIFAR-scale
//! classifiers.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin table2 -- \
//!     [--test-per-class N]  (default 2)
//!     [--budget B]          (default 8192)
//!     [--synth-train N]     (default 3)
//!     [--synth-iters N]     (default 40; also the Sketch+Random sample count)
//!     [--synth-budget B]    (default 1500)
//!     [--no-prefilter]      (keep unattackable training images)
//!     [--seed S]            (default 0)
//!     [--threads N]         (worker threads; 0 = auto, default 0)
//!     [--telemetry PATH]    (append per-phase telemetry events as JSONL)
//! ```
//!
//! Results are bit-identical for any `--threads` value and with or
//! without `--telemetry` (which writes only to `PATH` and stderr).
//!
//! The paper pairs 210 MH iterations with 210 random samples; the default
//! here is scaled down — pass `--synth-iters 210` for the full setting.

use oppsla_attacks::SparseRsConfig;
use oppsla_bench::cli::Args;
use oppsla_bench::{
    cifar_archs, print_telemetry_summary, reports_dir, telemetry_sink, threads_from,
};
use oppsla_core::dsl::GrammarConfig;
use oppsla_core::synth::SynthConfig;
use oppsla_eval::ablation::{ablation_table, run_ablation_parallel_with_sink, AblationConfig};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let test_per_class = args.get_usize("test-per-class", 2);
    let budget = args.get_u64("budget", 8192);
    let threads = threads_from(&args);
    let tune = oppsla_bench::tune_from(&args);
    eprintln!("running on {threads} worker thread(s), --tune {tune}");
    let config = AblationConfig {
        synth: SynthConfig {
            max_iterations: args.get_usize("synth-iters", 40),
            beta: 0.01,
            seed: args.get_u64("seed", 0),
            per_image_budget: Some(args.get_u64("synth-budget", 1500)),
            prefilter: !args.has("no-prefilter"),
            grammar: GrammarConfig::paper(),
            threads,
        },
        eval_budget: budget,
        sparse_rs: SparseRsConfig {
            max_iterations: budget,
            ..SparseRsConfig::default()
        },
        seed: args.get_u64("seed", 0),
    };
    let synth_train_per_class = args.get_usize("synth-train", 3);
    let seed = args.get_u64("seed", 0);
    let mut sink = telemetry_sink(&args);

    let scale = Scale::Cifar;
    // The ablation trains on a mixed multi-class set (one OPPSLA program
    // per run), matching the Appendix C per-classifier comparison.
    let train = attack_test_set(scale, synth_train_per_class, seed.wrapping_add(10));
    let test = attack_test_set(scale, test_per_class, seed.wrapping_add(999));

    let mut results = Vec::new();
    for arch in cifar_archs() {
        let t0 = Instant::now();
        let model = train_or_load(arch, scale, &ZooConfig::default());
        eprintln!(
            "[{arch}] model ready in {:.1?} (test acc {:.3})",
            t0.elapsed(),
            model.test_accuracy
        );
        // Engine-backed weight snapshot: allocation-free forward passes,
        // shareable across worker threads (the model itself is not `Sync`).
        let classifier = model.classifier();
        let t1 = Instant::now();
        let result = run_ablation_parallel_with_sink(
            arch.id(),
            &classifier,
            &train,
            &test,
            &config,
            &mut *sink,
        );
        eprintln!("[{arch}] ablation done in {:.1?}", t1.elapsed());
        results.push(result);
    }

    let table = ablation_table(&results);
    println!("{table}");

    let path = reports_dir().join("table2.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("table written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    print_telemetry_summary();
}
