//! Micro-timing helper: single-image forward-pass latency per zoo family
//! (used to calibrate experiment defaults; criterion benches give the
//! precise numbers).
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let img = Tensor::from_fn([3, 32, 32], |i| (i % 97) as f32 / 97.0);
    for arch in [
        Arch::VggSmall,
        Arch::ResNetSmall,
        Arch::GoogLeNetSmall,
        Arch::DenseNetSmall,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(arch, InputSpec::RGB32, 10, &mut rng);
        let t = Instant::now();
        let n = 300;
        for _ in 0..n {
            std::hint::black_box(net.scores(&img));
        }
        println!("{arch}: {:?}/query", t.elapsed() / n);
    }
}
