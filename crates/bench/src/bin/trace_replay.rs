//! Deterministic trace replay verification: re-executes every oracle
//! query recorded in a `--trace` file against freshly rebuilt models and
//! image sets, and checks that scores, query accounting, and synthesis
//! bookkeeping come out byte-identical.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin trace_replay -- \
//!     --trace PATH           (trace JSONL written by fig3/table1 --trace)
//!     [--max-mismatches N]   (mismatches printed before truncation, default 20)
//! ```
//!
//! For every section the replayer rebuilds the model named by the section
//! header (`train_or_load` with the default zoo config — the same call the
//! experiment binaries make) and regenerates the image set from its
//! recorded `(scale, per_class, set_seed)`. It then walks the section's
//! metadata in emission order, mirrors the `Class`/`Filter` set
//! narrowings, and re-issues each sweep's queries image by image through a
//! fresh unbudgeted [`Oracle`], verifying per query that
//!
//! - the 1-based ordinal matches the oracle's count (`seq`),
//! - margin, predicted class, and label flip recomputed from the replayed
//!   scores match the recorded values **bit-for-bit**,
//!
//! and per run / per synthesis step that
//!
//! - the run's recorded query count equals both the replayed oracle count
//!   and the number of query records,
//! - each Metropolis–Hastings score equals the exact integer-sum average
//!   recomputed from the step's run records,
//! - each prefilter `Filter` record lists exactly the successful probes.
//!
//! Margins are recomputed under the untargeted goal (the paper's
//! setting); a trace recorded from a targeted attack will report margin
//! mismatches. Oracle routing (`full`/`delta`/`batch_*`) is an execution
//! strategy, not a result, so it is deliberately *not* verified — replay
//! runs sequentially and may route differently while producing identical
//! scores.
//!
//! Exits 0 when everything verifies, 1 on any mismatch (or a trace whose
//! recorder dropped records).

use oppsla_bench::cli::Args;
use oppsla_core::goal::AttackGoal;
use oppsla_core::image::Image;
use oppsla_core::oracle::{argmax, BatchClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::telemetry::trace::{Body, Record, END_SECTION, NO_PIXEL};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooClassifier, ZooConfig};
use oppsla_nn::models::Arch;
use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;

fn parse_arch(id: &str) -> Option<Arch> {
    [
        Arch::VggSmall,
        Arch::ResNetSmall,
        Arch::GoogLeNetSmall,
        Arch::DenseNetSmall,
        Arch::Mlp,
    ]
    .into_iter()
    .find(|a| a.id() == id)
}

fn parse_scale(id: &str) -> Option<Scale> {
    [Scale::Cifar, Scale::ImageNetLike]
        .into_iter()
        .find(|s| s.id() == id)
}

/// One section's records: coordinating-thread metadata in emission order,
/// per-image runs keyed by `(round, image)` with records in emission
/// order.
struct SectionRecords {
    lane0: Vec<Record>,
    runs: BTreeMap<(u32, u32), Vec<Record>>,
}

/// Replay state shared across sections: model and image-set caches (both
/// keyed by the reconstruction recipe, so repeated sections rebuild
/// nothing) and the mismatch log.
struct Replayer {
    classifiers: HashMap<(String, String), ZooClassifier>,
    sets: HashMap<(String, u32, u64), Vec<(Image, usize)>>,
    mismatches: Vec<String>,
    max_mismatches: usize,
    suppressed: u64,
    queries_verified: u64,
    runs_verified: u64,
    sweeps_verified: u64,
}

impl Replayer {
    fn mismatch(&mut self, msg: String) {
        if self.mismatches.len() < self.max_mismatches {
            self.mismatches.push(msg);
        } else {
            self.suppressed += 1;
        }
    }

    fn ensure_classifier(&mut self, scale: Scale, arch: Arch) {
        self.classifiers
            .entry((scale.id().to_owned(), arch.id().to_owned()))
            .or_insert_with(|| {
                eprintln!("rebuilding {}/{}", scale.id(), arch.id());
                train_or_load(arch, scale, &ZooConfig::default()).classifier()
            });
    }

    fn base_set(&mut self, scale: Scale, per_class: u32, set_seed: u64) -> Vec<(Image, usize)> {
        self.sets
            .entry((scale.id().to_owned(), per_class, set_seed))
            .or_insert_with(|| attack_test_set(scale, per_class as usize, set_seed))
            .clone()
    }

    fn replay_section(&mut self, section: u32, recs: &SectionRecords) {
        let mut lane0 = recs.lane0.iter();
        let Some(first) = lane0.next() else { return };
        let Body::Section {
            label,
            scale,
            arch,
            per_class,
            set_seed,
            ..
        } = &first.body
        else {
            self.mismatch(format!(
                "section {section}: first metadata record is {:?}, expected a section header",
                first.kind()
            ));
            return;
        };
        let (Some(scale), Some(arch)) = (parse_scale(scale), parse_arch(arch)) else {
            self.mismatch(format!(
                "section {section} ({label}): unknown scale/arch {scale:?}/{arch:?}"
            ));
            return;
        };
        let base = self.base_set(scale, *per_class, *set_seed);
        let mut current = base.clone();
        // Results of the most recent sweep, for the Synth/Filter records
        // that summarize it: (sweep kind, per-image (queries, success)).
        let mut last_sweep: Option<(String, Vec<(u64, bool)>)> = None;

        for rec in lane0 {
            match &rec.body {
                Body::Section { .. } => {
                    self.mismatch(format!(
                        "section {section} ({label}): second section header at sub {}",
                        rec.sub
                    ));
                    return;
                }
                Body::Class { class } => {
                    current = base
                        .iter()
                        .filter(|(_, c)| *c == *class as usize)
                        .cloned()
                        .collect();
                }
                Body::Filter { kept } => {
                    match &last_sweep {
                        Some((kind, results)) if kind == "prefilter" => {
                            let expected: Vec<u32> = results
                                .iter()
                                .enumerate()
                                .filter(|(_, (_, success))| *success)
                                .map(|(i, _)| i as u32)
                                .collect();
                            if *kept != expected {
                                self.mismatch(format!(
                                    "section {section} ({label}): filter kept {kept:?}, but the \
                                     prefilter probes succeeded on {expected:?}"
                                ));
                            }
                        }
                        _ => self.mismatch(format!(
                            "section {section} ({label}): filter record without a preceding \
                             prefilter sweep"
                        )),
                    }
                    // An empty prefilter keeps the full set (the
                    // synthesizer's nothing-attackable fallback).
                    if kept.iter().any(|&k| k as usize >= current.len()) {
                        self.mismatch(format!(
                            "section {section} ({label}): filter index out of range for a set \
                             of {}",
                            current.len()
                        ));
                        return;
                    }
                    if !kept.is_empty() {
                        current = kept.iter().map(|&k| current[k as usize].clone()).collect();
                    }
                }
                Body::Sweep { sweep, n, .. } => {
                    if *n as usize != current.len() {
                        self.mismatch(format!(
                            "section {section} ({label}) round {}: sweep over {n} image(s), but \
                             the reconstructed set holds {}",
                            rec.round,
                            current.len()
                        ));
                    }
                    let results =
                        self.replay_sweep(section, label, rec.round, &current, (scale, arch), recs);
                    last_sweep = Some((sweep.clone(), results));
                    self.sweeps_verified += 1;
                }
                Body::Synth { step, score, .. } => match &last_sweep {
                    Some((kind, results)) if kind == "eval" => {
                        let successes: Vec<u64> = results
                            .iter()
                            .filter(|(_, success)| *success)
                            .map(|(q, _)| *q)
                            .collect();
                        // The synthesizer's exact integer-sum average.
                        let expected = if successes.is_empty() {
                            f64::INFINITY
                        } else {
                            successes.iter().sum::<u64>() as f64 / successes.len() as f64
                        };
                        if expected.to_bits() != score.to_bits() {
                            self.mismatch(format!(
                                "section {section} ({label}) synth step {step}: recorded score \
                                 {score}, replayed runs average to {expected}"
                            ));
                        }
                    }
                    _ => self.mismatch(format!(
                        "section {section} ({label}) synth step {step}: no preceding eval sweep"
                    )),
                },
                other => self.mismatch(format!(
                    "section {section} ({label}): unexpected {:?} record in the metadata lane",
                    other
                )),
            }
            if self.suppressed > 0 {
                return; // the log is full; stop burning queries
            }
        }
    }

    /// Re-issues one sweep's queries image by image; returns per-image
    /// `(queries, success)` from the run records for the caller's
    /// synthesis cross-checks.
    fn replay_sweep(
        &mut self,
        section: u32,
        label: &str,
        round: u32,
        current: &[(Image, usize)],
        (scale, arch): (Scale, Arch),
        recs: &SectionRecords,
    ) -> Vec<(u64, bool)> {
        self.ensure_classifier(scale, arch);
        // Mismatches collect locally so the classifier map can stay
        // immutably borrowed across the query loop.
        let mut errs: Vec<String> = Vec::new();
        let mut queries_verified = 0u64;
        let mut runs_verified = 0u64;
        let mut results = Vec::with_capacity(current.len());
        {
            let classifier = &self.classifiers[&(scale.id().to_owned(), arch.id().to_owned())];
            let session = classifier.session();
            let mut buf: Vec<f32> = Vec::new();
            for (i, (image, true_class)) in current.iter().enumerate() {
                let at = |sub: u64| {
                    format!("section {section} ({label}) round {round} image {i} sub {sub}")
                };
                let Some(run) = recs.runs.get(&(round, i as u32)) else {
                    errs.push(format!(
                        "section {section} ({label}) round {round}: no records for image {i}"
                    ));
                    results.push((0, false));
                    continue;
                };
                let mut oracle = Oracle::new(&*session);
                oracle.begin_candidate_scope();
                let mut closed = false;
                let mut run_result = (0u64, false);
                for rec in run {
                    if closed {
                        errs.push(format!("{}: record after the run summary", at(rec.sub)));
                        break;
                    }
                    match &rec.body {
                        Body::Query {
                            seq,
                            row,
                            col,
                            r,
                            g,
                            b,
                            margin,
                            pred,
                            flip,
                            ..
                        } => {
                            let queried = if *row == NO_PIXEL {
                                oracle.query_into(image, &mut buf)
                            } else {
                                oracle.query_pixel_delta_into(
                                    image,
                                    Location::new(*row as u16, *col as u16),
                                    Pixel([*r, *g, *b]),
                                    &mut buf,
                                )
                            };
                            if queried.is_err() {
                                errs.push(format!("{}: replay oracle out of budget", at(rec.sub)));
                                break;
                            }
                            if oracle.queries() != *seq {
                                errs.push(format!(
                                    "{}: recorded ordinal {seq}, replay count {}",
                                    at(rec.sub),
                                    oracle.queries()
                                ));
                            }
                            let m = AttackGoal::Untargeted.margin(&buf, *true_class);
                            let p = argmax(&buf);
                            if m.to_bits() != margin.to_bits() || p as u32 != *pred {
                                errs.push(format!(
                                    "{}: recorded margin/pred {margin}/{pred}, replayed {m}/{p}",
                                    at(rec.sub)
                                ));
                            }
                            if (p != *true_class) != *flip {
                                errs.push(format!(
                                "{}: recorded flip {flip} disagrees with replayed prediction {p} \
                                 (true class {true_class})",
                                at(rec.sub)
                            ));
                            }
                            queries_verified += 1;
                        }
                        Body::Cond { .. } => {}
                        Body::Run { queries, success } => {
                            if *queries != oracle.queries() {
                                errs.push(format!(
                                    "{}: run summary says {queries} queries, replay issued {}",
                                    at(rec.sub),
                                    oracle.queries()
                                ));
                            }
                            run_result = (*queries, *success);
                            closed = true;
                            runs_verified += 1;
                        }
                        other => errs.push(format!(
                            "{}: unexpected {other:?} record in a per-image run",
                            at(rec.sub)
                        )),
                    }
                }
                if !closed {
                    errs.push(format!(
                        "section {section} ({label}) round {round} image {i}: run never closed \
                     (no run summary record)"
                    ));
                }
                results.push(run_result);
            }
        }
        for e in errs {
            self.mismatch(e);
        }
        self.queries_verified += queries_verified;
        self.runs_verified += runs_verified;
        results
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args.get_str("trace", "");
    assert!(
        !path.is_empty(),
        "usage: trace_replay --trace PATH [--max-mismatches N]"
    );
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse(line) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                eprintln!("error: {path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    let mut replayer = Replayer {
        classifiers: HashMap::new(),
        sets: HashMap::new(),
        mismatches: Vec::new(),
        max_mismatches: args.get_usize("max-mismatches", 20),
        suppressed: 0,
        queries_verified: 0,
        runs_verified: 0,
        sweeps_verified: 0,
    };

    // End-of-trace accounting: a complete trace carries exactly one
    // summary, covering every record before it, with nothing dropped.
    let summaries: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r.body, Body::Summary { .. }))
        .collect();
    match summaries.as_slice() {
        [one] => {
            if let Body::Summary {
                records: written,
                dropped,
            } = &one.body
            {
                if *dropped > 0 {
                    eprintln!(
                        "error: the recorder dropped {dropped} record(s); the trace is \
                         incomplete and cannot verify"
                    );
                    return ExitCode::FAILURE;
                }
                if *written != (records.len() - 1) as u64 {
                    replayer.mismatch(format!(
                        "summary says {written} record(s) were written, the file holds {}",
                        records.len() - 1
                    ));
                }
            }
        }
        [] => {
            eprintln!("error: no summary record; the trace was truncated mid-run");
            return ExitCode::FAILURE;
        }
        many => {
            eprintln!(
                "error: {} summary records (concatenated traces?)",
                many.len()
            );
            return ExitCode::FAILURE;
        }
    }

    let mut sections: BTreeMap<u32, SectionRecords> = BTreeMap::new();
    for rec in records {
        if rec.section == END_SECTION {
            continue; // ops timings and the summary, handled above
        }
        let entry = sections
            .entry(rec.section)
            .or_insert_with(|| SectionRecords {
                lane0: Vec::new(),
                runs: BTreeMap::new(),
            });
        if rec.lane == 0 {
            entry.lane0.push(rec);
        } else {
            let key = (rec.round, rec.image);
            entry.runs.entry(key).or_default().push(rec);
        }
    }
    for recs in sections.values_mut() {
        recs.lane0.sort_by_key(|r| r.sub);
        for run in recs.runs.values_mut() {
            run.sort_by_key(|r| r.sub);
        }
    }

    let n_sections = sections.len();
    for (section, recs) in &sections {
        replayer.replay_section(*section, recs);
    }

    println!(
        "replayed {n_sections} section(s): {} sweep(s), {} run(s), {} quer{} re-executed and \
         verified bit-identical",
        replayer.sweeps_verified,
        replayer.runs_verified,
        replayer.queries_verified,
        if replayer.queries_verified == 1 {
            "y"
        } else {
            "ies"
        },
    );
    if replayer.mismatches.is_empty() {
        println!("trace verifies: OK");
        ExitCode::SUCCESS
    } else {
        for m in &replayer.mismatches {
            eprintln!("MISMATCH: {m}");
        }
        if replayer.suppressed > 0 {
            eprintln!(
                "... and {} further mismatch(es) suppressed",
                replayer.suppressed
            );
        }
        println!("trace verifies: FAILED ({} mismatch(es))", {
            replayer.mismatches.len() as u64 + replayer.suppressed
        });
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_and_scale_ids_round_trip() {
        for arch in [
            Arch::VggSmall,
            Arch::ResNetSmall,
            Arch::GoogLeNetSmall,
            Arch::DenseNetSmall,
            Arch::Mlp,
        ] {
            assert_eq!(parse_arch(arch.id()), Some(arch));
        }
        for scale in [Scale::Cifar, Scale::ImageNetLike] {
            assert_eq!(parse_scale(scale.id()).map(|s| s.id()), Some(scale.id()));
        }
        assert_eq!(parse_arch("no-such-arch"), None);
        assert_eq!(parse_scale("no-such-scale"), None);
    }
}
