//! Trace analysis: aggregates a `--trace` file (written by `fig3
//! --trace` / `table1 --trace`) into per-phase query attribution,
//! per-condition firing and success-rate tables, per-section
//! query-vs-success curves, and the per-op forward-pass time breakdown.
//!
//! ```text
//! cargo run --release -p oppsla-bench --bin trace_report -- \
//!     --trace PATH        (trace JSONL to analyze)
//!     [--jsonl PATH]      (append the aggregate rows as JSONL)
//!     [--canonical PATH]  (write the canonical-sorted record stream)
//!     [--prior-out PATH]  (mine a per-class pixel-saliency prior from the
//!                          corpus and save it as JSON; see
//!                          `oppsla_eval::prior` and `fig3 --prior`)
//!     [--prior-grid N]    (saliency grid resolution, default 8)
//! ```
//!
//! The human-readable report goes to stdout. `--canonical` writes every
//! record in canonical `(section, round, lane, image, sub)` order,
//! dropping the end-of-trace section (wall-clock op timings and the
//! summary): the remaining stream is a pure function of the experiment's
//! inputs, so two runs of the same experiment — at *any* `--threads`
//! values — must produce byte-identical canonical files. CI diffs them.

use oppsla_bench::cli::Args;
use oppsla_core::telemetry::trace::{canonical_sort, push_json_string, Body, Record, END_SECTION};
use oppsla_eval::report::Table;
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;

/// Share of `part` in `whole` rendered as a percentage.
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Per-run rollup: the conditions that fired and the closing summary.
#[derive(Default)]
struct RunAgg {
    conds: Vec<String>,
    queries: u64,
    success: bool,
    closed: bool,
}

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args.get_str("trace", "");
    assert!(
        !path.is_empty(),
        "usage: trace_report --trace PATH [--jsonl PATH] [--canonical PATH]"
    );
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse(line) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                eprintln!("error: {path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    canonical_sort(&mut records);

    if let Some(out_path) = args.get_opt_str("canonical") {
        match write_canonical(out_path, &records) {
            Ok(n) => println!("canonical stream ({n} record(s)) written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(prior_path) = args.get_opt_str("prior-out") {
        let grid = args.get_usize("prior-grid", oppsla_eval::prior::DEFAULT_PRIOR_GRID);
        let mined = oppsla_eval::prior::mine_saliency_prior_records(&records, grid).and_then(|p| {
            oppsla_eval::prior::save_prior(&p, std::path::Path::new(prior_path)).map(|()| p)
        });
        match mined {
            Ok(p) => println!(
                "saliency prior ({grid}x{grid} grid, {} class(es)) written to {prior_path}",
                p.tables().len()
            ),
            Err(e) => {
                eprintln!("error: cannot mine prior: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Section id → (label, attack) from the section headers.
    let mut section_names: BTreeMap<u32, (String, String, u64)> = BTreeMap::new();
    for rec in &records {
        if let Body::Section {
            label,
            attack,
            budget,
            ..
        } = &rec.body
        {
            section_names.insert(rec.section, (label.clone(), attack.clone(), *budget));
        }
    }

    // Phase / route / cache attribution over every query record.
    let mut by_phase: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_route: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_cache: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_section_queries: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total_queries = 0u64;

    // (section, round, image) → run rollup, for the condition table and
    // the per-section curves.
    let mut runs: BTreeMap<(u32, u32, u32), RunAgg> = BTreeMap::new();
    let mut ops: Vec<(String, u64, u64)> = Vec::new();
    let mut summary: Option<(u64, u64)> = None;

    for rec in &records {
        match &rec.body {
            Body::Query {
                phase,
                route,
                cache,
                ..
            } => {
                total_queries += 1;
                *by_phase.entry(phase.clone()).or_default() += 1;
                *by_route.entry(route.clone()).or_default() += 1;
                *by_cache.entry(cache.clone()).or_default() += 1;
                *by_section_queries.entry(rec.section).or_default() += 1;
                runs.entry((rec.section, rec.round, rec.image))
                    .or_default()
                    .queries += 1;
            }
            Body::Cond { cond } => runs
                .entry((rec.section, rec.round, rec.image))
                .or_default()
                .conds
                .push(cond.clone()),
            Body::Run { queries, success } => {
                let agg = runs.entry((rec.section, rec.round, rec.image)).or_default();
                agg.queries = *queries;
                agg.success = *success;
                agg.closed = true;
            }
            Body::Ops { op, ns, calls } => ops.push((op.clone(), *ns, *calls)),
            Body::Summary { records, dropped } => summary = Some((*records, *dropped)),
            _ => {}
        }
    }

    let mut out = String::new();

    // --- Per-section query attribution -----------------------------------
    let mut sections_table = Table::new(
        "Query attribution by section".to_owned(),
        vec![
            "Section".into(),
            "Attack".into(),
            "Queries".into(),
            "Share".into(),
        ],
    );
    for (section, queries) in &by_section_queries {
        let (label, attack, _) = section_names
            .get(section)
            .cloned()
            .unwrap_or_else(|| (format!("#{section}"), "?".into(), 0));
        sections_table.push_row(vec![
            label,
            attack,
            queries.to_string(),
            pct(*queries, total_queries),
        ]);
    }
    out.push_str(&sections_table.to_string());

    // --- Phase / route / cache tables ------------------------------------
    for (title, map) in [
        ("Query attribution by phase", &by_phase),
        ("Oracle routing", &by_route),
        ("Delta-cache classification", &by_cache),
    ] {
        let mut table = Table::new(
            title.to_owned(),
            vec!["Kind".into(), "Queries".into(), "Share".into()],
        );
        for (kind, queries) in map {
            table.push_row(vec![
                kind.clone(),
                queries.to_string(),
                pct(*queries, total_queries),
            ]);
        }
        out.push_str(&table.to_string());
    }

    // --- Condition firing / success rate ---------------------------------
    // For each condition: total firings, runs it fired in, and the success
    // rate of those runs (did the run it fired in end adversarially?).
    let closed_runs: Vec<&RunAgg> = runs.values().filter(|r| r.closed).collect();
    let mut cond_firings: BTreeMap<String, u64> = BTreeMap::new();
    let mut cond_runs: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // (runs, successes)
    for run in &closed_runs {
        let mut seen: Vec<&str> = Vec::new();
        for cond in &run.conds {
            *cond_firings.entry(cond.clone()).or_default() += 1;
            if !seen.contains(&cond.as_str()) {
                seen.push(cond);
                let entry = cond_runs.entry(cond.clone()).or_default();
                entry.0 += 1;
                entry.1 += u64::from(run.success);
            }
        }
    }
    let total_runs = closed_runs.len() as u64;
    let total_successes = closed_runs.iter().filter(|r| r.success).count() as u64;
    let mut cond_table = Table::new(
        "Condition firings and success rates".to_owned(),
        vec![
            "Cond".into(),
            "Firings".into(),
            "Runs fired in".into(),
            "Successes".into(),
            "Success rate".into(),
        ],
    );
    for (cond, firings) in &cond_firings {
        let (in_runs, successes) = cond_runs.get(cond).copied().unwrap_or_default();
        cond_table.push_row(vec![
            cond.clone(),
            firings.to_string(),
            in_runs.to_string(),
            successes.to_string(),
            pct(successes, in_runs),
        ]);
    }
    cond_table.push_row(vec![
        "(all runs)".into(),
        "-".into(),
        total_runs.to_string(),
        total_successes.to_string(),
        pct(total_successes, total_runs),
    ]);
    out.push_str(&cond_table.to_string());

    // --- Per-section query-vs-success curves ------------------------------
    // For attack sections: the fraction of runs that succeeded within
    // checkpoint budgets (the trace-level view of Figure 3's curves).
    // (section label, attack, [(budget checkpoint, success rate)], runs)
    type Curve = (String, String, Vec<(u64, f64)>, usize);
    let mut curves: Vec<Curve> = Vec::new();
    let mut curve_table = Table::new(
        "Success rate by query budget (per section, over all runs)".to_owned(),
        vec![
            "Section".into(),
            "Runs".into(),
            "q<=100".into(),
            "q<=500".into(),
            "q<=1000".into(),
            "q<=budget".into(),
        ],
    );
    let mut section_runs: BTreeMap<u32, Vec<&RunAgg>> = BTreeMap::new();
    for ((section, _, _), run) in &runs {
        if run.closed {
            section_runs.entry(*section).or_default().push(run);
        }
    }
    for (section, runs) in &section_runs {
        let (label, attack, budget) = section_names
            .get(section)
            .cloned()
            .unwrap_or_else(|| (format!("#{section}"), "?".into(), 0));
        if attack == "synthesis" {
            continue; // synthesis sweeps are not budgeted attack curves
        }
        let n = runs.len();
        let rate_at = |q: u64| -> f64 {
            runs.iter().filter(|r| r.success && r.queries <= q).count() as f64 / n.max(1) as f64
        };
        let max_budget = if budget == 0 { u64::MAX } else { budget };
        let checkpoints = [100, 500, 1000, max_budget];
        let mut row = vec![label.clone(), n.to_string()];
        row.extend(checkpoints.iter().map(|&q| format!("{:.3}", rate_at(q))));
        curve_table.push_row(row);
        curves.push((
            label,
            attack,
            checkpoints.iter().map(|&q| (q, rate_at(q))).collect(),
            n,
        ));
    }
    out.push_str(&curve_table.to_string());

    // --- Per-op time breakdown -------------------------------------------
    if !ops.is_empty() {
        let total_ns: u64 = ops.iter().map(|(_, ns, _)| ns).sum();
        let mut ops_table = Table::new(
            "Forward-pass time by op (wall clock)".to_owned(),
            vec![
                "Op".into(),
                "Calls".into(),
                "Total ms".into(),
                "ns/call".into(),
                "Share".into(),
            ],
        );
        for (op, ns, calls) in &ops {
            ops_table.push_row(vec![
                op.clone(),
                calls.to_string(),
                format!("{:.2}", *ns as f64 / 1e6),
                format!("{:.0}", *ns as f64 / (*calls).max(1) as f64),
                pct(*ns, total_ns),
            ]);
        }
        out.push_str(&ops_table.to_string());
    }

    match summary {
        Some((written, dropped)) => out.push_str(&format!(
            "\n{total_queries} quer(ies) in {} run(s) across {} section(s); recorder wrote \
             {written} record(s), dropped {dropped}\n",
            total_runs,
            section_names.len()
        )),
        None => out.push_str("\nwarning: no summary record — the trace was truncated mid-run\n"),
    }
    print!("{out}");

    if let Some(jsonl_path) = args.get_opt_str("jsonl") {
        let write = || -> std::io::Result<()> {
            if let Some(parent) = std::path::Path::new(jsonl_path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let mut f = std::io::BufWriter::new(std::fs::File::create(jsonl_path)?);
            let mut line = String::new();
            let mut emit =
                |f: &mut dyn Write, kind: &str, fields: &[(&str, String)]| -> std::io::Result<()> {
                    line.clear();
                    line.push_str("{\"kind\":");
                    push_json_string(&mut line, kind);
                    for (key, value) in fields {
                        line.push(',');
                        push_json_string(&mut line, key);
                        line.push(':');
                        line.push_str(value);
                    }
                    line.push_str("}\n");
                    f.write_all(line.as_bytes())
                };
            for (phase, queries) in &by_phase {
                let mut s = String::new();
                push_json_string(&mut s, phase);
                emit(
                    &mut f,
                    "phase",
                    &[("phase", s), ("queries", queries.to_string())],
                )?;
            }
            for (route, queries) in &by_route {
                let mut s = String::new();
                push_json_string(&mut s, route);
                emit(
                    &mut f,
                    "route",
                    &[("route", s), ("queries", queries.to_string())],
                )?;
            }
            for (cache, queries) in &by_cache {
                let mut s = String::new();
                push_json_string(&mut s, cache);
                emit(
                    &mut f,
                    "cache",
                    &[("cache", s), ("queries", queries.to_string())],
                )?;
            }
            for (cond, firings) in &cond_firings {
                let (in_runs, successes) = cond_runs.get(cond).copied().unwrap_or_default();
                let mut s = String::new();
                push_json_string(&mut s, cond);
                emit(
                    &mut f,
                    "cond",
                    &[
                        ("cond", s),
                        ("firings", firings.to_string()),
                        ("runs", in_runs.to_string()),
                        ("successes", successes.to_string()),
                    ],
                )?;
            }
            for (label, attack, points, n) in &curves {
                let mut l = String::new();
                push_json_string(&mut l, label);
                let mut a = String::new();
                push_json_string(&mut a, attack);
                let curve = points
                    .iter()
                    .map(|(q, r)| format!("[{q},{r}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                emit(
                    &mut f,
                    "curve",
                    &[
                        ("section", l),
                        ("attack", a),
                        ("runs", n.to_string()),
                        ("points", format!("[{curve}]")),
                    ],
                )?;
            }
            for (op, ns, calls) in &ops {
                let mut s = String::new();
                push_json_string(&mut s, op);
                emit(
                    &mut f,
                    "ops",
                    &[
                        ("op", s),
                        ("ns", ns.to_string()),
                        ("calls", calls.to_string()),
                    ],
                )?;
            }
            f.flush()
        };
        match write() {
            Ok(()) => println!("aggregate rows written to {jsonl_path}"),
            Err(e) => {
                eprintln!("error: cannot write {jsonl_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}

/// Writes the canonical-sorted stream (end-of-trace section dropped) and
/// returns how many records were written.
fn write_canonical(path: &str, records: &[Record]) -> std::io::Result<usize> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut n = 0usize;
    for rec in records {
        if rec.section == END_SECTION {
            continue;
        }
        let mut line = rec.to_jsonl();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        n += 1;
    }
    f.flush()?;
    Ok(n)
}
