//! A minimal `--key value` / `--flag` argument parser (no external CLI
//! dependency needed for four experiment binaries).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`. `--key value` populates values; a
    /// trailing `--key` with no value (or followed by another `--…`) is a
    /// boolean flag.
    ///
    /// # Panics
    ///
    /// Panics (with a usage hint) on a positional argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument {arg:?}; use --key value");
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = iter.next().expect("peeked");
                    out.values.insert(key.to_owned(), v);
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        out
    }

    /// A `usize` value or `default`.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparseable.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` value or `default`.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparseable.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// The raw value of `--key`, or `None` when the key is absent.
    pub fn get_opt_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A string value or `default`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// True when `--key` appeared as a bare flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = parse("--budget 500 --full --scale cifar");
        assert_eq!(a.get_u64("budget", 0), 500);
        assert!(a.has("full"));
        assert_eq!(a.get_str("scale", "x"), "cifar");
        assert_eq!(a.get_opt_str("scale"), Some("cifar"));
        assert_eq!(a.get_usize("missing", 7), 7);
        assert_eq!(a.get_opt_str("missing"), None);
        assert!(!a.has("missing"));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = parse("--retrain");
        assert!(a.has("retrain"));
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn rejects_positional_arguments() {
        parse("oops");
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_bad_integers() {
        parse("--budget lots").get_u64("budget", 0);
    }
}
