//! Shared plumbing for the OPPSLA experiment binaries: a tiny `--key
//! value` argument parser and the architecture rosters of the paper's two
//! evaluation scales.

#![warn(missing_docs)]

pub mod cli;

use oppsla_nn::models::Arch;
use std::path::PathBuf;

/// The CIFAR-scale classifier roster (paper: VGG-16-BN, ResNet18,
/// GoogLeNet).
pub fn cifar_archs() -> [Arch; 3] {
    [Arch::VggSmall, Arch::ResNetSmall, Arch::GoogLeNetSmall]
}

/// The ImageNet-scale classifier roster (paper: DenseNet121, ResNet50).
pub fn imagenet_archs() -> [Arch; 2] {
    [Arch::DenseNetSmall, Arch::ResNetSmall]
}

/// Directory where experiment binaries drop CSV outputs.
pub fn reports_dir() -> PathBuf {
    PathBuf::from("target/oppsla-reports")
}

/// Directory where synthesized program suites are cached.
pub fn suites_dir() -> PathBuf {
    PathBuf::from("target/oppsla-programs")
}

/// Resolves the shared `--threads` knob: `0` (the default) auto-detects
/// the host's parallelism; any other value is used as given. Every
/// experiment binary produces bit-identical results for any thread count —
/// the knob only changes wall-clock time.
pub fn threads_from(args: &cli::Args) -> usize {
    match args.get_usize("threads", 0) {
        0 => oppsla_core::parallel::available_threads(),
        n => n,
    }
}
