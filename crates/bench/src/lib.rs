//! Shared plumbing for the OPPSLA experiment binaries: a tiny `--key
//! value` argument parser and the architecture rosters of the paper's two
//! evaluation scales.

#![warn(missing_docs)]

pub mod cli;

use oppsla_core::telemetry::{JsonlSink, MetricsSink, NoopSink};
use oppsla_nn::models::Arch;
use std::path::{Path, PathBuf};

/// The CIFAR-scale classifier roster (paper: VGG-16-BN, ResNet18,
/// GoogLeNet).
pub fn cifar_archs() -> [Arch; 3] {
    [Arch::VggSmall, Arch::ResNetSmall, Arch::GoogLeNetSmall]
}

/// The ImageNet-scale classifier roster (paper: DenseNet121, ResNet50).
pub fn imagenet_archs() -> [Arch; 2] {
    [Arch::DenseNetSmall, Arch::ResNetSmall]
}

/// Directory where experiment binaries drop CSV outputs.
pub fn reports_dir() -> PathBuf {
    PathBuf::from("target/oppsla-reports")
}

/// Directory where synthesized program suites are cached.
pub fn suites_dir() -> PathBuf {
    PathBuf::from("target/oppsla-programs")
}

/// Resolves the shared `--telemetry PATH` knob: a JSONL sink writing one
/// event per instrumented phase to `PATH`, or a [`NoopSink`] when the flag
/// is absent. Telemetry never writes to stdout, so experiment results stay
/// byte-identical with or without the flag (and with or without the
/// `telemetry` feature — without it, events carry all-zero counters).
pub fn telemetry_sink(args: &cli::Args) -> Box<dyn MetricsSink> {
    let Some(path) = args.get_opt_str("telemetry") else {
        return Box::new(NoopSink);
    };
    if !oppsla_core::telemetry::enabled() {
        eprintln!(
            "warning: --telemetry given but this binary was built without the `telemetry` \
             feature; events will carry zero counters (rebuild with --features telemetry)"
        );
    }
    match JsonlSink::create(Path::new(path)) {
        Ok(sink) => Box::new(sink),
        Err(e) => {
            eprintln!("warning: could not create telemetry file {path}: {e}; telemetry disabled");
            Box::new(NoopSink)
        }
    }
}

/// Resolves the shared `--trace PATH` knob: arms the per-query trace
/// recorder spilling JSONL records to `PATH`. Returns whether a trace was
/// armed, so the binary knows to call [`finish_trace`] at the end of the
/// run. Tracing writes only to `PATH` and stderr, never stdout, so
/// experiment results stay byte-identical with or without the flag.
pub fn start_trace(args: &cli::Args) -> bool {
    use oppsla_core::telemetry::trace;
    let Some(path) = args.get_opt_str("trace") else {
        return false;
    };
    if !trace::enabled() {
        eprintln!(
            "warning: --trace given but this binary was built without the `trace` feature; \
             no records will be written (rebuild with --features trace)"
        );
        return false;
    }
    match trace::start(trace::TraceConfig {
        path: Some(PathBuf::from(path)),
        mem_cap: 0,
    }) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("warning: could not create trace file {path}: {e}; tracing disabled");
            false
        }
    }
}

/// Finishes an active trace (no-op when [`start_trace`] returned false)
/// and prints its accounting to **stderr**.
pub fn finish_trace(active: bool) {
    if !active {
        return;
    }
    let stats = oppsla_core::telemetry::trace::finish();
    eprintln!(
        "trace: {} record(s) written, {} dropped, {} I/O error(s)",
        stats.records, stats.dropped, stats.io_errors
    );
}

/// Prints the end-of-run telemetry summary to **stderr** (wall-clock op
/// timings must never reach stdout). No output when nothing was recorded.
pub fn print_telemetry_summary() {
    let snapshot = oppsla_core::telemetry::snapshot();
    if !snapshot.is_zero() {
        eprint!("{}", snapshot.summary());
    }
}

/// Resolves the shared `--threads` knob: `0` (the default) auto-detects
/// the host's parallelism; any other value is used as given. Every
/// experiment binary produces bit-identical results for any thread count —
/// the knob only changes wall-clock time.
pub fn threads_from(args: &cli::Args) -> usize {
    match args.get_usize("threads", 0) {
        0 => oppsla_core::parallel::available_threads(),
        n => n,
    }
}

/// Resolves the shared `--tune` knob (`measure`, the default, or `off`)
/// into the global [`oppsla_nn::tune`] policy and returns the mode name
/// for reports. Kernel routes are bit-identical either way, so stdout
/// stays byte-identical across modes — `off` only pins the static
/// thresholds so plan construction does no timing.
///
/// # Panics
///
/// Panics on an unknown mode.
pub fn tune_from(args: &cli::Args) -> &'static str {
    use oppsla_nn::tune::{set_policy, TunePolicy};
    match args.get_str("tune", "measure").as_str() {
        "measure" => {
            set_policy(TunePolicy::Measure);
            "measure"
        }
        "off" => {
            set_policy(TunePolicy::Off);
            "off"
        }
        other => panic!("--tune expects 'measure' or 'off', got {other:?}"),
    }
}
