//! Abstract syntax of the condition language (Figure 1 of the paper).
//!
//! A program is four conditions `(B₁, B₂, B₃, B₄)`. Each condition compares
//! a function of the black-box-observable state to a real constant:
//!
//! ```text
//! B ::= F > r | F < r
//! F ::= max(x_l) | min(x_l) | avg(x_l)
//!     | score_diff(N(x), N(x[l←p]), c_x)
//!     | center(l)
//! ```
//!
//! The `Const` variant is *not* part of the synthesis grammar — it exists
//! for the paper's Sketch+False ablation baseline (Appendix C) and for the
//! trivially-true/false edges of the search space.

use std::fmt;

/// Statistic of the original image's pixel at the popped location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PixelStat {
    /// Maximum RGB channel.
    Max,
    /// Minimum RGB channel.
    Min,
    /// Mean of the RGB channels.
    Avg,
}

/// The function `F` of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Func {
    /// `max/min/avg(x_l)` — a statistic of the attacked image's pixel at
    /// the popped location.
    Pixel(PixelStat),
    /// `score_diff(N(x), N(x[l←p]), c_x)` — the drop in the true class's
    /// score caused by the perturbation.
    ScoreDiff,
    /// `center(l)` — the `L∞` distance of the location from the image
    /// centre.
    Center,
}

impl Func {
    /// All functions of the grammar, in a stable order.
    pub const ALL: [Func; 5] = [
        Func::Pixel(PixelStat::Max),
        Func::Pixel(PixelStat::Min),
        Func::Pixel(PixelStat::Avg),
        Func::ScoreDiff,
        Func::Center,
    ];
}

/// Comparison operator of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Cmp {
    /// `F < r`.
    Lt,
    /// `F > r`.
    Gt,
}

/// One condition `Bᵢ`.
///
/// The paper's grammar produces only [`Condition::Compare`] (plus
/// [`Condition::Const`] for the ablation baselines). The boolean
/// combinators [`Condition::Not`], [`Condition::And`] and
/// [`Condition::Or`] belong to this reproduction's *extended grammar* —
/// an opt-in richer search space (see
/// [`GrammarConfig`](crate::dsl::GrammarConfig)); the paper-faithful
/// sampler never generates them.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Condition {
    /// A grammar condition `F ⋈ r`.
    Compare {
        /// The measured function.
        func: Func,
        /// The comparison direction.
        cmp: Cmp,
        /// The threshold constant `r`.
        threshold: f64,
    },
    /// A constant condition (baselines only; not synthesized).
    Const(bool),
    /// Negation (extended grammar).
    Not(Box<Condition>),
    /// Conjunction (extended grammar).
    And(Box<Condition>, Box<Condition>),
    /// Disjunction (extended grammar).
    Or(Box<Condition>, Box<Condition>),
}

impl Condition {
    /// The always-false condition (Sketch+False baseline).
    pub const FALSE: Condition = Condition::Const(false);

    /// The always-true condition.
    pub const TRUE: Condition = Condition::Const(true);

    /// The number of AST nodes in this condition (1 for leaves).
    pub fn size(&self) -> usize {
        match self {
            Condition::Compare { .. } | Condition::Const(_) => 1,
            Condition::Not(inner) => 1 + inner.size(),
            Condition::And(a, b) | Condition::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// The nesting depth of this condition (1 for leaves).
    pub fn depth(&self) -> usize {
        match self {
            Condition::Compare { .. } | Condition::Const(_) => 1,
            Condition::Not(inner) => 1 + inner.depth(),
            Condition::And(a, b) | Condition::Or(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// True when the condition uses only the paper's grammar (no boolean
    /// combinators).
    pub fn is_paper_grammar(&self) -> bool {
        matches!(self, Condition::Compare { .. } | Condition::Const(_))
    }
}

/// A complete adversarial program: the sketch's four conditions.
///
/// `conditions[0]` is `B₁` (push back location neighbours), `[1]` is `B₂`
/// (push back the next perturbation), `[2]` is `B₃` (eagerly check
/// location neighbours), `[3]` is `B₄` (eagerly check the next
/// perturbation).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Program {
    /// `(B₁, B₂, B₃, B₄)`.
    pub conditions: [Condition; 4],
}

impl Program {
    /// Creates a program from its four conditions.
    pub fn new(conditions: [Condition; 4]) -> Self {
        Program { conditions }
    }

    /// The constant program with every condition set to `value`.
    ///
    /// `Program::constant(false)` is the paper's fixed-prioritization
    /// baseline: no reordering ever fires, so the attack follows the
    /// initial queue order exactly.
    pub fn constant(value: bool) -> Self {
        Program {
            conditions: [
                Condition::Const(value),
                Condition::Const(value),
                Condition::Const(value),
                Condition::Const(value),
            ],
        }
    }

    /// True when every condition uses only the paper's grammar.
    pub fn is_paper_grammar(&self) -> bool {
        self.conditions.iter().all(Condition::is_paper_grammar)
    }

    /// The running example of Section 3.2 of the paper.
    pub fn paper_example() -> Self {
        Program::new([
            Condition::Compare {
                func: Func::ScoreDiff,
                cmp: Cmp::Lt,
                threshold: 0.21,
            },
            Condition::Compare {
                func: Func::Pixel(PixelStat::Max),
                cmp: Cmp::Gt,
                threshold: 0.19,
            },
            Condition::Compare {
                func: Func::ScoreDiff,
                cmp: Cmp::Gt,
                threshold: 0.25,
            },
            Condition::Compare {
                func: Func::Center,
                cmp: Cmp::Lt,
                threshold: 8.0,
            },
        ])
    }
}

impl fmt::Display for PixelStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PixelStat::Max => "max",
            PixelStat::Min => "min",
            PixelStat::Avg => "avg",
        })
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Func::Pixel(stat) => write!(f, "{stat}(x_l)"),
            Func::ScoreDiff => f.write_str("score_diff(N(x), N(x[l<-p]), c_x)"),
            Func::Center => f.write_str("center(l)"),
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Lt => "<",
            Cmp::Gt => ">",
        })
    }
}

impl Condition {
    /// Precedence level for printing: higher binds tighter.
    fn precedence(&self) -> u8 {
        match self {
            Condition::Or(..) => 0,
            Condition::And(..) => 1,
            Condition::Not(_) => 2,
            Condition::Compare { .. } | Condition::Const(_) => 3,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let mine = self.precedence();
        if mine < parent {
            f.write_str("(")?;
        }
        match self {
            Condition::Compare {
                func,
                cmp,
                threshold,
            } => write!(f, "{func} {cmp} {threshold}")?,
            Condition::Const(true) => f.write_str("true")?,
            Condition::Const(false) => f.write_str("false")?,
            Condition::Not(inner) => {
                f.write_str("!")?;
                inner.fmt_with_parens(f, 3)?;
            }
            Condition::And(a, b) => {
                a.fmt_with_parens(f, 1)?;
                f.write_str(" && ")?;
                b.fmt_with_parens(f, 2)?;
            }
            Condition::Or(a, b) => {
                a.fmt_with_parens(f, 0)?;
                f.write_str(" || ")?;
                b.fmt_with_parens(f, 1)?;
            }
        }
        if mine < parent {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cond) in self.conditions.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "B{}: {cond}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_false_program_displays() {
        let p = Program::constant(false);
        assert_eq!(p.to_string(), "B1: false; B2: false; B3: false; B4: false");
    }

    #[test]
    fn paper_example_displays_like_the_paper() {
        let p = Program::paper_example();
        let s = p.to_string();
        assert!(
            s.contains("B1: score_diff(N(x), N(x[l<-p]), c_x) < 0.21"),
            "{s}"
        );
        assert!(s.contains("B2: max(x_l) > 0.19"), "{s}");
        assert!(
            s.contains("B3: score_diff(N(x), N(x[l<-p]), c_x) > 0.25"),
            "{s}"
        );
        assert!(s.contains("B4: center(l) < 8"), "{s}");
    }

    #[test]
    fn func_all_covers_the_grammar() {
        assert_eq!(Func::ALL.len(), 5);
        let mut unique = Func::ALL.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }
}
