//! Evaluation of conditions against the black-box-observable state.

use super::ast::{Cmp, Condition, Func, PixelStat, Program};
use crate::image::Image;
use crate::pair::{Location, Pixel};

/// Everything a condition may read when the sketch evaluates it for a
/// failed pair `(l, p)`: the attacked image, the pair, both score vectors
/// and the true class. This is exactly the information available in the
/// black-box setting — nothing else exists to condition on.
#[derive(Debug, Clone, Copy)]
pub struct CondCtx<'a> {
    /// The attacked image `x`.
    pub image: &'a Image,
    /// The popped pair's location `l`.
    pub location: Location,
    /// The popped pair's perturbation `p`.
    pub perturbation: Pixel,
    /// `N(x)` — scores of the unperturbed image.
    pub orig_scores: &'a [f32],
    /// `N(x[l←p])` — scores of the (failed) perturbed image.
    pub pert_scores: &'a [f32],
    /// The true class `c_x`.
    pub true_class: usize,
}

impl Func {
    /// Evaluates the function in `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.true_class` is out of range for the score vectors.
    pub fn eval(self, ctx: &CondCtx<'_>) -> f64 {
        match self {
            Func::Pixel(stat) => {
                let pixel = ctx.image.pixel(ctx.location);
                let v = match stat {
                    PixelStat::Max => pixel.max_channel(),
                    PixelStat::Min => pixel.min_channel(),
                    PixelStat::Avg => pixel.avg_channel(),
                };
                v as f64
            }
            Func::ScoreDiff => {
                let c = ctx.true_class;
                assert!(
                    c < ctx.orig_scores.len() && c < ctx.pert_scores.len(),
                    "true class {c} out of range for the score vectors"
                );
                (ctx.orig_scores[c] - ctx.pert_scores[c]) as f64
            }
            Func::Center => ctx.image.center_distance(ctx.location),
        }
    }

    /// The closed interval of meaningful thresholds for this function,
    /// given the image extents. Used by the typed sampler and mutator.
    pub fn threshold_range(self, height: usize, width: usize) -> (f64, f64) {
        match self {
            Func::Pixel(_) => (0.0, 1.0),
            Func::ScoreDiff => (-1.0, 1.0),
            Func::Center => {
                // Maximum L∞ distance from the centre.
                let max = ((height.max(width)) as f64 - 1.0) / 2.0;
                (0.0, max.max(1.0))
            }
        }
    }
}

impl Condition {
    /// Evaluates the condition in `ctx`.
    pub fn eval(&self, ctx: &CondCtx<'_>) -> bool {
        match self {
            Condition::Compare {
                func,
                cmp,
                threshold,
            } => {
                let v = func.eval(ctx);
                match cmp {
                    Cmp::Lt => v < *threshold,
                    Cmp::Gt => v > *threshold,
                }
            }
            Condition::Const(b) => *b,
            Condition::Not(inner) => !inner.eval(ctx),
            Condition::And(a, b) => a.eval(ctx) && b.eval(ctx),
            Condition::Or(a, b) => a.eval(ctx) || b.eval(ctx),
        }
    }
}

impl Program {
    /// Evaluates condition `Bᵢ` (1-indexed as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in `1..=4`.
    pub fn condition(&self, i: usize, ctx: &CondCtx<'_>) -> bool {
        assert!((1..=4).contains(&i), "conditions are B1..B4, got B{i}");
        self.conditions[i - 1].eval(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> Image {
        let mut img = Image::filled(5, 5, Pixel([0.4, 0.4, 0.4]));
        img.set_pixel(Location::new(1, 2), Pixel([0.1, 0.5, 0.9]));
        img
    }

    fn ctx<'a>(img: &'a Image, orig: &'a [f32], pert: &'a [f32]) -> CondCtx<'a> {
        CondCtx {
            image: img,
            location: Location::new(1, 2),
            perturbation: Pixel([1.0, 1.0, 1.0]),
            orig_scores: orig,
            pert_scores: pert,
            true_class: 0,
        }
    }

    #[test]
    fn pixel_stats_read_the_original_pixel() {
        let img = test_image();
        let orig = [0.8, 0.2];
        let pert = [0.6, 0.4];
        let c = ctx(&img, &orig, &pert);
        assert_eq!(Func::Pixel(PixelStat::Max).eval(&c), 0.9f32 as f64);
        assert_eq!(Func::Pixel(PixelStat::Min).eval(&c), 0.1f32 as f64);
        assert!((Func::Pixel(PixelStat::Avg).eval(&c) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn score_diff_is_true_class_drop() {
        let img = test_image();
        let orig = [0.8, 0.2];
        let pert = [0.6, 0.4];
        let c = ctx(&img, &orig, &pert);
        let v = Func::ScoreDiff.eval(&c);
        assert!((v - 0.2).abs() < 1e-6, "score_diff = 0.8 - 0.6, got {v}");
    }

    #[test]
    fn center_matches_image_center_distance() {
        let img = test_image();
        let orig = [0.5, 0.5];
        let c = ctx(&img, &orig, &orig);
        assert_eq!(Func::Center.eval(&c), 1.0); // (1,2) vs centre (2,2)
    }

    #[test]
    fn comparisons_are_strict() {
        let img = test_image();
        let orig = [0.5, 0.5];
        let c = ctx(&img, &orig, &orig);
        let eq = Condition::Compare {
            func: Func::Center,
            cmp: Cmp::Lt,
            threshold: 1.0,
        };
        assert!(!eq.eval(&c), "1.0 < 1.0 is false (strict)");
        let gt = Condition::Compare {
            func: Func::Center,
            cmp: Cmp::Gt,
            threshold: 0.5,
        };
        assert!(gt.eval(&c));
    }

    #[test]
    fn const_conditions_ignore_context() {
        let img = test_image();
        let orig = [0.5, 0.5];
        let c = ctx(&img, &orig, &orig);
        assert!(Condition::TRUE.eval(&c));
        assert!(!Condition::FALSE.eval(&c));
    }

    #[test]
    fn program_condition_is_one_indexed() {
        let p = Program::new([
            Condition::TRUE,
            Condition::FALSE,
            Condition::TRUE,
            Condition::FALSE,
        ]);
        let img = test_image();
        let orig = [0.5, 0.5];
        let c = ctx(&img, &orig, &orig);
        assert!(p.condition(1, &c));
        assert!(!p.condition(2, &c));
        assert!(p.condition(3, &c));
        assert!(!p.condition(4, &c));
    }

    #[test]
    #[should_panic(expected = "B1..B4")]
    fn condition_zero_rejected() {
        let p = Program::constant(false);
        let img = test_image();
        let orig = [0.5, 0.5];
        let c = ctx(&img, &orig, &orig);
        p.condition(0, &c);
    }

    #[test]
    fn threshold_ranges_are_typed() {
        assert_eq!(
            Func::Pixel(PixelStat::Max).threshold_range(32, 32),
            (0.0, 1.0)
        );
        assert_eq!(Func::ScoreDiff.threshold_range(32, 32), (-1.0, 1.0));
        assert_eq!(Func::Center.threshold_range(32, 32), (0.0, 15.5));
        assert_eq!(Func::Center.threshold_range(5, 9), (0.0, 4.0));
    }

    #[test]
    fn paper_example_fires_as_described() {
        // The paper's B4: center(l) < 8 — a pair close to the centre.
        let img = Image::filled(32, 32, Pixel([0.3, 0.3, 0.3]));
        let orig = [0.9, 0.1];
        let pert = [0.6, 0.4];
        let c = CondCtx {
            image: &img,
            location: Location::new(16, 16),
            perturbation: Pixel([0.0, 0.0, 0.0]),
            orig_scores: &orig,
            pert_scores: &pert,
            true_class: 0,
        };
        let p = Program::paper_example();
        // score_diff = 0.3: not < 0.21 (B1 false), > 0.25 (B3 true)
        assert!(!p.condition(1, &c));
        assert!(p.condition(3, &c));
        // max(x_l) = 0.3 > 0.19 (B2 true)
        assert!(p.condition(2, &c));
        // center((16,16)) = 0.5 < 8 (B4 true)
        assert!(p.condition(4, &c));
    }
}
