//! The condition language: abstract syntax ([`Program`], [`Condition`]),
//! semantics ([`CondCtx`] evaluation), the typed proposal distribution
//! used by the synthesizer ([`random_program`], [`mutate`],
//! [`GrammarConfig`]), and a concrete-syntax parser/pretty-printer
//! ([`parse_program`]).

mod ast;
mod eval;
mod parse;
mod sample;

pub use ast::{Cmp, Condition, Func, PixelStat, Program};
pub use eval::CondCtx;
pub use parse::{parse_condition, parse_program, ParseError};
pub use sample::{
    is_well_typed, mutate, mutate_in, random_condition, random_condition_in, random_program,
    random_program_in, GrammarConfig, ImageDims,
};
