//! Concrete syntax for adversarial programs: a lexer and recursive-descent
//! parser that round-trips with the `Display` implementation.
//!
//! The grammar mirrors Figure 1 of the paper, extended with the boolean
//! combinators of this reproduction's richer search space (standard
//! precedence: `!` over `&&` over `||`; parentheses group):
//!
//! ```text
//! program   := labeled (';' labeled)*        (exactly four conditions)
//! labeled   := ('B' digit ':')? condition
//! condition := or
//! or        := and ('||' and)*
//! and       := unary ('&&' unary)*
//! unary     := '!' unary | atom
//! atom      := 'true' | 'false' | '(' condition ')' | func cmp number
//! func      := ('max' | 'min' | 'avg') '(' 'x_l' ')'
//!            | 'score_diff' '(' 'N' '(' 'x' ')' ','
//!                              'N' '(' 'x' '[' 'l' '<-' 'p' ']' ')' ','
//!                              'c_x' ')'
//!            | 'center' '(' 'l' ')'
//! cmp       := '<' | '>'
//! ```

use super::ast::{Cmp, Condition, Func, PixelStat, Program};
use std::fmt;

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Lt,
    Gt,
    /// The substitution arrow `<-` in `x[l<-p]`.
    Arrow,
    /// Negation `!` (extended grammar).
    Bang,
    /// Conjunction `&&` (extended grammar).
    AndAnd,
    /// Disjunction `||` (extended grammar).
    OrOr,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_whitespace()) {
                self.pos += 1;
            }
            let start = self.pos;
            let Some(b) = self.peek_byte() else {
                return Ok(out);
            };
            let token = match b {
                b'(' => {
                    self.pos += 1;
                    Token::LParen
                }
                b')' => {
                    self.pos += 1;
                    Token::RParen
                }
                b'[' => {
                    self.pos += 1;
                    Token::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Token::RBracket
                }
                b',' => {
                    self.pos += 1;
                    Token::Comma
                }
                b';' => {
                    self.pos += 1;
                    Token::Semi
                }
                b':' => {
                    self.pos += 1;
                    Token::Colon
                }
                b'>' => {
                    self.pos += 1;
                    Token::Gt
                }
                b'!' => {
                    self.pos += 1;
                    Token::Bang
                }
                b'&' => {
                    if self.src.get(self.pos + 1) == Some(&b'&') {
                        self.pos += 2;
                        Token::AndAnd
                    } else {
                        return Err(self.error("expected `&&`"));
                    }
                }
                b'|' => {
                    if self.src.get(self.pos + 1) == Some(&b'|') {
                        self.pos += 2;
                        Token::OrOr
                    } else {
                        return Err(self.error("expected `||`"));
                    }
                }
                b'<' => {
                    // `<-p` is the substitution arrow; `< -0.5` is a
                    // comparison with a negative number.
                    let next = self.src.get(self.pos + 1).copied();
                    let after = self.src.get(self.pos + 2).copied();
                    if next == Some(b'-')
                        && !matches!(after, Some(d) if d.is_ascii_digit() || d == b'.')
                    {
                        self.pos += 2;
                        Token::Arrow
                    } else {
                        self.pos += 1;
                        Token::Lt
                    }
                }
                b'-' | b'0'..=b'9' | b'.' => self.lex_number()?,
                b if b.is_ascii_alphabetic() || b == b'_' => self.lex_ident(),
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push((start, token));
        }
    }

    fn lex_number(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit() || b == b'.') {
            saw_digit |= self.src[self.pos].is_ascii_digit();
            self.pos += 1;
        }
        if matches!(self.peek_byte(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek_byte(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if !saw_digit {
            self.pos = start;
            return Err(self.error("expected a number"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Token::Number)
            .map_err(|e| ParseError {
                offset: start,
                message: format!("bad number {text:?}: {e}"),
            })
    }

    fn lex_ident(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
        Token::Ident(text.to_owned())
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let offset = self
            .tokens
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or_else(|| self.tokens.last().map(|(o, _)| *o + 1).unwrap_or(0));
        ParseError {
            offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error_at(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, want: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error_at(format!("expected `{want}`, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut conditions = Vec::with_capacity(4);
        loop {
            conditions.push(self.labeled_condition()?);
            match self.peek() {
                Some(Token::Semi) => {
                    self.pos += 1;
                }
                None => break,
                other => {
                    return Err(
                        self.error_at(format!("expected `;` between conditions, found {other:?}"))
                    )
                }
            }
        }
        let n = conditions.len();
        let conditions: [Condition; 4] = conditions.try_into().map_err(|_| ParseError {
            offset: 0,
            message: format!("a program has exactly four conditions, found {n}"),
        })?;
        Ok(Program::new(conditions))
    }

    fn labeled_condition(&mut self) -> Result<Condition, ParseError> {
        // Optional "B<k>:" label.
        if let Some(Token::Ident(s)) = self.peek() {
            let is_label = s.len() >= 2
                && s.starts_with('B')
                && s[1..].chars().all(|c| c.is_ascii_digit())
                && matches!(
                    self.tokens.get(self.pos + 1).map(|(_, t)| t),
                    Some(Token::Colon)
                );
            if is_label {
                self.pos += 2;
            }
        }
        self.condition()
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.and_expr()?;
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            let right = self.unary()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Condition, ParseError> {
        if self.peek() == Some(&Token::Bang) {
            self.pos += 1;
            return Ok(Condition::Not(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Condition, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Condition::Const(true))
            }
            Some(Token::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(Condition::Const(false))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.condition()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            _ => {
                let func = self.func()?;
                let cmp = match self.advance() {
                    Some(Token::Lt) => Cmp::Lt,
                    Some(Token::Gt) => Cmp::Gt,
                    other => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.error_at(format!("expected `<` or `>`, found {other:?}")));
                    }
                };
                let threshold = match self.advance() {
                    Some(Token::Number(n)) => n,
                    other => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.error_at(format!("expected a threshold, found {other:?}")));
                    }
                };
                Ok(Condition::Compare {
                    func,
                    cmp,
                    threshold,
                })
            }
        }
    }

    fn func(&mut self) -> Result<Func, ParseError> {
        let name = match self.advance() {
            Some(Token::Ident(s)) => s,
            other => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_at(format!("expected a function, found {other:?}")));
            }
        };
        match name.as_str() {
            "max" | "min" | "avg" => {
                self.expect(&Token::LParen, "`(`")?;
                self.expect_ident("x_l")?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Func::Pixel(match name.as_str() {
                    "max" => PixelStat::Max,
                    "min" => PixelStat::Min,
                    _ => PixelStat::Avg,
                }))
            }
            "score_diff" => {
                self.expect(&Token::LParen, "`(`")?;
                self.expect_ident("N")?;
                self.expect(&Token::LParen, "`(`")?;
                self.expect_ident("x")?;
                self.expect(&Token::RParen, "`)`")?;
                self.expect(&Token::Comma, "`,`")?;
                self.expect_ident("N")?;
                self.expect(&Token::LParen, "`(`")?;
                self.expect_ident("x")?;
                self.expect(&Token::LBracket, "`[`")?;
                self.expect_ident("l")?;
                self.expect(&Token::Arrow, "`<-`")?;
                self.expect_ident("p")?;
                self.expect(&Token::RBracket, "`]`")?;
                self.expect(&Token::RParen, "`)`")?;
                self.expect(&Token::Comma, "`,`")?;
                self.expect_ident("c_x")?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Func::ScoreDiff)
            }
            "center" => {
                self.expect(&Token::LParen, "`(`")?;
                self.expect_ident("l")?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Func::Center)
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_at(format!("unknown function `{other}`")))
            }
        }
    }
}

/// Parses a program from its concrete syntax.
///
/// # Errors
///
/// Returns [`ParseError`] describing the offset and cause on malformed
/// input.
///
/// # Examples
///
/// ```
/// use oppsla_core::dsl::{parse_program, Program};
///
/// let p = Program::paper_example();
/// let round_tripped = parse_program(&p.to_string())?;
/// assert_eq!(p, round_tripped);
/// # Ok::<(), oppsla_core::dsl::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut parser = Parser { tokens, pos: 0 };
    let program = parser.program()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error_at("trailing input after the fourth condition"));
    }
    Ok(program)
}

/// Parses a single condition (convenience for tests and tools).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_condition(src: &str) -> Result<Condition, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut parser = Parser { tokens, pos: 0 };
    let cond = parser.labeled_condition()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error_at("trailing input after the condition"));
    }
    Ok(cond)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_round_trip() {
        let p = Program::paper_example();
        assert_eq!(parse_program(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn parses_constant_program() {
        let p = parse_program("B1: false; B2: true; B3: false; B4: false").unwrap();
        assert_eq!(p.conditions[0], Condition::Const(false));
        assert_eq!(p.conditions[1], Condition::Const(true));
    }

    #[test]
    fn labels_are_optional() {
        let with = parse_program("B1: center(l) < 3; B2: true; B3: false; B4: max(x_l) > 0.5");
        let without = parse_program("center(l) < 3; true; false; max(x_l) > 0.5");
        assert_eq!(with.unwrap(), without.unwrap());
    }

    #[test]
    fn negative_thresholds_disambiguate_from_arrow() {
        let c = parse_condition("score_diff(N(x), N(x[l<-p]), c_x) < -0.25").unwrap();
        assert_eq!(
            c,
            Condition::Compare {
                func: Func::ScoreDiff,
                cmp: Cmp::Lt,
                threshold: -0.25
            }
        );
    }

    #[test]
    fn rejects_three_conditions() {
        let err = parse_program("true; true; true").unwrap_err();
        assert!(err.message.contains("four conditions"), "{err}");
    }

    #[test]
    fn rejects_five_conditions() {
        let err = parse_program("true; true; true; true; true").unwrap_err();
        assert!(err.message.contains("four conditions"), "{err}");
    }

    #[test]
    fn rejects_unknown_function() {
        let err = parse_condition("median(x_l) > 0.5").unwrap_err();
        assert!(err.message.contains("unknown function"), "{err}");
    }

    #[test]
    fn rejects_missing_threshold() {
        assert!(parse_condition("center(l) <").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_condition("center(l) < 3 extra").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_malformed_score_diff_args() {
        assert!(parse_condition("score_diff(N(x), N(x), c_x) > 0.1").is_err());
    }

    #[test]
    fn error_offsets_point_into_the_input() {
        let src = "center(l) ? 3; true; true; true";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.offset, src.find('?').unwrap());
    }

    #[test]
    fn scientific_notation_thresholds() {
        let c = parse_condition("avg(x_l) > 1.5e-2").unwrap();
        assert_eq!(
            c,
            Condition::Compare {
                func: Func::Pixel(PixelStat::Avg),
                cmp: Cmp::Gt,
                threshold: 0.015
            }
        );
    }

    #[test]
    fn boolean_combinators_parse_with_precedence() {
        // a || b && !c groups as a || (b && (!c)).
        let c = parse_condition("true || false && !center(l) < 3").unwrap();
        match c {
            Condition::Or(a, b) => {
                assert_eq!(*a, Condition::Const(true));
                match *b {
                    Condition::And(x, y) => {
                        assert_eq!(*x, Condition::Const(false));
                        assert!(matches!(*y, Condition::Not(_)));
                    }
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let grouped = parse_condition("(true || false) && true").unwrap();
        assert!(matches!(grouped, Condition::And(..)));
        let flat = parse_condition("true || false && true").unwrap();
        assert!(matches!(flat, Condition::Or(..)));
    }

    #[test]
    fn nested_negation_parses() {
        let c = parse_condition("!!max(x_l) > 0.5").unwrap();
        match c {
            Condition::Not(inner) => assert!(matches!(*inner, Condition::Not(_))),
            other => panic!("expected Not, got {other:?}"),
        }
    }

    #[test]
    fn extended_conditions_round_trip() {
        for src in [
            "!center(l) < 3",
            "max(x_l) > 0.5 && min(x_l) < 0.2",
            "(avg(x_l) > 0.3 || center(l) < 2) && !false",
        ] {
            let parsed = parse_condition(src).unwrap();
            let reparsed = parse_condition(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "{src} failed to round-trip");
        }
    }

    #[test]
    fn rejects_single_ampersand() {
        assert!(parse_condition("true & false").is_err());
    }

    #[test]
    fn rejects_unclosed_paren() {
        assert!(parse_condition("(true || false").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_condition("max(x_l)>0.5").unwrap();
        let b = parse_condition("  max ( x_l )  >  0.5 ").unwrap();
        assert_eq!(a, b);
    }
}
