//! Typed random generation and mutation of programs — the proposal
//! distribution of the Metropolis–Hastings search (Section 4).
//!
//! A program is represented as the abstract syntax tree of Figure 2: a
//! root with four condition children, each condition holding a function
//! child and a constant child. A mutation uniformly selects one of the 13
//! nodes (1 root + 4 conditions + 4 functions + 4 constants) and resamples
//! its entire subtree *by the corresponding grammar rule*, so every mutant
//! is well-typed by construction — in particular, thresholds are always
//! drawn from (or re-drawn into) the selected function's typed range.

use super::ast::{Cmp, Condition, Func, Program};
use rand::Rng;

/// Image extents, which type the `center(l)` threshold range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageDims {
    /// Image height (`d₁`).
    pub height: usize,
    /// Image width (`d₂`).
    pub width: usize,
}

impl ImageDims {
    /// Creates dims.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "image extents must be positive");
        ImageDims { height, width }
    }
}

fn sample_func(rng: &mut impl Rng) -> Func {
    Func::ALL[rng.gen_range(0..Func::ALL.len())]
}

fn sample_cmp(rng: &mut impl Rng) -> Cmp {
    if rng.gen_bool(0.5) {
        Cmp::Lt
    } else {
        Cmp::Gt
    }
}

fn sample_threshold(rng: &mut impl Rng, func: Func, dims: ImageDims) -> f64 {
    let (lo, hi) = func.threshold_range(dims.height, dims.width);
    rng.gen_range(lo..=hi)
}

/// Which grammar the sampler and mutator draw from.
///
/// [`GrammarConfig::paper`] is the faithful Figure 1 grammar (atomic
/// comparisons only). [`GrammarConfig::extended`] additionally generates
/// boolean combinators (`!`, `&&`, `||`) up to a depth bound — this
/// reproduction's richer search space extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrammarConfig {
    /// Allow `!`, `&&`, `||` nodes.
    pub boolean_ops: bool,
    /// Maximum condition depth when `boolean_ops` is on (1 = atoms only).
    pub max_depth: usize,
}

impl GrammarConfig {
    /// The paper's grammar (Figure 1).
    pub fn paper() -> Self {
        GrammarConfig {
            boolean_ops: false,
            max_depth: 1,
        }
    }

    /// The extended grammar with boolean combinators up to `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn extended(max_depth: usize) -> Self {
        assert!(max_depth > 0, "max_depth must be at least 1");
        GrammarConfig {
            boolean_ops: true,
            max_depth,
        }
    }
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig::paper()
    }
}

fn sample_atom(rng: &mut impl Rng, dims: ImageDims) -> Condition {
    let func = sample_func(rng);
    Condition::Compare {
        func,
        cmp: sample_cmp(rng),
        threshold: sample_threshold(rng, func, dims),
    }
}

fn sample_condition_at_depth(
    rng: &mut impl Rng,
    dims: ImageDims,
    grammar: GrammarConfig,
    depth_left: usize,
) -> Condition {
    if !grammar.boolean_ops || depth_left <= 1 || rng.gen_bool(0.6) {
        return sample_atom(rng, dims);
    }
    match rng.gen_range(0..3u8) {
        0 => Condition::Not(Box::new(sample_condition_at_depth(
            rng,
            dims,
            grammar,
            depth_left - 1,
        ))),
        1 => Condition::And(
            Box::new(sample_condition_at_depth(
                rng,
                dims,
                grammar,
                depth_left - 1,
            )),
            Box::new(sample_condition_at_depth(
                rng,
                dims,
                grammar,
                depth_left - 1,
            )),
        ),
        _ => Condition::Or(
            Box::new(sample_condition_at_depth(
                rng,
                dims,
                grammar,
                depth_left - 1,
            )),
            Box::new(sample_condition_at_depth(
                rng,
                dims,
                grammar,
                depth_left - 1,
            )),
        ),
    }
}

/// Samples a random well-typed condition from the paper's grammar.
pub fn random_condition(rng: &mut impl Rng, dims: ImageDims) -> Condition {
    sample_atom(rng, dims)
}

/// Samples a random well-typed condition from `grammar`.
pub fn random_condition_in(
    rng: &mut impl Rng,
    dims: ImageDims,
    grammar: GrammarConfig,
) -> Condition {
    sample_condition_at_depth(rng, dims, grammar, grammar.max_depth)
}

/// Samples a random well-typed program from the paper's grammar (the
/// synthesizer's starting point).
pub fn random_program(rng: &mut impl Rng, dims: ImageDims) -> Program {
    random_program_in(rng, dims, GrammarConfig::paper())
}

/// Samples a random well-typed program from `grammar`.
pub fn random_program_in(rng: &mut impl Rng, dims: ImageDims, grammar: GrammarConfig) -> Program {
    Program::new([
        random_condition_in(rng, dims, grammar),
        random_condition_in(rng, dims, grammar),
        random_condition_in(rng, dims, grammar),
        random_condition_in(rng, dims, grammar),
    ])
}

/// The node selected for mutation in the program AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MutationSite {
    /// The root: all four conditions are resampled.
    Root,
    /// Condition `i` (0-based): its whole subtree is resampled.
    Condition(usize),
    /// The function child of condition `i`: the function is resampled; the
    /// threshold is re-drawn only if it falls outside the new function's
    /// typed range (keeping the mutation local while preserving typing).
    Func(usize),
    /// The constant child of condition `i`: the threshold is resampled
    /// from the current function's range.
    Threshold(usize),
}

fn sample_site(rng: &mut impl Rng) -> MutationSite {
    match rng.gen_range(0..13u32) {
        0 => MutationSite::Root,
        n @ 1..=4 => MutationSite::Condition((n - 1) as usize),
        n @ 5..=8 => MutationSite::Func((n - 5) as usize),
        n => MutationSite::Threshold((n - 9) as usize),
    }
}

/// Mutates `program` by uniformly picking an AST node and resampling its
/// subtree per the paper's grammar. Always returns a well-typed program.
///
/// A `Const` condition (possible only if the caller seeded the search with
/// a baseline program) is replaced by a fresh grammar condition whenever
/// its node or a child of it is selected.
pub fn mutate(rng: &mut impl Rng, program: &Program, dims: ImageDims) -> Program {
    mutate_in(rng, program, dims, GrammarConfig::paper())
}

/// Mutates `program` within `grammar`. With the paper grammar, function
/// and threshold children can be mutated individually (the Figure 2 tree);
/// with the extended grammar, selecting a condition resamples a whole
/// (possibly nested) condition, and leaf-level sites rewrite the first
/// atom found in the condition's leftmost spine, keeping mutations local.
pub fn mutate_in(
    rng: &mut impl Rng,
    program: &Program,
    dims: ImageDims,
    grammar: GrammarConfig,
) -> Program {
    let mut out = program.clone();
    match sample_site(rng) {
        MutationSite::Root => {
            out = random_program_in(rng, dims, grammar);
        }
        MutationSite::Condition(i) => {
            out.conditions[i] = random_condition_in(rng, dims, grammar);
        }
        MutationSite::Func(i) => {
            mutate_first_atom(rng, &mut out.conditions[i], dims, grammar, AtomSite::Func);
        }
        MutationSite::Threshold(i) => {
            mutate_first_atom(
                rng,
                &mut out.conditions[i],
                dims,
                grammar,
                AtomSite::Threshold,
            );
        }
    }
    out
}

#[derive(Clone, Copy)]
enum AtomSite {
    Func,
    Threshold,
}

/// Rewrites the leftmost atomic comparison inside `cond` at the given
/// site; `Const` leaves are replaced by fresh conditions.
fn mutate_first_atom(
    rng: &mut impl Rng,
    cond: &mut Condition,
    dims: ImageDims,
    grammar: GrammarConfig,
    site: AtomSite,
) {
    match cond {
        Condition::Compare {
            func,
            cmp: _,
            threshold,
        } => match site {
            AtomSite::Func => {
                let new_func = sample_func(rng);
                let (lo, hi) = new_func.threshold_range(dims.height, dims.width);
                if !(lo..=hi).contains(threshold) {
                    *threshold = sample_threshold(rng, new_func, dims);
                }
                *func = new_func;
            }
            AtomSite::Threshold => {
                *threshold = sample_threshold(rng, *func, dims);
            }
        },
        Condition::Const(_) => {
            *cond = random_condition_in(rng, dims, grammar);
        }
        Condition::Not(inner) => mutate_first_atom(rng, inner, dims, grammar, site),
        Condition::And(a, _) | Condition::Or(a, _) => {
            mutate_first_atom(rng, a, dims, grammar, site)
        }
    }
}

/// True when every condition of `program` is well-typed for `dims`:
/// atomic comparisons carry thresholds inside their function's range
/// (constants are vacuously well-typed; combinators recurse).
pub fn is_well_typed(program: &Program, dims: ImageDims) -> bool {
    fn check(cond: &Condition, dims: ImageDims) -> bool {
        match cond {
            Condition::Compare {
                func, threshold, ..
            } => {
                let (lo, hi) = func.threshold_range(dims.height, dims.width);
                (lo..=hi).contains(threshold) && threshold.is_finite()
            }
            Condition::Const(_) => true,
            Condition::Not(inner) => check(inner, dims),
            Condition::And(a, b) | Condition::Or(a, b) => check(a, dims) && check(b, dims),
        }
    }
    program.conditions.iter().all(|cond| check(cond, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const DIMS: ImageDims = ImageDims {
        height: 32,
        width: 32,
    };

    #[test]
    fn random_programs_are_well_typed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..200 {
            let p = random_program(&mut rng, DIMS);
            assert!(is_well_typed(&p, DIMS), "{p}");
        }
    }

    #[test]
    fn mutants_are_well_typed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut p = random_program(&mut rng, DIMS);
        for _ in 0..500 {
            p = mutate(&mut rng, &p, DIMS);
            assert!(is_well_typed(&p, DIMS), "{p}");
        }
    }

    #[test]
    fn mutation_changes_at_most_all_and_usually_something() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = random_program(&mut rng, DIMS);
        let mut changed = 0;
        for _ in 0..100 {
            let q = mutate(&mut rng, &p, DIMS);
            if q != p {
                changed += 1;
            }
        }
        // Resampling can reproduce the same value occasionally, but the
        // overwhelming majority of mutations must differ.
        assert!(
            changed > 80,
            "only {changed}/100 mutations changed anything"
        );
    }

    #[test]
    fn mutation_reaches_every_site() {
        // Over many mutations of a fixed program, each of the four
        // conditions must change at least once, in each of the ways.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = random_program(&mut rng, DIMS);
        let mut cond_changed = [false; 4];
        for _ in 0..400 {
            let q = mutate(&mut rng, &p, DIMS);
            for (changed, (new, old)) in cond_changed
                .iter_mut()
                .zip(q.conditions.iter().zip(p.conditions.iter()))
            {
                *changed |= new != old;
            }
        }
        assert_eq!(cond_changed, [true; 4], "some condition never mutated");
    }

    #[test]
    fn mutating_const_program_escapes_constants() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut p = Program::constant(false);
        let mut escaped = false;
        for _ in 0..50 {
            p = mutate(&mut rng, &p, DIMS);
            if p.conditions
                .iter()
                .any(|c| matches!(c, Condition::Compare { .. }))
            {
                escaped = true;
                break;
            }
        }
        assert!(escaped, "mutation never left the constant program");
    }

    #[test]
    fn mutation_is_deterministic_under_seed() {
        let base = {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            random_program(&mut rng, DIMS)
        };
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(6);
            let mut p = base.clone();
            for _ in 0..20 {
                p = mutate(&mut rng, &p, DIMS);
            }
            p
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn extended_grammar_produces_combinators() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let grammar = GrammarConfig::extended(3);
        let mut saw_combinator = false;
        for _ in 0..50 {
            let p = random_program_in(&mut rng, DIMS, grammar);
            assert!(is_well_typed(&p, DIMS), "{p}");
            if !p.is_paper_grammar() {
                saw_combinator = true;
            }
        }
        assert!(saw_combinator, "extended sampler never used a combinator");
    }

    #[test]
    fn extended_grammar_respects_depth_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let grammar = GrammarConfig::extended(3);
        for _ in 0..200 {
            let p = random_program_in(&mut rng, DIMS, grammar);
            for cond in &p.conditions {
                assert!(cond.depth() <= 3, "depth {} > 3: {cond}", cond.depth());
            }
        }
    }

    #[test]
    fn paper_grammar_sampler_never_produces_combinators() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..200 {
            let p = random_program(&mut rng, DIMS);
            assert!(p.is_paper_grammar(), "{p}");
        }
    }

    #[test]
    fn extended_mutation_stays_well_typed_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let grammar = GrammarConfig::extended(3);
        let mut p = random_program_in(&mut rng, DIMS, grammar);
        for _ in 0..300 {
            p = mutate_in(&mut rng, &p, DIMS, grammar);
            assert!(is_well_typed(&p, DIMS), "{p}");
            for cond in &p.conditions {
                assert!(cond.depth() <= 3, "{cond}");
            }
        }
    }

    #[test]
    fn center_thresholds_respect_small_images() {
        let dims = ImageDims::new(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let p = random_program(&mut rng, dims);
            assert!(is_well_typed(&p, dims));
        }
    }
}
