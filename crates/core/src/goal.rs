//! Attack goals: untargeted (the paper's setting) and targeted
//! misclassification.
//!
//! The paper's attacks are untargeted — success means
//! `argmax(N(x+δ)) ≠ c_x`. Targeted attacks (force a *specific* wrong
//! class) are a natural extension supported throughout this reproduction:
//! the sketch, the baselines and the synthesizer are all goal-generic,
//! because each of them only needs a success predicate and a margin.

use crate::oracle::argmax;
use std::fmt;

/// What counts as a successful adversarial example.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum AttackGoal {
    /// Any misclassification: `argmax(N(x')) ≠ c_x` (the paper's setting).
    #[default]
    Untargeted,
    /// Force the classifier's decision to a specific class.
    Targeted(usize),
}

impl AttackGoal {
    /// True when `scores` constitute a successful attack against an image
    /// whose true class is `true_class`.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty, or if a targeted goal's class is out
    /// of range.
    pub fn is_adversarial(&self, scores: &[f32], true_class: usize) -> bool {
        match self {
            AttackGoal::Untargeted => argmax(scores) != true_class,
            AttackGoal::Targeted(target) => {
                assert!(*target < scores.len(), "target class out of range");
                argmax(scores) == *target
            }
        }
    }

    /// A margin that is negative iff the attack succeeds:
    ///
    /// * untargeted — `scores[c_x] − max_{j≠c_x} scores[j]`;
    /// * targeted — `max_{j≠t} scores[j] − scores[t]`.
    ///
    /// # Panics
    ///
    /// Panics if `scores` has fewer than two entries, `true_class` is out
    /// of range, or a targeted goal's class is out of range.
    pub fn margin(&self, scores: &[f32], true_class: usize) -> f32 {
        assert!(scores.len() >= 2, "margin needs at least two classes");
        assert!(true_class < scores.len(), "true class out of range");
        let best_other = |excluded: usize| {
            let mut best = f32::NEG_INFINITY;
            for (j, &s) in scores.iter().enumerate() {
                if j != excluded && s > best {
                    best = s;
                }
            }
            best
        };
        match self {
            AttackGoal::Untargeted => scores[true_class] - best_other(true_class),
            AttackGoal::Targeted(target) => {
                assert!(*target < scores.len(), "target class out of range");
                best_other(*target) - scores[*target]
            }
        }
    }

    /// The fitness the differential-evolution baseline minimizes: the true
    /// class's score for untargeted attacks, the target's negated score
    /// for targeted ones.
    pub fn fitness(&self, scores: &[f32], true_class: usize) -> f32 {
        match self {
            AttackGoal::Untargeted => scores[true_class],
            AttackGoal::Targeted(target) => -scores[*target],
        }
    }

    /// Checks the goal is satisfiable against a classifier with
    /// `num_classes` classes and the given true class: a targeted goal
    /// must name an in-range class different from `true_class`.
    ///
    /// # Panics
    ///
    /// Panics when the goal is unsatisfiable (these are caller bugs, not
    /// runtime conditions).
    pub fn validate(&self, num_classes: usize, true_class: usize) {
        if let AttackGoal::Targeted(target) = self {
            assert!(
                *target < num_classes,
                "target class {target} out of range ({num_classes} classes)"
            );
            assert_ne!(
                *target, true_class,
                "targeted goal names the true class — the attack is vacuous"
            );
        }
    }
}

impl fmt::Display for AttackGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackGoal::Untargeted => f.write_str("untargeted"),
            AttackGoal::Targeted(t) => write!(f, "targeted({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f32; 4] = [0.5, 0.3, 0.15, 0.05];

    #[test]
    fn untargeted_success_is_any_flip() {
        let goal = AttackGoal::Untargeted;
        assert!(!goal.is_adversarial(&SCORES, 0));
        assert!(goal.is_adversarial(&SCORES, 1));
    }

    #[test]
    fn targeted_success_requires_the_target() {
        let goal = AttackGoal::Targeted(1);
        // argmax is 0, not the target: failure even though class 2 is the
        // true class.
        assert!(!goal.is_adversarial(&SCORES, 2));
        let flipped = [0.2f32, 0.6, 0.1, 0.1];
        assert!(goal.is_adversarial(&flipped, 2));
    }

    #[test]
    fn margins_are_negative_exactly_on_success() {
        for goal in [
            AttackGoal::Untargeted,
            AttackGoal::Targeted(1),
            AttackGoal::Targeted(3),
        ] {
            for true_class in 0..4 {
                if let AttackGoal::Targeted(t) = goal {
                    if t == true_class {
                        continue;
                    }
                }
                let success = goal.is_adversarial(&SCORES, true_class);
                let margin = goal.margin(&SCORES, true_class);
                assert_eq!(
                    success,
                    margin < 0.0,
                    "{goal} true={true_class}: success {success} vs margin {margin}"
                );
            }
        }
    }

    #[test]
    fn targeted_margin_decreases_as_target_score_rises() {
        let goal = AttackGoal::Targeted(2);
        let low = goal.margin(&[0.5, 0.3, 0.1, 0.1], 0);
        let high = goal.margin(&[0.45, 0.3, 0.2, 0.05], 0);
        assert!(high < low);
    }

    #[test]
    fn fitness_directions() {
        assert_eq!(AttackGoal::Untargeted.fitness(&SCORES, 0), 0.5);
        assert_eq!(AttackGoal::Targeted(2).fitness(&SCORES, 0), -0.15);
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn validate_rejects_target_equal_true_class() {
        AttackGoal::Targeted(1).validate(4, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range_target() {
        AttackGoal::Targeted(9).validate(4, 0);
    }
}
