//! Images and one-pixel perturbations.

use crate::pair::{Location, Pixel};
use std::fmt;

/// An RGB image in `[0, 1]`, stored CHW (channel-major) to match the
//  network substrate's layout so classifier adapters can copy it directly.
/// Pixel access is by `(row, col)` [`Location`].
///
/// # Examples
///
/// ```
/// use oppsla_core::image::Image;
/// use oppsla_core::pair::{Location, Pixel};
///
/// let img = Image::filled(4, 4, Pixel([0.5, 0.5, 0.5]));
/// let loc = Location::new(1, 2);
/// let adv = img.with_pixel(loc, Pixel([1.0, 0.0, 0.0]));
/// assert_eq!(adv.pixel(loc), Pixel([1.0, 0.0, 0.0]));
/// assert_eq!(img.pixel(loc), Pixel([0.5, 0.5, 0.5])); // original untouched
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Image {
    height: usize,
    width: usize,
    /// CHW data: `data[c*h*w + row*w + col]`.
    data: Vec<f32>,
}

impl Image {
    /// Creates an image from CHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 3·height·width`, the extents are zero, any
    /// value lies outside `[0, 1]`, or an extent exceeds `u16::MAX`
    /// (locations are 16-bit).
    pub fn new(height: usize, width: usize, data: Vec<f32>) -> Self {
        assert!(height > 0 && width > 0, "image extents must be positive");
        assert!(
            height <= u16::MAX as usize && width <= u16::MAX as usize,
            "image extents exceed the 16-bit location space"
        );
        assert_eq!(
            data.len(),
            3 * height * width,
            "expected {} CHW values, got {}",
            3 * height * width,
            data.len()
        );
        assert!(
            data.iter().all(|v| (0.0..=1.0).contains(v)),
            "image values must lie in [0, 1]"
        );
        Image {
            height,
            width,
            data,
        }
    }

    /// Creates a solid-colour image.
    pub fn filled(height: usize, width: usize, pixel: Pixel) -> Self {
        let area = height * width;
        let mut data = Vec::with_capacity(3 * area);
        for c in pixel.0 {
            assert!((0.0..=1.0).contains(&c), "pixel values must lie in [0, 1]");
            data.extend(std::iter::repeat_n(c, area));
        }
        Image::new(height, width, data)
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total pixel count (`d1 · d2` in the paper).
    pub fn num_pixels(&self) -> usize {
        self.height * self.width
    }

    /// The raw CHW data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The pixel at `loc` (`x_l` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of bounds.
    pub fn pixel(&self, loc: Location) -> Pixel {
        let (row, col) = (loc.row as usize, loc.col as usize);
        assert!(
            row < self.height && col < self.width,
            "location out of bounds"
        );
        let area = self.height * self.width;
        let off = row * self.width + col;
        Pixel([
            self.data[off],
            self.data[area + off],
            self.data[2 * area + off],
        ])
    }

    /// Returns a copy with the pixel at `loc` replaced (`x[l ← p]`).
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of bounds or `pixel` has values outside
    /// `[0, 1]`.
    pub fn with_pixel(&self, loc: Location, pixel: Pixel) -> Image {
        let mut out = self.clone();
        out.set_pixel(loc, pixel);
        out
    }

    /// Replaces the pixel at `loc` in place.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of bounds or `pixel` has values outside
    /// `[0, 1]`.
    pub fn set_pixel(&mut self, loc: Location, pixel: Pixel) {
        let (row, col) = (loc.row as usize, loc.col as usize);
        assert!(
            row < self.height && col < self.width,
            "location out of bounds"
        );
        assert!(
            pixel.0.iter().all(|v| (0.0..=1.0).contains(v)),
            "pixel values must lie in [0, 1]"
        );
        let area = self.height * self.width;
        let off = row * self.width + col;
        self.data[off] = pixel.0[0];
        self.data[area + off] = pixel.0[1];
        self.data[2 * area + off] = pixel.0[2];
    }

    /// The L∞ distance of `loc` from the image centre (`center(l)` in the
    /// condition language). For even extents the centre falls between
    /// pixels, so the distance is fractional.
    pub fn center_distance(&self, loc: Location) -> f64 {
        let cr = (self.height as f64 - 1.0) / 2.0;
        let cc = (self.width as f64 - 1.0) / 2.0;
        (loc.row as f64 - cr).abs().max((loc.col as f64 - cc).abs())
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_round_trip() {
        let mut img = Image::filled(3, 4, Pixel([0.2, 0.4, 0.6]));
        let loc = Location::new(2, 3);
        assert_eq!(img.pixel(loc), Pixel([0.2, 0.4, 0.6]));
        img.set_pixel(loc, Pixel([1.0, 0.0, 0.5]));
        assert_eq!(img.pixel(loc), Pixel([1.0, 0.0, 0.5]));
        // Other pixels untouched.
        assert_eq!(img.pixel(Location::new(0, 0)), Pixel([0.2, 0.4, 0.6]));
    }

    #[test]
    fn with_pixel_leaves_original_untouched() {
        let img = Image::filled(2, 2, Pixel([0.0, 0.0, 0.0]));
        let adv = img.with_pixel(Location::new(1, 1), Pixel([1.0, 1.0, 1.0]));
        assert_eq!(img.pixel(Location::new(1, 1)), Pixel([0.0, 0.0, 0.0]));
        assert_eq!(adv.pixel(Location::new(1, 1)), Pixel([1.0, 1.0, 1.0]));
        // Exactly one pixel differs → a valid one-pixel perturbation.
        let diffs = img
            .data()
            .iter()
            .zip(adv.data())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 3, "one pixel = three channel values");
    }

    #[test]
    fn center_distance_is_l_infinity() {
        let img = Image::filled(5, 5, Pixel([0.0; 3]));
        assert_eq!(img.center_distance(Location::new(2, 2)), 0.0);
        assert_eq!(img.center_distance(Location::new(0, 2)), 2.0);
        assert_eq!(img.center_distance(Location::new(0, 0)), 2.0);
        assert_eq!(img.center_distance(Location::new(4, 1)), 2.0);
    }

    #[test]
    fn center_distance_even_extent_is_fractional() {
        let img = Image::filled(4, 4, Pixel([0.0; 3]));
        assert_eq!(img.center_distance(Location::new(0, 0)), 1.5);
        assert_eq!(img.center_distance(Location::new(2, 2)), 0.5);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_values() {
        Image::new(1, 1, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "location out of bounds")]
    fn rejects_out_of_bounds_access() {
        Image::filled(2, 2, Pixel([0.0; 3])).pixel(Location::new(2, 0));
    }

    #[test]
    fn chw_layout_matches_tensor_convention() {
        // data[c*h*w + row*w + col]
        let mut data = vec![0.0; 12];
        data[3] = 0.1; // channel 0 (R), offset row*w+col = 3
        data[4 + 3] = 0.2; // channel 1 (G)
        data[2 * 4 + 3] = 0.3; // channel 2 (B)
        let img = Image::new(2, 2, data);
        assert_eq!(img.pixel(Location::new(1, 1)), Pixel([0.1, 0.2, 0.3]));
    }
}
