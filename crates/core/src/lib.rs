//! # OPPSLA core
//!
//! A faithful implementation of *"One Pixel Adversarial Attacks via
//! Sketched Programs"* (Yuviler & Drachsler-Cohen, 2023): the one-pixel
//! attack [`sketch`] (Algorithm 1), the condition [`dsl`] (Figure 1), and
//! the Metropolis–Hastings [`synth`]esizer OPPSLA (Algorithm 2), together
//! with the supporting vocabulary — [`image::Image`]s,
//! location–perturbation [`pair`]s, the sketch's priority [`queue`], and
//! the black-box [`oracle`] interface with query accounting.
//!
//! This crate is deliberately independent of any particular classifier
//! implementation: everything goes through the [`oracle::Classifier`]
//! trait, mirroring the paper's black-box threat model.
//!
//! # Examples
//!
//! Attack a toy classifier with the fixed-prioritization program:
//!
//! ```
//! use oppsla_core::dsl::Program;
//! use oppsla_core::image::Image;
//! use oppsla_core::oracle::{FnClassifier, Oracle};
//! use oppsla_core::pair::{Location, Pixel};
//! use oppsla_core::sketch::run_sketch;
//!
//! // A classifier with a one-pixel weakness at (1, 1).
//! let clf = FnClassifier::new(2, |img: &Image| {
//!     if img.pixel(Location::new(1, 1)) == Pixel([1.0, 1.0, 1.0]) {
//!         vec![0.1, 0.9]
//!     } else {
//!         vec![0.9, 0.1]
//!     }
//! });
//! let image = Image::filled(3, 3, Pixel([0.5, 0.5, 0.5]));
//! let mut oracle = Oracle::new(&clf);
//! let outcome = run_sketch(&Program::constant(false), &mut oracle, &image, 0);
//! assert!(outcome.is_success());
//! ```

#![warn(missing_docs)]

pub mod dsl;
pub mod goal;
pub mod image;
pub mod oracle;
pub mod pair;
pub mod parallel;
pub mod prior;
pub mod queue;
pub mod sketch;
pub mod synth;
pub mod tracing;

/// Query-path telemetry (re-export of [`oppsla_obs`]): phase counters,
/// per-image query histograms, and metric sinks. Recording is inert
/// unless the `telemetry` cargo feature is enabled.
pub use oppsla_obs as telemetry;
