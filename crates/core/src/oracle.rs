//! The black-box classifier interface and query accounting.
//!
//! The attack setting is strictly black-box: the attacker can only submit
//! images and observe score vectors. Every attack and the synthesizer go
//! through an [`Oracle`], which counts queries and enforces an optional
//! budget — the paper's central cost metric.

use crate::image::Image;
use crate::pair::{Location, Pixel};
use std::fmt;

/// A black-box image classifier: maps an image to one score per class.
///
/// The attack only ever observes score vectors — no gradients, no
/// weights, matching the paper's threat model.
pub trait Classifier {
    /// The number of classes `c`.
    fn num_classes(&self) -> usize;

    /// The score vector `N(x)` (length [`Classifier::num_classes`]).
    fn scores(&self, image: &Image) -> Vec<f32>;

    /// Writes `N(x)` into `out` (cleared first). The default delegates to
    /// [`Classifier::scores`]; allocation-free backends override this so
    /// the query hot path can reuse one buffer across millions of calls.
    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.scores(image));
    }

    /// The classifier's decision: `argmax(N(x))`.
    fn classify(&self, image: &Image) -> usize {
        let scores = self.scores(image);
        argmax(&scores)
    }

    /// Writes `N(x')` into `out` (cleared first), where `x'` is `base`
    /// with the pixel at `location` replaced by `pixel` — the shape of
    /// every candidate query in the one-pixel attack sketch.
    ///
    /// The default clones the base and delegates to
    /// [`Classifier::scores_into`]; incremental backends override this to
    /// reuse cached base activations and recompute only the perturbed
    /// receptive-field cone. Overrides must return bit-identical scores
    /// to the default.
    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        let perturbed = base.with_pixel(location, pixel);
        self.scores_into(&perturbed, out);
    }

    /// Writes `N(x)` for every image, appending each score vector to
    /// `out` (cleared first) in image order. The default loops over
    /// [`Classifier::scores_into`]; batched backends override this to run
    /// all images through one layer-major forward. Overrides must return
    /// bit-identical scores, per image, to the sequential default.
    fn scores_batch_into(&self, images: &[Image], out: &mut Vec<f32>) {
        out.clear();
        let mut buf = Vec::new();
        for image in images {
            self.scores_into(image, &mut buf);
            out.extend_from_slice(&buf);
        }
    }

    /// Writes `N(x')` for every one-pixel candidate against the same
    /// `base`, appending each score vector to `out` (cleared first) in
    /// candidate order. The default loops over
    /// [`Classifier::scores_pixel_delta_into`]; incremental backends
    /// override this to share one cached base across the batch and run
    /// the delta steps layer-major. Overrides must return bit-identical
    /// scores, per candidate, to the sequential default.
    fn scores_pixel_delta_batch_into(
        &self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        let mut buf = Vec::new();
        for &(location, pixel) in candidates {
            self.scores_pixel_delta_into(base, location, pixel, &mut buf);
            out.extend_from_slice(&buf);
        }
    }
}

/// A classifier that can be queried from many threads at once.
///
/// `Sync` makes the shared state (weights, compiled plans) safe to
/// reference across threads; [`BatchClassifier::session`] hands each
/// worker its own cheap handle carrying any per-thread mutable state
/// (e.g. a forward workspace), so concurrent queries never contend.
pub trait BatchClassifier: Classifier + Sync {
    /// A per-thread query handle borrowing this classifier's shared state.
    fn session(&self) -> Box<dyn Classifier + '_>;
}

/// The trivial [`BatchClassifier::session`] handle for classifiers with no
/// per-thread state: forwards every call to the shared classifier.
pub struct SharedSession<'a>(pub &'a dyn Classifier);

impl Classifier for SharedSession<'_> {
    fn num_classes(&self) -> usize {
        self.0.num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.0.scores(image)
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        self.0.scores_into(image, out);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        // Forward explicitly so a wrapped incremental backend keeps its
        // fast path (the default would re-derive via `scores_into`).
        self.0.scores_pixel_delta_into(base, location, pixel, out);
    }

    fn scores_batch_into(&self, images: &[Image], out: &mut Vec<f32>) {
        self.0.scores_batch_into(images, out);
    }

    fn scores_pixel_delta_batch_into(
        &self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        self.0.scores_pixel_delta_batch_into(base, candidates, out);
    }
}

/// Index of the maximum score (first on ties), under `f32`'s total order
/// so the result is well-defined even for non-finite inputs: a NaN
/// anywhere no longer silently selects class 0 (every plain `>` against
/// NaN is false), it sorts above +∞ and wins instead.
///
/// # Panics
///
/// Panics if `scores` is empty; debug builds additionally reject
/// non-finite scores, since a NaN reaching the decision rule means the
/// classifier itself is broken.
pub fn argmax(scores: &[f32]) -> usize {
    assert!(!scores.is_empty(), "argmax of empty score vector");
    debug_assert!(
        scores.iter().all(|v| v.is_finite()),
        "non-finite score in {scores:?}"
    );
    let mut best = 0;
    for (i, v) in scores.iter().enumerate().skip(1) {
        // `Greater` only (not `>=`) keeps the first index on exact ties.
        if v.total_cmp(&scores[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

/// A classifier built from a closure, for tests and synthetic oracles.
///
/// # Examples
///
/// ```
/// use oppsla_core::image::Image;
/// use oppsla_core::oracle::{Classifier, FnClassifier};
/// use oppsla_core::pair::Pixel;
///
/// // "Bright" vs "dark" classifier.
/// let clf = FnClassifier::new(2, |img: &Image| {
///     let mean: f32 = img.data().iter().sum::<f32>() / img.data().len() as f32;
///     vec![mean, 1.0 - mean]
/// });
/// let bright = Image::filled(2, 2, Pixel([0.9, 0.9, 0.9]));
/// assert_eq!(clf.classify(&bright), 0);
/// ```
pub struct FnClassifier<F> {
    num_classes: usize,
    f: F,
}

impl<F: Fn(&Image) -> Vec<f32>> FnClassifier<F> {
    /// Wraps `f` as a classifier with `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2`.
    pub fn new(num_classes: usize, f: F) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        FnClassifier { num_classes, f }
    }
}

impl<F: Fn(&Image) -> Vec<f32>> Classifier for FnClassifier<F> {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        let scores = (self.f)(image);
        // Hard assert: a wrong-length score vector would silently corrupt
        // argmax/margin decisions in release builds too.
        assert_eq!(scores.len(), self.num_classes, "score vector length");
        scores
    }
}

impl<F: Fn(&Image) -> Vec<f32> + Sync> BatchClassifier for FnClassifier<F> {
    fn session(&self) -> Box<dyn Classifier + '_> {
        // Closure classifiers are stateless per query; the shared handle
        // suffices.
        Box::new(SharedSession(self))
    }
}

impl<F> fmt::Debug for FnClassifier<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnClassifier({} classes)", self.num_classes)
    }
}

/// One counted oracle query, recorded when the query log is enabled
/// (see [`Oracle::enable_query_log`]).
///
/// The entry captures exactly what the black-box interaction exposed:
/// which candidate was submitted (`pixel`, or `None` for a full-image
/// query), the resulting decision, and a hash over the exact score bit
/// patterns. Two query streams are byte-equivalent iff their logs are
/// equal — the comparison the scheduler equivalence tests run per
/// tenant, without retaining every score vector.
// No serde derive on purpose: the vendored serde models numbers as
// `f64`, which would silently truncate `score_hash` (a full-range u64)
// on a JSON round-trip. Wire protocols report hashes as hex strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// 1-based ordinal of this query in the oracle's counted stream
    /// (equal to [`Oracle::queries`] right after the query).
    pub seq: u64,
    /// The one-pixel candidate `(row, col, rgb bit patterns)`, or `None`
    /// for a full-image query. Pixels are stored as exact `f32` bit
    /// patterns so the log is `Eq` and collision-free on content.
    pub pixel: Option<(u16, u16, [u32; 3])>,
    /// `argmax` of the returned scores.
    pub pred: u32,
    /// FNV-1a 64 over the little-endian bit patterns of every score, in
    /// order. Bit-identical scores hash identically on every platform.
    pub score_hash: u64,
}

/// FNV-1a 64 over the exact bit patterns of `scores`.
fn hash_scores(scores: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in scores {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Stable 64-bit content identity of an image: FNV-1a over the
/// dimensions and the exact bit patterns of every channel value. Two
/// images share an id iff they are bit-identical, so the id is safe to
/// use as a cross-restart memo key — unlike an address, which a later
/// run (or a temporary) can legitimately reuse for different content.
pub fn image_content_id(image: &Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(&(image.height() as u64).to_le_bytes());
    mix(&(image.width() as u64).to_le_bytes());
    for v in image.data() {
        mix(&v.to_bits().to_le_bytes());
    }
    h
}

/// A memo key: the base image's content id plus the candidate — `None`
/// for a full-image query, or the one-pixel perturbation as exact bit
/// patterns (the same shape [`QueryLogEntry::pixel`] uses). Full-tuple
/// equality, not just a hash, so distinct candidates can never collide.
#[cfg(feature = "query-memo")]
type MemoKey = (u64, Option<(u16, u16, [u32; 3])>);

/// FNV-1a 64 as a `HashMap` hasher for [`MemoKey`]s: deterministic
/// across processes (no per-process seed), cheap on short keys.
#[cfg(feature = "query-memo")]
#[derive(Default)]
struct FnvHasher(u64);

#[cfg(feature = "query-memo")]
impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Default memo capacity in entries: with ~100 bytes per CIFAR-scale
/// entry this bounds a memo at a few tens of MB.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

#[cfg(feature = "query-memo")]
mod memo_impl {
    use super::{FnvHasher, MemoKey};
    use std::collections::{HashMap, VecDeque};
    use std::hash::BuildHasherDefault;
    use std::sync::Mutex;

    pub(super) struct MemoInner {
        pub(super) map: HashMap<MemoKey, Vec<f32>, BuildHasherDefault<FnvHasher>>,
        /// Keys in insertion order; eviction pops the oldest first, so
        /// the cache contents are a deterministic function of the insert
        /// stream — never of timing.
        pub(super) order: VecDeque<MemoKey>,
        pub(super) cap: usize,
    }

    pub(super) type Shared = Mutex<MemoInner>;
}

/// A cross-restart memoization cache for oracle queries, shared by
/// reference across the [`Oracle`]s of many attack runs (restarts, the
/// synthesizer's per-program evaluations, repeated server jobs against
/// one shard).
///
/// Scores are a pure function of (image, candidate), so serving a
/// repeat from the memo returns bit-identical scores to re-querying the
/// classifier — the cache can change *when* the classifier runs and how
/// many queries are counted, never a score. Hits are **not** counted as
/// oracle queries (see [`Oracle::memo_hits`]): the whole point is that
/// no candidate is ever paid for twice.
///
/// Without the `query-memo` feature this is an inert zero-sized stub:
/// [`Oracle::with_memo`] becomes a no-op and every query takes the
/// unmemoized path, keeping counts bit-identical to builds without the
/// feature.
pub struct QueryMemo {
    #[cfg(feature = "query-memo")]
    inner: memo_impl::Shared,
}

impl QueryMemo {
    /// Creates a memo with [`DEFAULT_MEMO_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// Creates a memo holding at most `cap` entries; inserting beyond
    /// the cap evicts the oldest entry (deterministic insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "memo capacity must be at least 1");
        #[cfg(not(feature = "query-memo"))]
        let _ = cap;
        QueryMemo {
            #[cfg(feature = "query-memo")]
            inner: std::sync::Mutex::new(memo_impl::MemoInner {
                map: std::collections::HashMap::default(),
                order: std::collections::VecDeque::new(),
                cap,
            }),
        }
    }

    /// The number of memoized entries (always 0 without `query-memo`).
    pub fn len(&self) -> usize {
        #[cfg(feature = "query-memo")]
        {
            self.inner.lock().expect("memo poisoned").map.len()
        }
        #[cfg(not(feature = "query-memo"))]
        {
            0
        }
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the memoized scores for `key` into `out` (cleared first)
    /// and returns true; leaves `out` untouched on a miss.
    #[cfg(feature = "query-memo")]
    fn lookup_into(&self, key: &MemoKey, out: &mut Vec<f32>) -> bool {
        let inner = self.inner.lock().expect("memo poisoned");
        match inner.map.get(key) {
            Some(scores) => {
                out.clear();
                out.extend_from_slice(scores);
                true
            }
            None => false,
        }
    }

    /// Memoizes `scores` for `key`. First write wins: scores are a pure
    /// function of the key, so a duplicate insert carries an identical
    /// value and is dropped without touching the eviction order.
    #[cfg(feature = "query-memo")]
    fn insert(&self, key: MemoKey, scores: &[f32]) {
        let mut inner = self.inner.lock().expect("memo poisoned");
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= inner.cap {
            let oldest = inner.order.pop_front().expect("order tracks map");
            inner.map.remove(&oldest);
            crate::telemetry::count(crate::telemetry::Counter::MemoEvict);
        }
        inner.map.insert(key, scores.to_vec());
        inner.order.push_back(key);
        crate::telemetry::count(crate::telemetry::Counter::MemoInsert);
    }
}

impl Default for QueryMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for QueryMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryMemo")
            .field("len", &self.len())
            .finish()
    }
}

/// A bank of per-image [`QueryMemo`]s for evaluation sweeps: image `i`
/// of a test set gets memo `i`, so a parallel sweep sharing the bank
/// stays deterministic for any thread count — each image's memo sees
/// exactly the query stream of that image's (sequentially ordered)
/// attack runs, never interleaved traffic from its neighbours.
#[derive(Debug)]
pub struct MemoBank {
    memos: Vec<QueryMemo>,
}

impl MemoBank {
    /// One memo per image, each holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(images: usize, cap: usize) -> Self {
        MemoBank {
            memos: (0..images).map(|_| QueryMemo::with_capacity(cap)).collect(),
        }
    }

    /// The memo for image `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn memo(&self, index: usize) -> &QueryMemo {
        &self.memos[index]
    }

    /// The number of per-image memos.
    pub fn len(&self) -> usize {
        self.memos.len()
    }

    /// True when the bank holds no memos.
    pub fn is_empty(&self) -> bool {
        self.memos.is_empty()
    }
}

/// Error returned when an [`Oracle`]'s query budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was in force.
    pub budget: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query budget of {} exhausted", self.budget)
    }
}

impl std::error::Error for BudgetExhausted {}

/// Speculatively pre-evaluated one-pixel candidates, waiting to be
/// consumed (and only then counted) by
/// [`Oracle::query_pixel_delta_into`]. See
/// [`Oracle::prefetch_pixel_batch`] for the protocol.
struct PixelBatch {
    /// Address of the base `Image` the batch was evaluated against,
    /// stored as `usize` (never dereferenced) so the oracle stays `Send`.
    base_addr: usize,
    /// Unserved candidates (pixels as exact bit patterns) with the index
    /// of their score block in `flat`; serving removes the entry.
    items: Vec<(Location, [u32; 3], usize)>,
    /// `num_classes` scores per candidate, in the original batch order.
    flat: Vec<f32>,
}

/// True when `OPPSLA_SEQUENTIAL` is set (to anything but `0`): disables
/// all speculative prefetching so every candidate runs the sequential
/// path — the A/B switch used to verify that batching changes neither
/// stdout nor query counts. Read once per process.
fn sequential_only() -> bool {
    static SEQ: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SEQ.get_or_init(|| std::env::var_os("OPPSLA_SEQUENTIAL").is_some_and(|v| v != *"0"))
}

/// A query-counting, budget-enforcing wrapper around a [`Classifier`].
///
/// # Examples
///
/// ```
/// use oppsla_core::image::Image;
/// use oppsla_core::oracle::{FnClassifier, Oracle};
/// use oppsla_core::pair::Pixel;
///
/// let clf = FnClassifier::new(2, |_: &Image| vec![1.0, 0.0]);
/// let mut oracle = Oracle::with_budget(&clf, 1);
/// let img = Image::filled(2, 2, Pixel([0.0; 3]));
/// assert!(oracle.query(&img).is_ok());
/// assert!(oracle.query(&img).is_err()); // budget spent
/// assert_eq!(oracle.queries(), 1);
/// ```
pub struct Oracle<'a> {
    classifier: &'a dyn Classifier,
    queries: u64,
    budget: Option<u64>,
    /// Speculatively evaluated candidates (none until the first
    /// [`Oracle::prefetch_pixel_batch`]).
    batch: Option<PixelBatch>,
    /// When false, [`Oracle::prefetch_pixel_batch`] is a no-op (see
    /// [`Oracle::without_speculation`]).
    speculate: bool,
    /// Per-query log, recorded at the counted consume sites when enabled
    /// (see [`Oracle::enable_query_log`]). `None` = disabled (free).
    log: Option<Vec<QueryLogEntry>>,
    /// Cross-restart memo serving repeat candidates without counting a
    /// query (see [`Oracle::with_memo`]). `None` = every query pays.
    #[cfg(feature = "query-memo")]
    memo: Option<&'a QueryMemo>,
    /// Queries served from the memo (never counted in `queries`).
    memo_hits: u64,
    /// Candidates scored since the last [`Oracle::begin_candidate_scope`],
    /// used by the `query-guard` feature to catch accidental double
    /// queries that would silently inflate reported query counts.
    #[cfg(feature = "query-guard")]
    scope: std::collections::HashSet<(u16, u16, [u32; 3])>,
}

impl<'a> Oracle<'a> {
    /// Creates an unbounded oracle.
    pub fn new(classifier: &'a dyn Classifier) -> Self {
        Oracle {
            classifier,
            queries: 0,
            budget: None,
            batch: None,
            speculate: true,
            log: None,
            #[cfg(feature = "query-memo")]
            memo: None,
            memo_hits: 0,
            #[cfg(feature = "query-guard")]
            scope: std::collections::HashSet::new(),
        }
    }

    /// Creates an oracle that refuses queries beyond `budget`.
    pub fn with_budget(classifier: &'a dyn Classifier, budget: u64) -> Self {
        Oracle {
            classifier,
            queries: 0,
            budget: Some(budget),
            batch: None,
            speculate: true,
            log: None,
            #[cfg(feature = "query-memo")]
            memo: None,
            memo_hits: 0,
            #[cfg(feature = "query-guard")]
            scope: std::collections::HashSet::new(),
        }
    }

    /// Attaches a shared cross-restart memo: queries whose (image,
    /// candidate) pair is already memoized are served from the cache —
    /// bit-identical scores, **no** query counted, no budget consumed, no
    /// classifier invocation, no query-log entry. Fresh results are
    /// memoized after they are computed (and counted) normally.
    ///
    /// A memo hit succeeds even with the budget exhausted: the candidate
    /// was already paid for. Hits are reported via [`Oracle::memo_hits`]
    /// and the `memo_hit` telemetry counter, keeping the accounting
    /// honest — [`Oracle::queries`] remains the number of times the
    /// classifier was actually consulted at a counted site.
    ///
    /// Without the `query-memo` feature this is a no-op.
    #[allow(unused_mut, unused_variables)]
    pub fn with_memo(mut self, memo: &'a QueryMemo) -> Self {
        #[cfg(feature = "query-memo")]
        {
            self.memo = Some(memo);
        }
        self
    }

    /// Starts recording every counted query into an in-memory log,
    /// retrievable with [`Oracle::take_query_log`]. Each entry is recorded
    /// at *consume* time — where the query is counted — so the log is
    /// identical whether candidates are served sequentially, from a
    /// speculative prefetch, or through [`Oracle::query_batch`]: the
    /// byte-equivalence witness the scheduler tests compare per tenant.
    pub fn enable_query_log(&mut self) {
        if self.log.is_none() {
            self.log = Some(Vec::new());
        }
    }

    /// Takes the recorded query log, leaving an empty (still enabled) log
    /// behind. Empty if logging was never enabled.
    pub fn take_query_log(&mut self) -> Vec<QueryLogEntry> {
        match &mut self.log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Records one counted query when the log is enabled. `seq` is the
    /// query's 1-based ordinal ([`Oracle::queries`] after counting it).
    fn log_query(&mut self, seq: u64, pixel: Option<(Location, Pixel)>, scores: &[f32]) {
        if let Some(log) = &mut self.log {
            log.push(QueryLogEntry {
                seq,
                pixel: pixel.map(|(l, p)| (l.row, l.col, p.0.map(f32::to_bits))),
                pred: argmax(scores) as u32,
                score_hash: hash_scores(scores),
            });
        }
    }

    /// Disables speculative prefetching for this oracle: every
    /// [`Oracle::prefetch_pixel_batch`] becomes a no-op, so each candidate
    /// is evaluated sequentially at consume time. The per-oracle
    /// equivalent of the process-wide `OPPSLA_SEQUENTIAL` switch — used by
    /// tests that pin the exact order of classifier submissions, which
    /// speculation is free to change (consumption order and query
    /// accounting never differ).
    pub fn without_speculation(mut self) -> Self {
        self.speculate = false;
        self
    }

    /// Opens a fresh duplicate-detection scope for pixel-delta candidates
    /// (one sketch run over one base image). A no-op unless the
    /// `query-guard` feature is enabled, in which case scoring the same
    /// (location, pixel) candidate twice within a scope panics in debug
    /// builds — the sketch's removal discipline guarantees each candidate
    /// is queried at most once.
    pub fn begin_candidate_scope(&mut self) {
        #[cfg(feature = "query-guard")]
        self.scope.clear();
    }

    /// Submits an image, counting one query.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget has been spent; the
    /// failed attempt is *not* counted and the classifier is not invoked.
    pub fn query(&mut self, image: &Image) -> Result<Vec<f32>, BudgetExhausted> {
        let mut out = Vec::new();
        self.query_into(image, &mut out)?;
        Ok(out)
    }

    /// Submits an image, counting one query and writing the scores into
    /// `out` (cleared first). This is the attack loops' hot path: with an
    /// allocation-free classifier backend and a reused `out`, a query
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget has been spent; the
    /// failed attempt is *not* counted, the classifier is not invoked, and
    /// `out` is left untouched.
    pub fn query_into(&mut self, image: &Image, out: &mut Vec<f32>) -> Result<(), BudgetExhausted> {
        // Memo lookup comes before the budget check: a hit is not a
        // query — it consumes no budget and succeeds even when the
        // budget is spent.
        #[cfg(feature = "query-memo")]
        let memo_key = match self.memo {
            Some(memo) => {
                let key = (image_content_id(image), None);
                if memo.lookup_into(&key, out) {
                    self.memo_hits += 1;
                    crate::telemetry::count(crate::telemetry::Counter::MemoHit);
                    return Ok(());
                }
                Some(key)
            }
            None => None,
        };
        if let Some(budget) = self.budget {
            if self.queries >= budget {
                return Err(BudgetExhausted { budget });
            }
        }
        self.queries += 1;
        crate::telemetry::count(crate::telemetry::Counter::OracleQueryFull);
        crate::telemetry::trace::tag_route(crate::telemetry::trace::RouteTag::Full);
        self.classifier.scores_into(image, out);
        self.log_query(self.queries, None, out);
        #[cfg(feature = "query-memo")]
        if let (Some(memo), Some(key)) = (self.memo, memo_key) {
            memo.insert(key, out);
        }
        Ok(())
    }

    /// Submits `base` with one pixel replaced, counting one query. The
    /// allocating convenience form of [`Oracle::query_pixel_delta_into`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget has been spent.
    pub fn query_pixel_delta(
        &mut self,
        base: &Image,
        location: Location,
        pixel: Pixel,
    ) -> Result<Vec<f32>, BudgetExhausted> {
        let mut out = Vec::new();
        self.query_pixel_delta_into(base, location, pixel, &mut out)?;
        Ok(out)
    }

    /// Submits `base` with the pixel at `location` replaced by `pixel`,
    /// counting one query and writing the scores into `out` (cleared
    /// first). This is the sketch candidate loop's hot path: backends
    /// overriding [`Classifier::scores_pixel_delta_into`] serve it from
    /// cached base activations, recomputing only the dirty region.
    ///
    /// Counts and scores are identical to building the perturbed image
    /// and calling [`Oracle::query_into`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget has been spent; the
    /// failed attempt is *not* counted, the classifier is not invoked, and
    /// `out` is left untouched.
    ///
    /// # Panics
    ///
    /// With the `query-guard` feature enabled, panics in debug builds if
    /// the same (location, pixel) candidate is scored twice within one
    /// [`Oracle::begin_candidate_scope`] scope.
    pub fn query_pixel_delta_into(
        &mut self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) -> Result<(), BudgetExhausted> {
        // Memo lookup comes before the budget check and the duplicate
        // guard: a hit is not a query (no budget, no count, no
        // classifier), and re-requesting an already-paid-for candidate
        // is exactly what the memo exists to make free.
        #[cfg(feature = "query-memo")]
        let memo_key = match self.memo {
            Some(memo) => {
                let key = (
                    image_content_id(base),
                    Some((location.row, location.col, pixel.0.map(f32::to_bits))),
                );
                if memo.lookup_into(&key, out) {
                    self.memo_hits += 1;
                    crate::telemetry::count(crate::telemetry::Counter::MemoHit);
                    return Ok(());
                }
                Some(key)
            }
            None => None,
        };
        if let Some(budget) = self.budget {
            if self.queries >= budget {
                return Err(BudgetExhausted { budget });
            }
        }
        #[cfg(feature = "query-guard")]
        debug_assert!(
            self.scope
                .insert((location.row, location.col, pixel.0.map(f32::to_bits),)),
            "candidate (({}, {}), {:?}) scored twice in one sketch scope",
            location.row,
            location.col,
            pixel.0,
        );
        self.queries += 1;
        crate::telemetry::count(crate::telemetry::Counter::OracleQueryPixelDelta);
        // Default routing for the trace; overwritten below when a
        // speculative batch serves or misses. The incremental backend
        // adds the delta-cache tag when it actually runs.
        crate::telemetry::trace::tag_route(crate::telemetry::trace::RouteTag::Delta);

        // Serve from the speculative batch when it holds this exact
        // candidate against the same base, in *any* position — scores are
        // a pure function of (base, location, pixel) and the base never
        // changes within a run, so every unserved entry stays valid even
        // when the caller's consumption order diverges (e.g. an eager
        // program reordering its queue). A miss leaves the batch intact
        // for later queries; only a different base discards it. Either
        // way the accounting above already ran, and the batched backend is
        // bit-identical, so scores and counts cannot depend on the route.
        if let Some(batch) = &mut self.batch {
            if batch.base_addr == base as *const Image as usize {
                let key = (location, pixel.0.map(f32::to_bits));
                if let Some(pos) = batch.items.iter().position(|&(l, p, _)| (l, p) == key) {
                    let idx = batch.items.swap_remove(pos).2;
                    let classes = self.classifier.num_classes();
                    out.clear();
                    out.extend_from_slice(&batch.flat[idx * classes..(idx + 1) * classes]);
                    crate::telemetry::count(crate::telemetry::Counter::BatchHit);
                    crate::telemetry::trace::tag_route(crate::telemetry::trace::RouteTag::BatchHit);
                    if batch.items.is_empty() {
                        self.batch = None;
                    }
                    self.log_query(self.queries, Some((location, pixel)), out);
                    // Batch-served scores were computed (and just
                    // counted), so they are memoized like sequential ones.
                    #[cfg(feature = "query-memo")]
                    if let (Some(memo), Some(key)) = (self.memo, memo_key) {
                        memo.insert(key, out);
                    }
                    return Ok(());
                }
                crate::telemetry::count(crate::telemetry::Counter::BatchMiss);
                crate::telemetry::trace::tag_route(crate::telemetry::trace::RouteTag::BatchMiss);
            } else {
                crate::telemetry::count(crate::telemetry::Counter::BatchFlush);
                self.batch = None;
            }
        }
        self.classifier
            .scores_pixel_delta_into(base, location, pixel, out);
        self.log_query(self.queries, Some((location, pixel)), out);
        #[cfg(feature = "query-memo")]
        if let (Some(memo), Some(key)) = (self.memo, memo_key) {
            memo.insert(key, out);
        }
        Ok(())
    }

    /// Speculatively evaluates up to `candidates.len()` one-pixel
    /// candidates against `base` in one batched classifier call,
    /// **without counting any queries**. Subsequent
    /// [`Oracle::query_pixel_delta_into`] calls against the same base are
    /// served from the cached scores whenever the candidate is still in
    /// the batch (in any position — consumption order is free to diverge
    /// from prefetch order), each with the full sequential accounting
    /// (budget check, duplicate guard, query count) at consume time. A
    /// query for a candidate *not* in the batch runs sequentially and
    /// leaves the batch intact; querying against a different base image
    /// discards it. Callers whose speculation went stale (e.g. a
    /// stochastic attack accepting a proposal, changing every upcoming
    /// candidate) simply prefetch again — the pending batch is replaced
    /// (counted as a flush).
    ///
    /// This protocol keeps query counts *identical* to the sequential
    /// path by construction: speculation changes only *when* the
    /// classifier computes a score, never whether a query is counted —
    /// candidates the caller never consumes (early exits) are computed
    /// but not counted, exactly as if they were never queried. And
    /// because a batch entry is evaluated once and served at most once,
    /// callers that consume every prefetched candidate (the sketch's
    /// removal discipline) submit each candidate to the classifier
    /// exactly once, reorderings included.
    ///
    /// The batch is clamped to the remaining budget, so a prefetched
    /// candidate can always be consumed. A no-op when the
    /// `OPPSLA_SEQUENTIAL` environment variable is set — the A/B switch
    /// for verifying batched-vs-sequential equivalence.
    pub fn prefetch_pixel_batch(&mut self, base: &Image, candidates: &[(Location, Pixel)]) {
        if !self.speculate || sequential_only() {
            return;
        }
        let remaining = self
            .budget
            .map_or(u64::MAX, |b| b.saturating_sub(self.queries));
        let n = (candidates.len() as u64).min(remaining) as usize;
        // Reuse the previous batch's buffers when possible.
        let mut batch = match self.batch.take() {
            Some(mut b) => {
                crate::telemetry::count(crate::telemetry::Counter::BatchFlush);
                b.items.clear();
                b.flat.clear();
                b
            }
            None => PixelBatch {
                base_addr: 0,
                items: Vec::new(),
                flat: Vec::new(),
            },
        };
        if n == 0 {
            return;
        }
        crate::telemetry::count(crate::telemetry::Counter::BatchPrefetch);
        crate::telemetry::count_n(crate::telemetry::Counter::BatchPrefetched, n as u64);
        self.classifier
            .scores_pixel_delta_batch_into(base, &candidates[..n], &mut batch.flat);
        assert_eq!(
            batch.flat.len(),
            n * self.classifier.num_classes(),
            "batched backend returned a wrong-size score block"
        );
        batch.base_addr = base as *const Image as usize;
        batch.items.extend(
            candidates[..n]
                .iter()
                .enumerate()
                .map(|(i, &(l, p))| (l, p.0.map(f32::to_bits), i)),
        );
        self.batch = Some(batch);
    }

    /// True when a prefetched batch is still pending consumption. Callers
    /// that prefetch in chunks re-arm when this goes false.
    pub fn has_prefetched(&self) -> bool {
        self.batch.as_ref().is_some_and(|b| !b.items.is_empty())
    }

    /// Scores the first `min(candidates.len(), remaining budget)`
    /// candidates through the batched classifier path, counting each as
    /// one query with the same per-candidate accounting as a sequential
    /// [`Oracle::query_pixel_delta_into`] loop (duplicate guard, query
    /// count, telemetry). Appends `num_classes` scores per scored
    /// candidate to `out` (cleared first) and returns how many were
    /// scored — fewer than requested exactly when the budget ran out
    /// mid-batch, matching where the sequential loop would have stopped.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget is already spent
    /// before the first candidate (nothing is scored, `out` is cleared).
    ///
    /// # Panics
    ///
    /// With the `query-guard` feature enabled, panics in debug builds on
    /// a duplicate candidate within one scope, like the sequential path.
    pub fn query_batch(
        &mut self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) -> Result<usize, BudgetExhausted> {
        // With a memo attached the batch degenerates to the sequential
        // loop so each candidate gets the memo lookup/insert (scores are
        // bit-identical either way). Memo hits consume no budget, so the
        // upfront clamp below would be wrong here: the loop itself stops
        // exactly where the budget actually runs out.
        #[cfg(feature = "query-memo")]
        if self.memo.is_some() {
            out.clear();
            let mut buf = Vec::new();
            let mut served = 0;
            for &(location, pixel) in candidates {
                match self.query_pixel_delta_into(base, location, pixel, &mut buf) {
                    Ok(()) => {
                        out.extend_from_slice(&buf);
                        served += 1;
                    }
                    Err(err) if served == 0 => return Err(err),
                    Err(_) => break,
                }
            }
            return Ok(served);
        }
        let remaining = self
            .budget
            .map_or(u64::MAX, |b| b.saturating_sub(self.queries));
        if remaining == 0 && !candidates.is_empty() {
            return Err(BudgetExhausted {
                budget: self.budget.expect("zero remaining implies a budget"),
            });
        }
        let n = (candidates.len() as u64).min(remaining) as usize;
        for _item in &candidates[..n] {
            #[cfg(feature = "query-guard")]
            debug_assert!(
                self.scope
                    .insert((_item.0.row, _item.0.col, _item.1 .0.map(f32::to_bits))),
                "candidate (({}, {}), {:?}) scored twice in one sketch scope",
                _item.0.row,
                _item.0.col,
                _item.1 .0,
            );
            self.queries += 1;
            crate::telemetry::count(crate::telemetry::Counter::OracleQueryPixelDelta);
        }
        crate::telemetry::trace::tag_route(crate::telemetry::trace::RouteTag::Batch);
        self.classifier
            .scores_pixel_delta_batch_into(base, &candidates[..n], out);
        if self.log.is_some() {
            // Per-candidate entries, exactly as the sequential loop would
            // have recorded them: candidate i was query (queries - n + 1 + i).
            let classes = self.classifier.num_classes();
            let first_seq = self.queries - n as u64 + 1;
            for (i, &(location, pixel)) in candidates[..n].iter().enumerate() {
                let scores = &out[i * classes..(i + 1) * classes];
                self.log_query(first_seq + i as u64, Some((location, pixel)), scores);
            }
        }
        Ok(n)
    }

    /// The number of queries issued so far. Memo hits are never
    /// included: this is the number of times the classifier was
    /// consulted at a counted site.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The number of queries served from the attached memo (0 without
    /// one, and always 0 without the `query-memo` feature). Counted
    /// separately from [`Oracle::queries`] on purpose: a hit is not an
    /// oracle query.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// The remaining budget, if one is set.
    pub fn remaining(&self) -> Option<u64> {
        self.budget.map(|b| b.saturating_sub(self.queries))
    }

    /// The number of classes of the wrapped classifier.
    pub fn num_classes(&self) -> usize {
        self.classifier.num_classes()
    }
}

impl fmt::Debug for Oracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oracle")
            .field("queries", &self.queries)
            .field("budget", &self.budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::Pixel;

    fn constant_classifier() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(3, |_: &Image| vec![0.1, 0.7, 0.2])
    }

    #[test]
    fn oracle_counts_queries() {
        let clf = constant_classifier();
        let mut oracle = Oracle::new(&clf);
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        for expected in 1..=5 {
            oracle.query(&img).unwrap();
            assert_eq!(oracle.queries(), expected);
        }
        assert_eq!(oracle.remaining(), None);
    }

    #[test]
    fn budget_is_enforced_exactly() {
        let clf = constant_classifier();
        let mut oracle = Oracle::with_budget(&clf, 3);
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        assert_eq!(oracle.remaining(), Some(3));
        for _ in 0..3 {
            oracle.query(&img).unwrap();
        }
        let err = oracle.query(&img).unwrap_err();
        assert_eq!(err, BudgetExhausted { budget: 3 });
        assert_eq!(oracle.queries(), 3, "failed attempt not counted");
        assert_eq!(oracle.remaining(), Some(0));
    }

    #[test]
    fn classify_is_argmax_of_scores() {
        let clf = constant_classifier();
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        assert_eq!(clf.classify(&img), 1);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        assert_eq!(argmax(&[0.5, 0.5, 0.1]), 0);
    }

    #[test]
    fn argmax_never_defaults_to_class_zero_on_nan() {
        // Regression: the old `>`-based scan returned 0 whenever
        // `scores[0]` was NaN (every comparison against NaN is false).
        // Under the total order a NaN sorts above every number, so the
        // debug assertion aside, the selection is at least well-defined:
        // the first NaN wins. Exercise a NaN in each position.
        for nan_at in 0..4 {
            let mut scores = [0.1f32, 0.7, 0.2, 0.4];
            scores[nan_at] = f32::NAN;
            let result = std::panic::catch_unwind(move || argmax(&scores));
            if cfg!(debug_assertions) {
                assert!(
                    result.is_err(),
                    "NaN at {nan_at} must trip the debug assert"
                );
            } else {
                assert_eq!(result.unwrap(), nan_at, "first NaN wins under total_cmp");
            }
        }
    }

    #[test]
    fn argmax_handles_negative_and_zero_scores() {
        assert_eq!(argmax(&[-0.5, -0.1, -0.9]), 1);
        assert_eq!(argmax(&[0.0, 0.0]), 0);
        assert_eq!(argmax(&[f32::MIN, f32::MAX]), 1);
    }

    #[test]
    #[should_panic(expected = "score vector length")]
    fn fn_classifier_rejects_wrong_length_scores() {
        // Must be a hard assert: `debug_assert_eq!` alone let release
        // builds feed a wrong-length vector into argmax/margin.
        let clf = FnClassifier::new(3, |_: &Image| vec![0.5, 0.5]);
        let _ = clf.scores(&Image::filled(2, 2, Pixel([0.0; 3])));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn fn_classifier_rejects_single_class() {
        let _ = FnClassifier::new(1, |_: &Image| vec![1.0]);
    }

    #[test]
    fn query_into_matches_query_and_counts_identically() {
        let clf = constant_classifier();
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        let mut a = Oracle::new(&clf);
        let mut b = Oracle::new(&clf);
        let mut buf = vec![9.0, 9.0]; // stale content must be replaced
        b.query_into(&img, &mut buf).unwrap();
        assert_eq!(a.query(&img).unwrap(), buf);
        assert_eq!(a.queries(), b.queries());
    }

    #[test]
    fn query_into_budget_failure_leaves_buffer_untouched() {
        let clf = constant_classifier();
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        let mut oracle = Oracle::with_budget(&clf, 0);
        let mut buf = vec![0.5];
        assert!(oracle.query_into(&img, &mut buf).is_err());
        assert_eq!(buf, vec![0.5]);
        assert_eq!(oracle.queries(), 0);
    }

    #[test]
    fn pixel_delta_query_matches_full_query_on_the_perturbed_image() {
        // Score-sensitive classifier so the perturbation actually matters.
        let clf = FnClassifier::new(2, |img: &Image| {
            let mean: f32 = img.data().iter().sum::<f32>() / img.data().len() as f32;
            vec![mean, 1.0 - mean]
        });
        let base = Image::filled(3, 3, Pixel([0.2; 3]));
        let loc = crate::pair::Location::new(1, 2);
        let px = Pixel([0.9, 0.1, 0.4]);
        let mut a = Oracle::new(&clf);
        let mut b = Oracle::new(&clf);
        let delta = a.query_pixel_delta(&base, loc, px).unwrap();
        let full = b.query(&base.with_pixel(loc, px)).unwrap();
        assert_eq!(delta, full);
        assert_eq!(a.queries(), b.queries());
    }

    #[test]
    fn pixel_delta_budget_failure_is_not_counted() {
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.0; 3]));
        let mut oracle = Oracle::with_budget(&clf, 0);
        let mut buf = vec![0.5];
        let loc = crate::pair::Location::new(0, 0);
        assert!(oracle
            .query_pixel_delta_into(&base, loc, Pixel([1.0; 3]), &mut buf)
            .is_err());
        assert_eq!(buf, vec![0.5]);
        assert_eq!(oracle.queries(), 0);
    }

    #[cfg(all(feature = "query-guard", debug_assertions))]
    #[test]
    #[should_panic(expected = "scored twice")]
    fn guard_catches_duplicate_candidates_in_one_scope() {
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.0; 3]));
        let loc = crate::pair::Location::new(1, 0);
        let px = Pixel([1.0, 0.0, 1.0]);
        let mut oracle = Oracle::new(&clf);
        oracle.begin_candidate_scope();
        oracle.query_pixel_delta(&base, loc, px).unwrap();
        oracle.query_pixel_delta(&base, loc, px).unwrap();
    }

    #[cfg(feature = "query-guard")]
    #[test]
    fn guard_scope_reset_permits_requerying() {
        // The same candidate across two sketch runs (scopes) is fine.
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.0; 3]));
        let loc = crate::pair::Location::new(1, 0);
        let px = Pixel([1.0, 0.0, 1.0]);
        let mut oracle = Oracle::new(&clf);
        oracle.begin_candidate_scope();
        oracle.query_pixel_delta(&base, loc, px).unwrap();
        oracle.begin_candidate_scope();
        oracle.query_pixel_delta(&base, loc, px).unwrap();
        assert_eq!(oracle.queries(), 2);
    }

    /// A classifier whose scores depend on the perturbed pixel, plus a
    /// call counter so tests can see *when* it actually computes.
    fn counting_mean_classifier(
        calls: &std::cell::Cell<u32>,
    ) -> FnClassifier<impl Fn(&Image) -> Vec<f32> + '_> {
        FnClassifier::new(2, move |img: &Image| {
            calls.set(calls.get() + 1);
            let mean: f32 = img.data().iter().sum::<f32>() / img.data().len() as f32;
            vec![mean, 1.0 - mean]
        })
    }

    fn some_candidates(n: usize) -> Vec<(Location, Pixel)> {
        (0..n)
            .map(|i| {
                (
                    Location::new((i / 3) as u16, (i % 3) as u16),
                    Pixel([i as f32 * 0.1, 0.5, 1.0 - i as f32 * 0.1]),
                )
            })
            .collect()
    }

    #[test]
    fn prefetched_queries_match_sequential_scores_and_counts() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.2; 3]));
        let candidates = some_candidates(5);

        let mut seq = Oracle::new(&clf);
        let mut seq_scores = Vec::new();
        for &(loc, px) in &candidates {
            seq_scores.push(seq.query_pixel_delta(&base, loc, px).unwrap());
        }

        let mut spec = Oracle::new(&clf);
        spec.prefetch_pixel_batch(&base, &candidates);
        assert!(spec.has_prefetched());
        assert_eq!(spec.queries(), 0, "prefetching must not count queries");
        let mut buf = Vec::new();
        for (i, &(loc, px)) in candidates.iter().enumerate() {
            spec.query_pixel_delta_into(&base, loc, px, &mut buf)
                .unwrap();
            assert_eq!(buf, seq_scores[i], "candidate {i} diverged");
            assert_eq!(spec.queries(), (i + 1) as u64);
        }
        assert!(!spec.has_prefetched(), "batch fully consumed");
        assert_eq!(seq.queries(), spec.queries());
    }

    #[test]
    fn consuming_the_batch_does_not_reinvoke_the_classifier() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.4; 3]));
        let candidates = some_candidates(4);
        let mut oracle = Oracle::new(&clf);
        oracle.prefetch_pixel_batch(&base, &candidates);
        let after_prefetch = calls.get();
        let mut buf = Vec::new();
        for &(loc, px) in &candidates {
            oracle
                .query_pixel_delta_into(&base, loc, px, &mut buf)
                .unwrap();
        }
        assert_eq!(
            calls.get(),
            after_prefetch,
            "batch hits must be served from cache"
        );
    }

    #[test]
    fn batch_serves_candidates_in_any_order() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.3; 3]));
        let candidates = some_candidates(4);
        let mut oracle = Oracle::new(&clf);
        oracle.prefetch_pixel_batch(&base, &candidates);
        let after_prefetch = calls.get();

        // Consume in reversed order: every query is still a batch hit.
        let mut got = Vec::new();
        let mut seq = Oracle::new(&clf);
        for &(loc, px) in candidates.iter().rev() {
            oracle
                .query_pixel_delta_into(&base, loc, px, &mut got)
                .unwrap();
            assert_eq!(got, seq.query_pixel_delta(&base, loc, px).unwrap());
        }
        assert_eq!(
            calls.get() - after_prefetch,
            candidates.len() as u32,
            "only the sequential reference oracle recomputed"
        );
        assert!(!oracle.has_prefetched(), "batch fully consumed");
        assert_eq!(oracle.queries(), candidates.len() as u64);
    }

    #[test]
    fn missing_the_batch_falls_back_but_keeps_it() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.3; 3]));
        let candidates = some_candidates(4);
        let mut oracle = Oracle::new(&clf);
        oracle.prefetch_pixel_batch(&base, &candidates);
        let after_prefetch = calls.get();

        // An outside candidate runs sequentially without discarding the
        // pending batch...
        let outside = (Location::new(2, 2), Pixel([0.9, 0.9, 0.9]));
        let mut got = Vec::new();
        oracle
            .query_pixel_delta_into(&base, outside.0, outside.1, &mut got)
            .unwrap();
        assert_eq!(
            calls.get(),
            after_prefetch + 1,
            "miss evaluates sequentially"
        );
        assert!(oracle.has_prefetched(), "a miss keeps the batch");

        // ...and the batched entries still serve from cache afterwards.
        for &(loc, px) in &candidates {
            oracle
                .query_pixel_delta_into(&base, loc, px, &mut got)
                .unwrap();
        }
        assert_eq!(calls.get(), after_prefetch + 1, "hits served from cache");
        assert_eq!(oracle.queries(), 1 + candidates.len() as u64);
    }

    #[test]
    fn querying_a_different_base_flushes_the_batch() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.3; 3]));
        let other = Image::filled(3, 3, Pixel([0.6; 3]));
        let candidates = some_candidates(3);
        let mut oracle = Oracle::new(&clf);
        oracle.prefetch_pixel_batch(&base, &candidates);

        let (loc, px) = candidates[0];
        let mut got = Vec::new();
        oracle
            .query_pixel_delta_into(&other, loc, px, &mut got)
            .unwrap();
        assert!(!oracle.has_prefetched(), "a new base discards the batch");

        let mut seq = Oracle::new(&clf);
        assert_eq!(got, seq.query_pixel_delta(&other, loc, px).unwrap());
    }

    #[test]
    fn prefetch_is_clamped_to_the_remaining_budget() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.1; 3]));
        let candidates = some_candidates(6);
        let mut oracle = Oracle::with_budget(&clf, 2);
        oracle.prefetch_pixel_batch(&base, &candidates);
        let mut buf = Vec::new();
        for &(loc, px) in &candidates[..2] {
            oracle
                .query_pixel_delta_into(&base, loc, px, &mut buf)
                .unwrap();
        }
        assert!(!oracle.has_prefetched(), "only 2 of 6 fit the budget");
        let (loc, px) = candidates[2];
        assert!(oracle
            .query_pixel_delta_into(&base, loc, px, &mut buf)
            .is_err());
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn prefetch_with_exhausted_budget_is_inert() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.1; 3]));
        let mut oracle = Oracle::with_budget(&clf, 0);
        oracle.prefetch_pixel_batch(&base, &some_candidates(3));
        assert!(!oracle.has_prefetched());
        assert_eq!(calls.get(), 0, "no budget, no speculative evaluation");
    }

    #[test]
    fn query_batch_matches_sequential_scores_and_counts() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.25; 3]));
        let candidates = some_candidates(5);

        let mut seq = Oracle::new(&clf);
        let mut want = Vec::new();
        for &(loc, px) in &candidates {
            want.extend(seq.query_pixel_delta(&base, loc, px).unwrap());
        }

        let mut batched = Oracle::new(&clf);
        let mut got = Vec::new();
        let n = batched.query_batch(&base, &candidates, &mut got).unwrap();
        assert_eq!(n, candidates.len());
        assert_eq!(got, want);
        assert_eq!(batched.queries(), seq.queries());
    }

    #[test]
    fn query_batch_stops_where_the_sequential_loop_would() {
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.25; 3]));
        let candidates = some_candidates(5);
        let mut oracle = Oracle::with_budget(&clf, 3);
        let mut got = Vec::new();
        let n = oracle.query_batch(&base, &candidates, &mut got).unwrap();
        assert_eq!(n, 3, "budget of 3 scores exactly 3 of 5");
        assert_eq!(got.len(), 3 * 2);
        assert_eq!(oracle.queries(), 3);
        let err = oracle
            .query_batch(&base, &candidates[3..], &mut got)
            .unwrap_err();
        assert_eq!(err, BudgetExhausted { budget: 3 });
    }

    #[cfg(all(feature = "query-guard", debug_assertions))]
    #[test]
    #[should_panic(expected = "scored twice")]
    fn guard_catches_duplicates_served_from_a_prefetched_batch() {
        // Consuming from the speculative batch must run the same
        // duplicate guard as the sequential path.
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.0; 3]));
        let loc = crate::pair::Location::new(1, 0);
        let px = Pixel([1.0, 0.0, 1.0]);
        let mut oracle = Oracle::new(&clf);
        oracle.begin_candidate_scope();
        oracle.query_pixel_delta(&base, loc, px).unwrap();
        // Re-prefetch the same candidate: the consume (a batch hit) must
        // still trip the guard.
        oracle.prefetch_pixel_batch(&base, &[(loc, px)]);
        oracle.query_pixel_delta(&base, loc, px).unwrap();
    }

    #[test]
    fn query_log_is_identical_across_serving_routes() {
        // The log is recorded at the counted consume sites, so the same
        // query stream yields byte-equal logs whether it is served
        // sequentially, from a speculative prefetch, or via query_batch —
        // the witness the scheduler equivalence tests compare per tenant.
        let calls = std::cell::Cell::new(0);
        let clf = counting_mean_classifier(&calls);
        let base = Image::filled(3, 3, Pixel([0.35; 3]));
        let candidates = some_candidates(5);

        let mut seq = Oracle::new(&clf);
        seq.enable_query_log();
        let mut buf = Vec::new();
        for &(loc, px) in &candidates {
            seq.query_pixel_delta_into(&base, loc, px, &mut buf)
                .unwrap();
        }
        let want = seq.take_query_log();
        assert_eq!(want.len(), candidates.len());
        assert_eq!(want[0].seq, 1, "seq is the 1-based query ordinal");
        assert_eq!(want[4].seq, 5);
        assert!(want.iter().all(|e| e.pixel.is_some()));

        let mut spec = Oracle::new(&clf);
        spec.enable_query_log();
        spec.prefetch_pixel_batch(&base, &candidates);
        assert!(spec.take_query_log().is_empty(), "prefetching logs nothing");
        for &(loc, px) in &candidates {
            spec.query_pixel_delta_into(&base, loc, px, &mut buf)
                .unwrap();
        }
        assert_eq!(spec.take_query_log(), want, "prefetched route diverged");

        let mut batched = Oracle::new(&clf);
        batched.enable_query_log();
        batched.query_batch(&base, &candidates, &mut buf).unwrap();
        assert_eq!(batched.take_query_log(), want, "query_batch diverged");
    }

    #[test]
    fn query_log_distinguishes_full_queries_and_resumes_after_take() {
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.1; 3]));
        let mut oracle = Oracle::new(&clf);
        oracle.enable_query_log();
        oracle.query(&base).unwrap();
        let log = oracle.take_query_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].pixel, None, "full query logs no pixel");
        assert_eq!(log[0].pred, 1, "argmax of [0.1, 0.7, 0.2]");

        // The log stays enabled after take, and seq keeps counting.
        let loc = crate::pair::Location::new(1, 1);
        let px = Pixel([0.5, 0.6, 0.7]);
        oracle.query_pixel_delta(&base, loc, px).unwrap();
        let log = oracle.take_query_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].seq, 2);
        assert_eq!(log[0].pixel, Some((1, 1, px.0.map(f32::to_bits))));
    }

    #[test]
    fn disabled_query_log_records_nothing() {
        let clf = constant_classifier();
        let base = Image::filled(2, 2, Pixel([0.1; 3]));
        let mut oracle = Oracle::new(&clf);
        oracle.query(&base).unwrap();
        assert!(oracle.take_query_log().is_empty());
    }

    #[cfg(feature = "query-memo")]
    mod memo {
        use super::*;

        #[test]
        fn repeat_candidates_are_served_free_and_uncounted() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.2; 3]));
            let candidates = some_candidates(4);
            let memo = QueryMemo::new();

            // First restart pays for everything.
            let mut first = Oracle::new(&clf).with_memo(&memo);
            let mut want = Vec::new();
            let mut buf = Vec::new();
            for &(loc, px) in &candidates {
                first
                    .query_pixel_delta_into(&base, loc, px, &mut buf)
                    .unwrap();
                want.push(buf.clone());
            }
            assert_eq!(first.queries(), 4);
            assert_eq!(first.memo_hits(), 0);
            let paid = calls.get();

            // Second restart over the same candidates pays for nothing
            // and sees bit-identical scores.
            let mut second = Oracle::new(&clf).with_memo(&memo);
            for (i, &(loc, px)) in candidates.iter().enumerate() {
                second
                    .query_pixel_delta_into(&base, loc, px, &mut buf)
                    .unwrap();
                assert_eq!(buf, want[i], "memoized scores diverged");
            }
            assert_eq!(second.queries(), 0, "hits are not oracle queries");
            assert_eq!(second.memo_hits(), 4);
            assert_eq!(calls.get(), paid, "hits never touch the classifier");
        }

        #[test]
        fn full_image_queries_are_memoized_too() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.6; 3]));
            let memo = QueryMemo::new();
            let mut a = Oracle::new(&clf).with_memo(&memo);
            let want = a.query(&base).unwrap();
            let mut b = Oracle::new(&clf).with_memo(&memo);
            assert_eq!(b.query(&base).unwrap(), want);
            assert_eq!(b.queries(), 0);
            assert_eq!(b.memo_hits(), 1);
            assert_eq!(calls.get(), 1);
        }

        #[test]
        fn memo_hits_bypass_an_exhausted_budget() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.2; 3]));
            let (loc, px) = some_candidates(1)[0];
            let memo = QueryMemo::new();
            let mut warm = Oracle::new(&clf).with_memo(&memo);
            warm.query_pixel_delta(&base, loc, px).unwrap();

            let mut broke = Oracle::with_budget(&clf, 0).with_memo(&memo);
            let mut buf = Vec::new();
            broke
                .query_pixel_delta_into(&base, loc, px, &mut buf)
                .expect("already paid for: served despite the spent budget");
            assert_eq!(broke.queries(), 0);
            assert_eq!(broke.memo_hits(), 1);
            // A fresh candidate still hits the budget wall.
            let (loc2, px2) = some_candidates(2)[1];
            assert!(broke
                .query_pixel_delta_into(&base, loc2, px2, &mut buf)
                .is_err());
        }

        #[test]
        fn memo_distinguishes_images_pixels_and_perturbations() {
            let clf = FnClassifier::new(2, |img: &Image| {
                let mean: f32 = img.data().iter().sum::<f32>() / img.data().len() as f32;
                vec![mean, 1.0 - mean]
            });
            let base_a = Image::filled(3, 3, Pixel([0.2; 3]));
            let base_b = Image::filled(3, 3, Pixel([0.3; 3]));
            let memo = QueryMemo::new();
            let mut oracle = Oracle::new(&clf).with_memo(&memo);
            let loc = Location::new(1, 1);
            let px = Pixel([0.9, 0.1, 0.4]);
            // Like the stochastic attacks, open a fresh guard scope per
            // proposal: re-requesting a candidate across scopes is legal.
            oracle.begin_candidate_scope();
            oracle.query_pixel_delta(&base_a, loc, px).unwrap();
            // Different base image, different location, different colour:
            // all misses (each costs a counted query).
            oracle.begin_candidate_scope();
            oracle.query_pixel_delta(&base_b, loc, px).unwrap();
            oracle.begin_candidate_scope();
            oracle
                .query_pixel_delta(&base_a, Location::new(0, 1), px)
                .unwrap();
            oracle.begin_candidate_scope();
            oracle
                .query_pixel_delta(&base_a, loc, Pixel([0.9, 0.1, 0.5]))
                .unwrap();
            assert_eq!(oracle.queries(), 4);
            assert_eq!(oracle.memo_hits(), 0);
            assert_eq!(memo.len(), 4);
        }

        #[test]
        fn eviction_is_deterministic_and_capped() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.2; 3]));
            let candidates = some_candidates(5);
            let memo = QueryMemo::with_capacity(2);
            let mut oracle = Oracle::new(&clf).with_memo(&memo);
            let mut buf = Vec::new();
            for &(loc, px) in &candidates[..3] {
                oracle.begin_candidate_scope();
                oracle
                    .query_pixel_delta_into(&base, loc, px, &mut buf)
                    .unwrap();
            }
            assert_eq!(memo.len(), 2, "cap holds");
            // Candidate 0 (the oldest) was evicted: it costs a query
            // again. Candidate 2 is still cached.
            let before = oracle.queries();
            oracle.begin_candidate_scope();
            oracle
                .query_pixel_delta_into(&base, candidates[2].0, candidates[2].1, &mut buf)
                .unwrap();
            assert_eq!(oracle.queries(), before, "newest entry still cached");
            oracle
                .query_pixel_delta_into(&base, candidates[0].0, candidates[0].1, &mut buf)
                .unwrap();
            assert_eq!(oracle.queries(), before + 1, "oldest entry was evicted");
        }

        #[test]
        fn batch_served_scores_are_memoized() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.4; 3]));
            let candidates = some_candidates(3);
            let memo = QueryMemo::new();
            let mut warm = Oracle::new(&clf).with_memo(&memo);
            warm.prefetch_pixel_batch(&base, &candidates);
            let mut buf = Vec::new();
            for &(loc, px) in &candidates {
                warm.query_pixel_delta_into(&base, loc, px, &mut buf)
                    .unwrap();
            }
            assert_eq!(memo.len(), candidates.len());
            let mut cold = Oracle::new(&clf).with_memo(&memo);
            for &(loc, px) in &candidates {
                cold.query_pixel_delta_into(&base, loc, px, &mut buf)
                    .unwrap();
            }
            assert_eq!(cold.queries(), 0);
            assert_eq!(cold.memo_hits(), candidates.len() as u64);
        }

        #[test]
        fn query_batch_serves_memo_hits_without_counting() {
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(3, 3, Pixel([0.25; 3]));
            let candidates = some_candidates(4);
            let memo = QueryMemo::new();
            let mut warm = Oracle::new(&clf).with_memo(&memo);
            let mut want = Vec::new();
            warm.query_batch(&base, &candidates, &mut want).unwrap();
            assert_eq!(warm.queries(), 4);

            let mut cold = Oracle::new(&clf).with_memo(&memo);
            let mut got = Vec::new();
            let n = cold.query_batch(&base, &candidates, &mut got).unwrap();
            assert_eq!(n, 4, "every candidate served");
            assert_eq!(got, want, "memoized batch scores diverged");
            assert_eq!(cold.queries(), 0);
            assert_eq!(cold.memo_hits(), 4);
        }

        #[test]
        fn memo_on_scores_equal_memo_off_and_counts_never_exceed() {
            // The equivalence A/B contract: an attached memo can lower
            // counted queries, never change a score.
            let calls = std::cell::Cell::new(0);
            let clf = counting_mean_classifier(&calls);
            let base = Image::filled(4, 4, Pixel([0.3; 3]));
            let candidates: Vec<_> = some_candidates(6)
                .into_iter()
                .cycle()
                .take(18) // each candidate requested three times
                .collect();
            let memo = QueryMemo::new();
            let mut off = Oracle::new(&clf);
            let mut on = Oracle::new(&clf).with_memo(&memo);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for &(loc, px) in &candidates {
                off.begin_candidate_scope();
                on.begin_candidate_scope();
                off.query_pixel_delta_into(&base, loc, px, &mut a).unwrap();
                on.query_pixel_delta_into(&base, loc, px, &mut b).unwrap();
                assert_eq!(a, b, "memo changed a score");
            }
            assert_eq!(off.queries(), 18);
            assert_eq!(on.queries(), 6, "only first sightings are paid");
            assert_eq!(on.memo_hits(), 12);
            assert!(on.queries() <= off.queries());
        }

        #[test]
        fn image_content_id_is_content_not_address() {
            let a = Image::filled(3, 3, Pixel([0.2; 3]));
            let b = Image::filled(3, 3, Pixel([0.2; 3]));
            let c = Image::filled(3, 3, Pixel([0.3; 3]));
            assert_eq!(image_content_id(&a), image_content_id(&b));
            assert_ne!(image_content_id(&a), image_content_id(&c));
            // Same data, different geometry.
            let wide = Image::filled(1, 9, Pixel([0.2; 3]));
            assert_ne!(image_content_id(&a), image_content_id(&wide));
        }

        #[test]
        fn memo_hits_are_not_logged() {
            let clf = constant_classifier();
            let base = Image::filled(2, 2, Pixel([0.1; 3]));
            let (loc, px) = (Location::new(0, 1), Pixel([0.9, 0.2, 0.3]));
            let memo = QueryMemo::new();
            let mut warm = Oracle::new(&clf).with_memo(&memo);
            warm.enable_query_log();
            warm.query_pixel_delta(&base, loc, px).unwrap();
            assert_eq!(warm.take_query_log().len(), 1);
            warm.query_pixel_delta(&base, loc, px).unwrap();
            assert!(
                warm.take_query_log().is_empty(),
                "a memo hit is not a counted query, so it must not be logged"
            );
        }
    }

    #[test]
    fn shared_session_forwards_to_the_classifier() {
        let clf = constant_classifier();
        let session = clf.session();
        let img = Image::filled(2, 2, Pixel([0.0; 3]));
        assert_eq!(session.num_classes(), 3);
        assert_eq!(session.scores(&img), clf.scores(&img));
        let mut buf = Vec::new();
        session.scores_into(&img, &mut buf);
        assert_eq!(buf, clf.scores(&img));
    }
}
