//! Locations, pixels, RGB-cube corners and location–perturbation pairs —
//! the candidate space of the one-pixel attack, together with the two
//! distance metrics the sketch is built on (Section 3.1 of the paper).

use std::fmt;

/// A pixel location `(row, col)` in an image (`l = (i, j)` in the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Location {
    /// Row index (`i`).
    pub row: u16,
    /// Column index (`j`).
    pub col: u16,
}

impl Location {
    /// Creates a location.
    pub fn new(row: u16, col: u16) -> Self {
        Location { row, col }
    }

    /// The paper's location distance: `L∞` (`max(|i₁−i₂|, |j₁−j₂|)`).
    pub fn distance(self, other: Location) -> u16 {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// The up-to-eight locations at `L∞` distance exactly 1, within a
    /// `height × width` grid.
    pub fn neighbors(self, height: usize, width: usize) -> impl Iterator<Item = Location> {
        let (row, col) = (self.row as i32, self.col as i32);
        let (h, w) = (height as i32, width as i32);
        DELTAS.iter().filter_map(move |&(dr, dc)| {
            let (nr, nc) = (row + dr, col + dc);
            (nr >= 0 && nr < h && nc >= 0 && nc < w).then(|| Location::new(nr as u16, nc as u16))
        })
    }
}

const DELTAS: [(i32, i32); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// An RGB pixel value in `[0, 1]³`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pixel(pub [f32; 3]);

impl Pixel {
    /// The paper's pixel distance: `L₁`
    /// (`|r₁−r₂| + |g₁−g₂| + |b₁−b₂|`).
    pub fn distance(self, other: Pixel) -> f32 {
        (self.0[0] - other.0[0]).abs()
            + (self.0[1] - other.0[1]).abs()
            + (self.0[2] - other.0[2]).abs()
    }

    /// Maximum channel value.
    pub fn max_channel(self) -> f32 {
        self.0[0].max(self.0[1]).max(self.0[2])
    }

    /// Minimum channel value.
    pub fn min_channel(self) -> f32 {
        self.0[0].min(self.0[1]).min(self.0[2])
    }

    /// Mean channel value.
    pub fn avg_channel(self) -> f32 {
        (self.0[0] + self.0[1] + self.0[2]) / 3.0
    }
}

impl fmt::Display for Pixel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}, {:.2})", self.0[0], self.0[1], self.0[2])
    }
}

/// One of the eight corners of the RGB colour cube, `S = {0, 1}³`.
///
/// Sparse-RS observed (and this paper adopts) that almost all successful
/// one-pixel perturbations use a cube corner, shrinking the candidate space
/// to `8 · d₁ · d₂`. The index encodes the channels bitwise: bit 2 = red,
/// bit 1 = green, bit 0 = blue.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Corner(u8);

impl Corner {
    /// All eight corners, in index order.
    pub const ALL: [Corner; 8] = [
        Corner(0),
        Corner(1),
        Corner(2),
        Corner(3),
        Corner(4),
        Corner(5),
        Corner(6),
        Corner(7),
    ];

    /// Creates a corner from its 3-bit index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn new(index: u8) -> Self {
        assert!(index < 8, "corner index {index} out of range");
        Corner(index)
    }

    /// The corner's 3-bit index.
    pub fn index(self) -> u8 {
        self.0
    }

    /// The corner as a pixel value.
    pub fn as_pixel(self) -> Pixel {
        Pixel([
            ((self.0 >> 2) & 1) as f32,
            ((self.0 >> 1) & 1) as f32,
            (self.0 & 1) as f32,
        ])
    }

    /// Ranks all eight corners by decreasing `L₁` distance from `pixel`
    /// (the paper's "farthest pixel, second farthest pixel, …" ordering).
    /// Ties break by corner index so the ranking is total and
    /// deterministic.
    pub fn ranked_by_distance(pixel: Pixel) -> [Corner; 8] {
        let mut corners = Corner::ALL;
        corners.sort_by(|a, b| {
            let da = pixel.distance(a.as_pixel());
            let db = pixel.distance(b.as_pixel());
            db.partial_cmp(&da)
                .expect("pixel distances are finite")
                .then(a.0.cmp(&b.0))
        });
        corners
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.as_pixel();
        write!(f, "({}, {}, {})", p.0[0] as u8, p.0[1] as u8, p.0[2] as u8)
    }
}

/// A location–perturbation candidate: perturb the pixel at `location` to
/// the colour-cube `corner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Pair {
    /// Where to perturb.
    pub location: Location,
    /// What to perturb to.
    pub corner: Corner,
}

impl Pair {
    /// Creates a pair.
    pub fn new(location: Location, corner: Corner) -> Self {
        Pair { location, corner }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.location, self.corner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_distance_is_l_infinity() {
        let a = Location::new(3, 4);
        assert_eq!(a.distance(Location::new(3, 4)), 0);
        assert_eq!(a.distance(Location::new(4, 4)), 1);
        assert_eq!(a.distance(Location::new(5, 2)), 2);
        assert_eq!(a.distance(Location::new(0, 4)), 3);
    }

    #[test]
    fn neighbors_interior_has_eight() {
        let n: Vec<_> = Location::new(5, 5).neighbors(10, 10).collect();
        assert_eq!(n.len(), 8);
        assert!(n.iter().all(|l| l.distance(Location::new(5, 5)) == 1));
    }

    #[test]
    fn neighbors_corner_has_three() {
        let n: Vec<_> = Location::new(0, 0).neighbors(10, 10).collect();
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn neighbors_edge_has_five() {
        let n: Vec<_> = Location::new(0, 5).neighbors(10, 10).collect();
        assert_eq!(n.len(), 5);
    }

    #[test]
    fn pixel_distance_is_l1() {
        let a = Pixel([0.0, 0.5, 1.0]);
        let b = Pixel([1.0, 0.5, 0.0]);
        assert_eq!(a.distance(b), 2.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn corner_bit_encoding() {
        assert_eq!(Corner::new(0).as_pixel(), Pixel([0.0, 0.0, 0.0]));
        assert_eq!(Corner::new(7).as_pixel(), Pixel([1.0, 1.0, 1.0]));
        assert_eq!(Corner::new(4).as_pixel(), Pixel([1.0, 0.0, 0.0]));
        assert_eq!(Corner::new(1).as_pixel(), Pixel([0.0, 0.0, 1.0]));
    }

    #[test]
    fn ranking_starts_with_farthest_corner() {
        // A black pixel: farthest corner is white (distance 3).
        let ranked = Corner::ranked_by_distance(Pixel([0.0, 0.0, 0.0]));
        assert_eq!(ranked[0], Corner::new(7));
        assert_eq!(ranked[7], Corner::new(0));
        // Distances must be non-increasing.
        let black = Pixel([0.0, 0.0, 0.0]);
        for w in ranked.windows(2) {
            assert!(
                black.distance(w[0].as_pixel()) >= black.distance(w[1].as_pixel()),
                "ranking not monotone"
            );
        }
    }

    #[test]
    fn ranking_is_a_permutation() {
        let ranked = Corner::ranked_by_distance(Pixel([0.3, 0.7, 0.5]));
        let mut seen = [false; 8];
        for c in ranked {
            assert!(!seen[c.index() as usize], "corner repeated");
            seen[c.index() as usize] = true;
        }
    }

    #[test]
    fn ranking_ties_break_by_index() {
        // Grey pixel (0.5,0.5,0.5): all corners at distance 1.5 → index order.
        let ranked = Corner::ranked_by_distance(Pixel([0.5, 0.5, 0.5]));
        assert_eq!(ranked, Corner::ALL);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn corner_rejects_large_index() {
        Corner::new(8);
    }
}
