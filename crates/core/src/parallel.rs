//! Minimal scoped-thread fan-out for the synthesis evaluation loop.
//!
//! The synthesizer's dominant cost is evaluating a candidate program on
//! every training image — embarrassingly parallel work. This module
//! provides a dependency-free map over a slice using [`std::thread::scope`],
//! with one piece of caller-supplied per-worker state (a classifier
//! session, a forward workspace) threaded through every call.
//!
//! Determinism contract: results are returned in *item order*, regardless
//! of thread count or scheduling. Callers that reduce results with
//! order-independent arithmetic (integer sums, counts) therefore get
//! bit-identical aggregates for any `threads` value.

/// The number of worker threads the host advertises (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` workers, giving each worker
/// its own state built by `init`.
///
/// `f` receives `(worker_state, item_index, item)`. The returned vector
/// is in item order. `threads` is clamped to `[1, items.len()]`;
/// `threads <= 1` runs inline on the caller's thread with a single state,
/// so the sequential path is exactly "one worker that owns every item".
///
/// Work is distributed by striping: worker `w` handles items
/// `w, w + threads, w + 2*threads, ...`. Striping keeps the assignment
/// static (no work-stealing nondeterminism in who-computes-what) while
/// spreading expensive neighbouring items across workers.
pub fn parallel_map_with<T, S, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut out = Vec::new();
                let mut i = w;
                while i < items.len() {
                    out.push((i, f(&mut state, i, &items[i])));
                    i += threads;
                }
                // Merge this worker's thread-local telemetry into the
                // global aggregate before the scope joins, so a snapshot
                // taken right after the fan-out sees every worker's
                // counts. Counter merges are commutative sums, so the
                // aggregate is identical for any thread count. Trace
                // records merge the same way; their canonical addressing
                // (not arrival order) makes the stream deterministic.
                crate::telemetry::flush();
                crate::telemetry::trace::flush();
                out
            }));
        }
        for handle in handles {
            // A worker panic propagates here, which poisons nothing: the
            // scope unwinds and re-raises on the caller's thread.
            for (i, r) in handle.join().expect("parallel_map_with worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every item index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = parallel_map_with(threads, &items, || (), |_, _, &x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u8> = parallel_map_with(4, &[] as &[u8], || (), |_, _, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn each_worker_gets_its_own_state() {
        // Count distinct states built; with striping over 8 items and 4
        // threads, exactly 4 states must be created — and the sequential
        // path exactly one.
        let built = AtomicUsize::new(0);
        let items = [0u8; 8];
        parallel_map_with(
            4,
            &items,
            || built.fetch_add(1, Ordering::SeqCst),
            |_, _, _| (),
        );
        assert_eq!(built.load(Ordering::SeqCst), 4);
        built.store(0, Ordering::SeqCst);
        parallel_map_with(
            1,
            &items,
            || built.fetch_add(1, Ordering::SeqCst),
            |_, _, _| (),
        );
        assert_eq!(built.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_state_accumulates_across_that_workers_items() {
        // Sequential path: one state sees every item in order.
        let items: Vec<u32> = (1..=5).collect();
        let got = parallel_map_with(
            1,
            &items,
            || 0u32,
            |acc, _, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(got, vec![1, 3, 6, 10, 15]);
    }
}
