//! Pluggable candidate priors over the sketch's initial queue order.
//!
//! Appendix A's initial order is uniform over locations (centre-out is
//! only a tie-break heuristic). *Guessing Smart* (arXiv:1812.09803)
//! shows that biasing black-box search with cheap priors cuts queries;
//! here a [`Prior`] reorders the initial [`PairQueue`](crate::queue::PairQueue)
//! by per-location promise — typically per-class pixel-saliency
//! statistics mined offline from successful attack traces. The prior
//! only permutes the *starting* order: the sketch's B1–B4 runtime
//! re-prioritization, the removal discipline, and the per-location
//! corner ranking are untouched, so query accounting semantics are
//! identical for every prior.

use crate::image::Image;
use crate::pair::Location;

/// A deterministic prior over candidate locations.
///
/// Higher weights order a location *earlier* in the initial queue; ties
/// fall back to the paper's centre-out order, so the [`Uniform`] prior
/// (all weights equal) reproduces the paper's queue exactly,
/// byte-for-byte. Implementations must return finite weights and be a
/// pure function of their arguments — the queue order, and therefore
/// every downstream query count, must not depend on call order or
/// thread count.
pub trait Prior: Send + Sync {
    /// The relative promise of perturbing `location` on `image`, whose
    /// true class is `class`.
    fn location_weight(&self, class: usize, image: &Image, location: Location) -> f64;

    /// A short stable name for reports and CLI display.
    fn name(&self) -> &'static str {
        "prior"
    }
}

/// The default prior: every location equally promising, reproducing the
/// paper's centre-out initial order exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

impl Prior for Uniform {
    fn location_weight(&self, _class: usize, _image: &Image, _location: Location) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// A per-class pixel-saliency prior on a fixed grid of normalized
/// coordinates.
///
/// Each class holds a `grid × grid` table of weights; a location maps
/// to the cell containing its normalized `(row + 0.5)/height,
/// (col + 0.5)/width` coordinate, so one table serves every input
/// geometry. Classes without a table (or an empty `per_class`) fall
/// back to uniform weight 0. Tables are typically mined from a
/// `trace_report` corpus by counting where successful flips landed —
/// see `oppsla-eval`'s prior miner.
#[derive(Debug, Clone, PartialEq)]
pub struct SaliencyPrior {
    grid: usize,
    per_class: Vec<Vec<f64>>,
}

impl SaliencyPrior {
    /// Builds a prior from per-class weight tables, each of length
    /// `grid * grid` in row-major cell order.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is zero, any table has the wrong length, or any
    /// weight is non-finite (a NaN weight would make the queue order
    /// undefined).
    pub fn new(grid: usize, per_class: Vec<Vec<f64>>) -> Self {
        assert!(grid > 0, "saliency grid must be at least 1x1");
        for (class, table) in per_class.iter().enumerate() {
            assert_eq!(
                table.len(),
                grid * grid,
                "class {class} table length != grid^2"
            );
            assert!(
                table.iter().all(|w| w.is_finite()),
                "class {class} has a non-finite weight"
            );
        }
        SaliencyPrior { grid, per_class }
    }

    /// Bins per axis.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The per-class tables, row-major, as passed to [`SaliencyPrior::new`].
    pub fn tables(&self) -> &[Vec<f64>] {
        &self.per_class
    }

    /// The row-major cell index of `location` on an `height × width`
    /// image.
    pub fn cell(&self, height: usize, width: usize, location: Location) -> usize {
        // Cell of the pixel centre; clamp covers the `coord == 1.0` edge
        // that exact arithmetic cannot reach but rounding could.
        let bin = |i: usize, n: usize| {
            (((i as f64 + 0.5) / n as f64) * self.grid as f64).min(self.grid as f64 - 1.0) as usize
        };
        bin(location.row as usize, height) * self.grid + bin(location.col as usize, width)
    }
}

impl Prior for SaliencyPrior {
    fn location_weight(&self, class: usize, image: &Image, location: Location) -> f64 {
        match self.per_class.get(class) {
            Some(table) => table[self.cell(image.height(), image.width(), location)],
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "saliency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::Pixel;

    #[test]
    fn uniform_weighs_everything_equally() {
        let img = Image::filled(4, 4, Pixel([0.5; 3]));
        let p = Uniform;
        assert_eq!(p.location_weight(0, &img, Location::new(0, 0)), 0.0);
        assert_eq!(p.location_weight(7, &img, Location::new(3, 3)), 0.0);
        assert_eq!(p.name(), "uniform");
    }

    #[test]
    fn saliency_cells_cover_the_image() {
        let prior = SaliencyPrior::new(4, vec![]);
        // Every location of a 32x32 image maps into [0, 16).
        for row in 0..32u16 {
            for col in 0..32u16 {
                let c = prior.cell(32, 32, Location::new(row, col));
                assert!(c < 16, "({row},{col}) -> {c}");
            }
        }
        // Corner pixels land in corner cells.
        assert_eq!(prior.cell(32, 32, Location::new(0, 0)), 0);
        assert_eq!(prior.cell(32, 32, Location::new(31, 31)), 15);
    }

    #[test]
    fn saliency_serves_per_class_tables_with_uniform_fallback() {
        let mut hot_center = vec![0.0; 4];
        hot_center[3] = 5.0; // bottom-right cell of a 2x2 grid
        let prior = SaliencyPrior::new(2, vec![vec![1.0; 4], hot_center]);
        let img = Image::filled(8, 8, Pixel([0.5; 3]));
        let br = Location::new(7, 7);
        let tl = Location::new(0, 0);
        assert_eq!(prior.location_weight(1, &img, br), 5.0);
        assert_eq!(prior.location_weight(1, &img, tl), 0.0);
        assert_eq!(prior.location_weight(0, &img, br), 1.0);
        // Class without a table: uniform.
        assert_eq!(prior.location_weight(9, &img, br), 0.0);
    }

    #[test]
    #[should_panic(expected = "table length")]
    fn saliency_rejects_misshapen_tables() {
        SaliencyPrior::new(3, vec![vec![0.0; 8]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn saliency_rejects_nan_weights() {
        SaliencyPrior::new(1, vec![vec![f64::NAN]]);
    }
}
