//! The sketch's priority queue over location–perturbation pairs.
//!
//! Appendix A prescribes the initial order (primary: pixel distance of the
//! corner from the image's pixel, farthest first; secondary: location
//! distance from the image centre, closest first) and four operations that
//! dominate the inner loop: pop-front, push-back (re-prioritize), arbitrary
//! remove (eager checking), and "next pair at a location in queue order"
//! (`closest_pert`). This implementation is an arena-backed intrusive
//! doubly-linked list — every operation is O(1) except neighbour lookups,
//! which are O(8).

use crate::image::Image;
use crate::pair::{Corner, Location, Pair};

/// Dense id of a pair: `(row·width + col)·8 + corner`.
type PairId = u32;

#[derive(Debug, Clone, Copy)]
struct Entry {
    prev: Option<PairId>,
    next: Option<PairId>,
    alive: bool,
}

/// Queue of remaining location–perturbation candidates (`L` in
/// Algorithm 1).
///
/// # Examples
///
/// ```
/// use oppsla_core::image::Image;
/// use oppsla_core::pair::Pixel;
/// use oppsla_core::queue::PairQueue;
///
/// let img = Image::filled(3, 3, Pixel([0.0, 0.0, 0.0]));
/// let mut queue = PairQueue::for_image(&img);
/// assert_eq!(queue.len(), 8 * 9);
/// let first = queue.pop().unwrap();
/// // Black image → the farthest corner is white, and the centre comes first.
/// assert_eq!(first.corner.as_pixel().0, [1.0, 1.0, 1.0]);
/// assert_eq!((first.location.row, first.location.col), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct PairQueue {
    height: usize,
    width: usize,
    entries: Vec<Entry>,
    head: Option<PairId>,
    tail: Option<PairId>,
    /// Per location: the corner ids still in the queue, in queue-relative
    /// order (initial order = farthness rank; push-back moves to the end).
    per_location: Vec<Vec<u8>>,
    len: usize,
}

impl PairQueue {
    /// Builds the initial queue for `image` with the paper's ordering.
    pub fn for_image(image: &Image) -> Self {
        // The uniform prior weighs every location equally, so this is
        // exactly the paper's order (and byte-identical to the
        // pre-prior implementation).
        Self::for_image_with_prior(image, 0, &crate::prior::Uniform)
    }

    /// Builds the initial queue for an `image` of class `class`, with
    /// locations ordered by descending `prior` weight. Ties (and the
    /// [`Uniform`](crate::prior::Uniform) prior, where everything ties)
    /// fall back to the paper's centre-out order, ties row-major.
    pub fn for_image_with_prior(
        image: &Image,
        class: usize,
        prior: &dyn crate::prior::Prior,
    ) -> Self {
        let (h, w) = (image.height(), image.width());
        let num_pairs = 8 * h * w;
        let mut queue = PairQueue {
            height: h,
            width: w,
            entries: vec![
                Entry {
                    prev: None,
                    next: None,
                    alive: false,
                };
                num_pairs
            ],
            head: None,
            tail: None,
            per_location: vec![Vec::with_capacity(8); h * w],
            len: 0,
        };

        // Locations sorted by descending prior weight (primary among
        // locations), centre-out (secondary), ties row-major. Weights
        // are precomputed once per location: priors are pure, but table
        // lookups inside a sort comparator would still be paid O(n log n)
        // times.
        let mut locations: Vec<(Location, f64)> = (0..h as u16)
            .flat_map(|row| (0..w as u16).map(move |col| Location::new(row, col)))
            .map(|loc| {
                let weight = prior.location_weight(class, image, loc);
                assert!(weight.is_finite(), "prior weight for {loc:?} not finite");
                (loc, weight)
            })
            .collect();
        locations.sort_by(|(a, wa), (b, wb)| {
            wb.partial_cmp(wa)
                .expect("prior weights are finite")
                .then(
                    image
                        .center_distance(*a)
                        .partial_cmp(&image.center_distance(*b))
                        .expect("centre distances are finite"),
                )
                .then(a.cmp(b))
        });
        let locations: Vec<Location> = locations.into_iter().map(|(loc, _)| loc).collect();

        // Farthness ranking per location (primary key).
        let rankings: Vec<[Corner; 8]> = locations
            .iter()
            .map(|&loc| Corner::ranked_by_distance(image.pixel(loc)))
            .collect();

        // Emit: for each rank (farthest first), all locations centre-out.
        for rank in 0..8 {
            for (loc, ranking) in locations.iter().zip(&rankings) {
                queue.append(Pair::new(*loc, ranking[rank]));
            }
        }
        queue
    }

    /// The number of pairs remaining.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `pair` is still in the queue.
    pub fn contains(&self, pair: Pair) -> bool {
        self.entries[self.id(pair) as usize].alive
    }

    /// Pops the front pair.
    pub fn pop(&mut self) -> Option<Pair> {
        let id = self.head?;
        let pair = self.pair(id);
        self.detach(id);
        Some(pair)
    }

    /// Removes an arbitrary pair. Returns `true` when it was present.
    pub fn remove(&mut self, pair: Pair) -> bool {
        let id = self.id(pair);
        if !self.entries[id as usize].alive {
            return false;
        }
        self.detach(id);
        true
    }

    /// Moves a present pair to the back of the queue. Returns `true` when
    /// it was present (absent pairs are left absent).
    pub fn push_back(&mut self, pair: Pair) -> bool {
        if !self.remove(pair) {
            return false;
        }
        self.append(pair);
        true
    }

    /// The paper's `closest_pert(L, l)`: the next pair in queue order whose
    /// location is `l`, if any.
    pub fn next_at_location(&self, loc: Location) -> Option<Pair> {
        let li = self.loc_index(loc);
        self.per_location[li]
            .first()
            .map(|&c| Pair::new(loc, Corner::new(c)))
    }

    /// The paper's `closest_loc(l, p)`: all pairs still in the queue whose
    /// location is at `L∞` distance 1 from `loc` and whose perturbation is
    /// `corner` (at most 8).
    pub fn location_neighbors(&self, loc: Location, corner: Corner) -> Vec<Pair> {
        loc.neighbors(self.height, self.width)
            .map(|n| Pair::new(n, corner))
            .filter(|&p| self.contains(p))
            .collect()
    }

    /// Remaining pairs in queue order (O(n); for tests and diagnostics).
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            queue: self,
            cursor: self.head,
        }
    }

    fn id(&self, pair: Pair) -> PairId {
        debug_assert!(
            (pair.location.row as usize) < self.height && (pair.location.col as usize) < self.width,
            "pair location out of bounds"
        );
        ((self.loc_index(pair.location) * 8) + pair.corner.index() as usize) as PairId
    }

    fn pair(&self, id: PairId) -> Pair {
        let corner = Corner::new((id % 8) as u8);
        let li = (id / 8) as usize;
        let loc = Location::new((li / self.width) as u16, (li % self.width) as u16);
        Pair::new(loc, corner)
    }

    fn loc_index(&self, loc: Location) -> usize {
        loc.row as usize * self.width + loc.col as usize
    }

    /// Links a currently-absent pair at the tail.
    fn append(&mut self, pair: Pair) {
        let id = self.id(pair);
        debug_assert!(!self.entries[id as usize].alive, "append of a live pair");
        self.entries[id as usize] = Entry {
            prev: self.tail,
            next: None,
            alive: true,
        };
        match self.tail {
            Some(t) => self.entries[t as usize].next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        let li = self.loc_index(pair.location);
        self.per_location[li].push(pair.corner.index());
        self.len += 1;
    }

    /// Unlinks a live pair.
    fn detach(&mut self, id: PairId) {
        let entry = self.entries[id as usize];
        debug_assert!(entry.alive, "detach of a dead pair");
        match entry.prev {
            Some(p) => self.entries[p as usize].next = entry.next,
            None => self.head = entry.next,
        }
        match entry.next {
            Some(n) => self.entries[n as usize].prev = entry.prev,
            None => self.tail = entry.prev,
        }
        self.entries[id as usize].alive = false;
        let pair = self.pair(id);
        let li = self.loc_index(pair.location);
        let corners = &mut self.per_location[li];
        let pos = corners
            .iter()
            .position(|&c| c == pair.corner.index())
            .expect("per-location list out of sync");
        corners.remove(pos);
        self.len -= 1;
    }
}

/// Iterator over the remaining pairs in queue order.
#[derive(Debug)]
pub struct Iter<'a> {
    queue: &'a PairQueue,
    cursor: Option<PairId>,
}

impl Iterator for Iter<'_> {
    type Item = Pair;

    fn next(&mut self) -> Option<Pair> {
        let id = self.cursor?;
        self.cursor = self.queue.entries[id as usize].next;
        Some(self.queue.pair(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::Pixel;

    fn black3() -> Image {
        Image::filled(3, 3, Pixel([0.0, 0.0, 0.0]))
    }

    #[test]
    fn initial_queue_has_all_pairs() {
        let q = PairQueue::for_image(&black3());
        assert_eq!(q.len(), 72);
        let all: Vec<Pair> = q.iter().collect();
        assert_eq!(all.len(), 72);
        let mut dedup = all.clone();
        dedup.sort_by_key(|p| (p.location, p.corner));
        dedup.dedup();
        assert_eq!(dedup.len(), 72, "all pairs distinct");
    }

    #[test]
    fn initial_order_is_farthest_rank_then_center_out() {
        // Black image: first 9 pairs are white (farthest), centre first.
        let img = black3();
        let q = PairQueue::for_image(&img);
        let pairs: Vec<Pair> = q.iter().collect();
        for p in &pairs[..9] {
            assert_eq!(
                p.corner,
                Corner::new(7),
                "first block is the farthest corner"
            );
        }
        assert_eq!(pairs[0].location, Location::new(1, 1), "centre first");
        // Within a block, centre distance is non-decreasing.
        for w in pairs[..9].windows(2) {
            assert!(
                img.center_distance(w[0].location) <= img.center_distance(w[1].location),
                "centre-out ordering violated"
            );
        }
        // Last block is the closest corner (black itself, distance 0).
        for p in &pairs[63..] {
            assert_eq!(p.corner, Corner::new(0));
        }
    }

    #[test]
    fn pop_drains_in_order_and_empties() {
        let mut q = PairQueue::for_image(&black3());
        let mut n = 0;
        let mut last: Option<Pair> = None;
        while let Some(p) = q.pop() {
            n += 1;
            last = Some(p);
        }
        assert_eq!(n, 72);
        assert!(q.is_empty());
        assert_eq!(last.unwrap().corner, Corner::new(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn remove_then_contains_is_false() {
        let mut q = PairQueue::for_image(&black3());
        let p = Pair::new(Location::new(0, 0), Corner::new(3));
        assert!(q.contains(p));
        assert!(q.remove(p));
        assert!(!q.contains(p));
        assert!(!q.remove(p), "double remove reports absence");
        assert_eq!(q.len(), 71);
    }

    #[test]
    fn push_back_moves_to_tail() {
        let mut q = PairQueue::for_image(&black3());
        let first = q.iter().next().unwrap();
        assert!(q.push_back(first));
        let all: Vec<Pair> = q.iter().collect();
        assert_eq!(*all.last().unwrap(), first);
        assert_eq!(all.len(), 72, "push_back preserves the element count");
        assert_ne!(all[0], first);
    }

    #[test]
    fn push_back_of_absent_pair_is_noop() {
        let mut q = PairQueue::for_image(&black3());
        let p = Pair::new(Location::new(2, 2), Corner::new(5));
        q.remove(p);
        assert!(!q.push_back(p));
        assert!(!q.contains(p));
    }

    #[test]
    fn next_at_location_follows_queue_order() {
        let img = black3();
        let mut q = PairQueue::for_image(&img);
        let loc = Location::new(1, 1);
        // Black pixel: order is white (7) first … black (0) last.
        assert_eq!(q.next_at_location(loc).unwrap().corner, Corner::new(7));
        q.remove(Pair::new(loc, Corner::new(7)));
        let second = q.next_at_location(loc).unwrap().corner;
        let ranked = Corner::ranked_by_distance(img.pixel(loc));
        assert_eq!(second, ranked[1]);
        // Push the second to the back: the third in the ranking surfaces.
        q.push_back(Pair::new(loc, second));
        assert_eq!(q.next_at_location(loc).unwrap().corner, ranked[2]);
    }

    #[test]
    fn next_at_location_none_when_exhausted() {
        let mut q = PairQueue::for_image(&black3());
        let loc = Location::new(0, 1);
        for c in Corner::ALL {
            q.remove(Pair::new(loc, c));
        }
        assert!(q.next_at_location(loc).is_none());
    }

    #[test]
    fn location_neighbors_filters_removed() {
        let mut q = PairQueue::for_image(&black3());
        let loc = Location::new(1, 1);
        let c = Corner::new(7);
        assert_eq!(q.location_neighbors(loc, c).len(), 8);
        q.remove(Pair::new(Location::new(0, 0), c));
        q.remove(Pair::new(Location::new(2, 1), c));
        let n = q.location_neighbors(loc, c);
        assert_eq!(n.len(), 6);
        assert!(n.iter().all(|p| p.corner == c));
        assert!(n.iter().all(|p| p.location.distance(loc) == 1));
    }

    #[test]
    fn corner_location_has_three_neighbors() {
        let q = PairQueue::for_image(&black3());
        assert_eq!(
            q.location_neighbors(Location::new(0, 0), Corner::new(2))
                .len(),
            3
        );
    }

    #[test]
    fn uniform_prior_reproduces_the_paper_order_exactly() {
        let img = black3();
        let plain: Vec<Pair> = PairQueue::for_image(&img).iter().collect();
        let uniform: Vec<Pair> = PairQueue::for_image_with_prior(&img, 2, &crate::prior::Uniform)
            .iter()
            .collect();
        assert_eq!(plain, uniform);
    }

    #[test]
    fn saliency_prior_orders_hot_cells_first() {
        // 3x3 image on a 3x3 grid: each location is its own cell. Make
        // the top-left corner the hottest for class 0.
        let img = black3();
        let mut table = vec![0.0; 9];
        table[0] = 10.0;
        let prior = crate::prior::SaliencyPrior::new(3, vec![table]);
        let q = PairQueue::for_image_with_prior(&img, 0, &prior);
        let pairs: Vec<Pair> = q.iter().collect();
        // Every rank block (9 locations each) leads with (0, 0).
        for rank in 0..8 {
            assert_eq!(
                pairs[rank * 9].location,
                Location::new(0, 0),
                "rank {rank} must lead with the hot cell"
            );
        }
        // Remaining locations keep the centre-out tie-break: the centre
        // is second.
        assert_eq!(pairs[1].location, Location::new(1, 1));
        // A class without a table falls back to the uniform order.
        let fallback: Vec<Pair> = PairQueue::for_image_with_prior(&img, 5, &prior)
            .iter()
            .collect();
        let plain: Vec<Pair> = PairQueue::for_image(&img).iter().collect();
        assert_eq!(fallback, plain);
    }

    #[test]
    fn interleaved_operations_preserve_invariants() {
        let mut q = PairQueue::for_image(&black3());
        let mut expected = 72usize;
        // Pop 10, push 5 survivors back, remove 7 arbitrary pairs.
        for _ in 0..10 {
            q.pop().unwrap();
            expected -= 1;
        }
        let survivors: Vec<Pair> = q.iter().take(5).collect();
        for p in &survivors {
            assert!(q.push_back(*p));
        }
        let victims: Vec<Pair> = q.iter().skip(3).take(7).collect();
        for p in &victims {
            assert!(q.remove(*p));
            expected -= 1;
        }
        assert_eq!(q.len(), expected);
        assert_eq!(q.iter().count(), expected);
        // Every iterated pair reports contained.
        for p in q.iter() {
            assert!(q.contains(p));
        }
    }
}
