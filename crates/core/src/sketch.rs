//! The one-pixel attack sketch (Algorithm 1 / Appendix A of the paper).
//!
//! The sketch is the fixed skeleton every adversarial program shares: it
//! exhaustively enumerates the `8·d₁·d₂` location–perturbation candidates
//! from a priority queue, querying the classifier for each, and uses four
//! synthesized conditions to *reorder* the remaining candidates after each
//! failure:
//!
//! * `B₁` — push the failed pair's location neighbours (same perturbation)
//!   to the back of the queue.
//! * `B₂` — push the next perturbation at the failed location to the back.
//! * `B₃` — eagerly check the location neighbours now (conceptual push to
//!   the front), recursively.
//! * `B₄` — eagerly check the next perturbation at the location now,
//!   recursively.
//!
//! Because reordering never drops a candidate, every instantiation of the
//! sketch finds a successful adversarial example whenever one exists in
//! the perturbation space — the conditions only change *how many queries*
//! that takes.

use crate::dsl::{CondCtx, Program};
use crate::goal::AttackGoal;
use crate::image::Image;
use crate::oracle::{argmax, Oracle};
use crate::pair::Pair;
use crate::queue::PairQueue;
use crate::telemetry::{self, trace, Counter};
use crate::tracing::record_oracle_query;
use std::collections::VecDeque;

/// Result of running the sketch on one image.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchOutcome {
    /// A successful one-pixel adversarial example was found.
    Success {
        /// The winning location–perturbation pair.
        pair: Pair,
        /// Queries spent by this run (including the baseline `N(x)` query).
        queries: u64,
    },
    /// Every candidate was tried; no one-pixel corner attack exists.
    Exhausted {
        /// Queries spent by this run.
        queries: u64,
    },
    /// The oracle's query budget ran out mid-attack.
    OutOfBudget {
        /// Queries spent by this run before the budget ended it.
        queries: u64,
    },
    /// The unperturbed image was already misclassified (the paper discards
    /// such images from its test sets).
    AlreadyMisclassified {
        /// Queries spent (the single baseline query).
        queries: u64,
    },
}

impl SketchOutcome {
    /// The queries spent by the run, regardless of outcome.
    pub fn queries(&self) -> u64 {
        match self {
            SketchOutcome::Success { queries, .. }
            | SketchOutcome::Exhausted { queries }
            | SketchOutcome::OutOfBudget { queries }
            | SketchOutcome::AlreadyMisclassified { queries } => *queries,
        }
    }

    /// True for [`SketchOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, SketchOutcome::Success { .. })
    }
}

/// Runs the sketch instantiated with `program` against `oracle` on
/// `image` with true class `true_class`, in the paper's untargeted
/// setting.
///
/// The run issues one baseline query for `N(x)` (counted), then one query
/// per candidate until success, exhaustion, or budget end. The returned
/// query count is this run's spend (`oracle` may carry counts from
/// previous runs; they are not included).
///
/// # Panics
///
/// Panics if `true_class` is out of range for the oracle's class count.
pub fn run_sketch(
    program: &Program,
    oracle: &mut Oracle<'_>,
    image: &Image,
    true_class: usize,
) -> SketchOutcome {
    run_sketch_with_goal(program, oracle, image, true_class, AttackGoal::Untargeted)
}

/// Goal-generic variant of [`run_sketch`]: succeeds when `goal` is met
/// (any flip, or a specific target class). The conditions still read the
/// true class's score drop, as in the paper.
///
/// # Panics
///
/// Panics if `true_class` is out of range for the oracle's class count or
/// the goal is unsatisfiable ([`AttackGoal::validate`]).
pub fn run_sketch_with_goal(
    program: &Program,
    oracle: &mut Oracle<'_>,
    image: &Image,
    true_class: usize,
    goal: AttackGoal,
) -> SketchOutcome {
    run_sketch_with_goal_prior(
        program,
        oracle,
        image,
        true_class,
        goal,
        &crate::prior::Uniform,
    )
}

/// Prior-aware variant of [`run_sketch_with_goal`]: the initial queue
/// is ordered by `prior` (see [`crate::prior::Prior`]); the
/// [`Uniform`](crate::prior::Uniform) prior reproduces
/// [`run_sketch_with_goal`] exactly. The prior only permutes the
/// starting order — conditions, removal discipline, and accounting are
/// identical for every prior.
///
/// # Panics
///
/// Panics if `true_class` is out of range for the oracle's class count or
/// the goal is unsatisfiable ([`AttackGoal::validate`]).
pub fn run_sketch_with_goal_prior(
    program: &Program,
    oracle: &mut Oracle<'_>,
    image: &Image,
    true_class: usize,
    goal: AttackGoal,
    prior: &dyn crate::prior::Prior,
) -> SketchOutcome {
    assert!(
        true_class < oracle.num_classes(),
        "true class {true_class} out of range ({} classes)",
        oracle.num_classes()
    );
    goal.validate(oracle.num_classes(), true_class);
    let start = oracle.queries();
    let spent = |oracle: &Oracle<'_>| oracle.queries() - start;

    // Baseline query: N(x), needed by the score_diff conditions. A
    // memo-attached oracle may serve it without counting; phase
    // attribution and the trace record belong to counted queries only.
    let before_baseline = oracle.queries();
    let orig_scores = match oracle.query(image) {
        Ok(s) => s,
        Err(_) => {
            return SketchOutcome::OutOfBudget {
                queries: spent(oracle),
            }
        }
    };
    if oracle.queries() > before_baseline {
        telemetry::count(Counter::QueryBaseline);
        record_oracle_query(
            "baseline",
            spent(oracle),
            None,
            &orig_scores,
            true_class,
            goal,
        );
    }
    if argmax(&orig_scores) != true_class {
        return SketchOutcome::AlreadyMisclassified {
            queries: spent(oracle),
        };
    }

    let mut queue = PairQueue::for_image_with_prior(image, true_class, prior);

    // Query hot path: every candidate is the base image with one pixel
    // replaced, submitted through [`Oracle::query_pixel_delta_into`] into
    // one reused score buffer. Incremental backends serve these from
    // cached base activations, recomputing only the dirty region; counts
    // and scores are identical to querying the perturbed image in full.
    oracle.begin_candidate_scope();
    let mut buf: Vec<f32> = Vec::with_capacity(orig_scores.len());

    // Submits a candidate; `Ok(true)` = adversarial (scores in `buf`),
    // `Ok(false)` = failed attack (scores in `buf`), `Err` = budget.
    // `phase` attributes the query to the sketch phase that issued it
    // (initial scan vs. eager refinement) for telemetry; `trace_phase` is
    // the finer-grained trace attribution (B3 vs. B4 refinement).
    let try_pair = |oracle: &mut Oracle<'_>,
                    buf: &mut Vec<f32>,
                    pair: Pair,
                    phase: Counter,
                    trace_phase: &'static str| {
        let before = oracle.queries();
        oracle
            .query_pixel_delta_into(image, pair.location, pair.corner.as_pixel(), buf)
            .map_err(|_| ())?;
        // A memo hit is not a counted query: no phase attribution, no
        // trace record — the trace stays a faithful per-counted-query
        // stream that replay can re-verify.
        if oracle.queries() > before {
            telemetry::count(phase);
            record_oracle_query(
                trace_phase,
                spent(oracle),
                Some((pair.location, pair.corner.as_pixel())),
                buf,
                true_class,
                goal,
            );
        }
        Ok::<bool, ()>(goal.is_adversarial(buf, true_class))
    };

    // Speculative prefetch: batch the next few init-scan candidates so a
    // batched backend evaluates them in one layer-major sweep. The peek
    // reflects queue order *now*; if a condition reorders the queue (B1/B2
    // push-backs) or B3/B4 queries a refined candidate first, the oracle
    // serves whichever batch entries still match (membership, not order)
    // and evaluates the others sequentially — query counts and scores are
    // unaffected either way, and because every batched pair is eventually
    // popped exactly once, the removal discipline's no-duplicate-queries
    // guarantee survives speculation.
    const PREFETCH_BATCH: usize = 8;
    let mut upcoming: Vec<(crate::pair::Location, crate::pair::Pixel)> =
        Vec::with_capacity(PREFETCH_BATCH);

    loop {
        if !oracle.has_prefetched() {
            upcoming.clear();
            upcoming.extend(
                queue
                    .iter()
                    .take(PREFETCH_BATCH)
                    .map(|p| (p.location, p.corner.as_pixel())),
            );
            oracle.prefetch_pixel_batch(image, &upcoming);
        }
        let Some(pair) = queue.pop() else { break };
        match try_pair(oracle, &mut buf, pair, Counter::QueryInitScan, "init_scan") {
            Ok(false) => {}
            Ok(true) => {
                return SketchOutcome::Success {
                    pair,
                    queries: spent(oracle),
                }
            }
            Err(()) => {
                return SketchOutcome::OutOfBudget {
                    queries: spent(oracle),
                }
            }
        }

        let ctx = CondCtx {
            image,
            location: pair.location,
            perturbation: pair.corner.as_pixel(),
            orig_scores: &orig_scores,
            pert_scores: &buf,
            true_class,
        };

        // B1: push back the closest pairs with respect to the location.
        if program.condition(1, &ctx) {
            telemetry::count(Counter::ReprioritizeB1);
            trace::record_cond("b1");
            for neighbor in queue.location_neighbors(pair.location, pair.corner) {
                queue.push_back(neighbor);
            }
        }
        // B2: push back the closest pair with respect to the perturbation.
        if program.condition(2, &ctx) {
            telemetry::count(Counter::ReprioritizeB2);
            trace::record_cond("b2");
            if let Some(next) = queue.next_at_location(pair.location) {
                queue.push_back(next);
            }
        }

        // B3/B4: eager front-checking (lines 7–24 of Algorithm 1). The
        // queues own their score vectors: `buf` is overwritten by the next
        // query, so entries must be snapshots.
        let mut loc_q: VecDeque<(Pair, Vec<f32>)> = VecDeque::new();
        let mut pert_q: VecDeque<(Pair, Vec<f32>)> = VecDeque::new();
        loc_q.push_back((pair, buf.clone()));
        pert_q.push_back((pair, buf.clone()));

        while !loc_q.is_empty() || !pert_q.is_empty() {
            while let Some((failed, failed_scores)) = loc_q.pop_front() {
                let ctx = CondCtx {
                    image,
                    location: failed.location,
                    perturbation: failed.corner.as_pixel(),
                    orig_scores: &orig_scores,
                    pert_scores: &failed_scores,
                    true_class,
                };
                if !program.condition(3, &ctx) {
                    continue;
                }
                trace::record_cond("b3");
                for candidate in queue.location_neighbors(failed.location, failed.corner) {
                    queue.remove(candidate);
                    match try_pair(
                        oracle,
                        &mut buf,
                        candidate,
                        Counter::QueryRefine,
                        "refine_b3",
                    ) {
                        Ok(false) => {
                            loc_q.push_back((candidate, buf.clone()));
                            pert_q.push_back((candidate, buf.clone()));
                        }
                        Ok(true) => {
                            return SketchOutcome::Success {
                                pair: candidate,
                                queries: spent(oracle),
                            }
                        }
                        Err(()) => {
                            return SketchOutcome::OutOfBudget {
                                queries: spent(oracle),
                            }
                        }
                    }
                }
            }
            while let Some((failed, failed_scores)) = pert_q.pop_front() {
                let ctx = CondCtx {
                    image,
                    location: failed.location,
                    perturbation: failed.corner.as_pixel(),
                    orig_scores: &orig_scores,
                    pert_scores: &failed_scores,
                    true_class,
                };
                if !program.condition(4, &ctx) {
                    continue;
                }
                trace::record_cond("b4");
                if let Some(candidate) = queue.next_at_location(failed.location) {
                    queue.remove(candidate);
                    match try_pair(
                        oracle,
                        &mut buf,
                        candidate,
                        Counter::QueryRefine,
                        "refine_b4",
                    ) {
                        Ok(false) => {
                            loc_q.push_back((candidate, buf.clone()));
                            pert_q.push_back((candidate, buf.clone()));
                        }
                        Ok(true) => {
                            return SketchOutcome::Success {
                                pair: candidate,
                                queries: spent(oracle),
                            }
                        }
                        Err(()) => {
                            return SketchOutcome::OutOfBudget {
                                queries: spent(oracle),
                            }
                        }
                    }
                }
            }
        }
    }

    SketchOutcome::Exhausted {
        queries: spent(oracle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FnClassifier;
    use crate::pair::{Corner, Location, Pixel};

    /// A classifier that flips its decision iff the pixel at `target` is
    /// exactly `trigger`.
    fn trigger_classifier(
        target: Location,
        trigger: Pixel,
    ) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == trigger {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        })
    }

    fn grey(h: usize, w: usize) -> Image {
        Image::filled(h, w, Pixel([0.4, 0.4, 0.4]))
    }

    #[test]
    fn finds_the_unique_adversarial_pair() {
        let target = Location::new(2, 3);
        let trigger = Pixel([1.0, 1.0, 1.0]);
        let clf = trigger_classifier(target, trigger);
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(5, 5), 0);
        match outcome {
            SketchOutcome::Success { pair, queries } => {
                assert_eq!(pair.location, target);
                assert_eq!(pair.corner.as_pixel(), trigger);
                assert!(queries >= 2, "baseline + at least one candidate");
                assert!(queries <= 8 * 25 + 1);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn every_program_finds_the_example_if_it_exists() {
        // The paper's guarantee: the success of the sketch is independent
        // of the conditions; only the query count varies.
        let target = Location::new(0, 4);
        let trigger = Pixel([0.0, 0.0, 1.0]);
        let clf = trigger_classifier(target, trigger);
        for program in [
            Program::constant(false),
            Program::constant(true),
            Program::paper_example(),
        ] {
            let mut oracle = Oracle::new(&clf);
            let outcome = run_sketch(&program, &mut oracle, &grey(5, 5), 0);
            assert!(outcome.is_success(), "{program} failed: {outcome:?}");
        }
    }

    #[test]
    fn exhausts_when_no_attack_exists() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(3, 3), 0);
        match outcome {
            SketchOutcome::Exhausted { queries } => {
                // 1 baseline + all 72 candidates, each queried exactly once.
                assert_eq!(queries, 73);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn exhausts_with_true_conditions_without_double_queries() {
        // With all conditions true, eager checking fires constantly; the
        // removal discipline must still query each candidate exactly once.
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&Program::constant(true), &mut oracle, &grey(3, 3), 0);
        assert_eq!(outcome, SketchOutcome::Exhausted { queries: 73 });
    }

    #[test]
    fn reports_already_misclassified() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.1, 0.9]);
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(3, 3), 0);
        assert_eq!(outcome, SketchOutcome::AlreadyMisclassified { queries: 1 });
    }

    #[test]
    fn respects_the_query_budget() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let mut oracle = Oracle::with_budget(&clf, 10);
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(5, 5), 0);
        assert_eq!(outcome, SketchOutcome::OutOfBudget { queries: 10 });
    }

    #[test]
    fn budget_of_zero_spends_nothing() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let mut oracle = Oracle::with_budget(&clf, 0);
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(3, 3), 0);
        assert_eq!(outcome, SketchOutcome::OutOfBudget { queries: 0 });
    }

    #[test]
    fn helpful_conditions_reduce_queries_for_off_center_targets() {
        // Target far from the centre with the *second*-farthest corner:
        // the fixed order checks all farthest-corner pairs first, but a
        // program that pushes back unpromising location neighbours can
        // reshuffle. More directly: compare the constant-false program
        // with the always-eager program on a trigger adjacent to the first
        // popped pair.
        let img = grey(7, 7);
        // First popped pair: centre (3,3) with its farthest corner. Place
        // the trigger adjacent to the centre with the SAME corner: eager
        // B3 finds it on the very next query.
        let first_corner = Corner::ranked_by_distance(img.pixel(Location::new(3, 3)))[0];
        let target = Location::new(3, 4);
        let clf = trigger_classifier(target, first_corner.as_pixel());

        let mut eager_oracle = Oracle::new(&clf);
        let eager = run_sketch(&Program::constant(true), &mut eager_oracle, &img, 0);
        let mut fixed_oracle = Oracle::new(&clf);
        let fixed = run_sketch(&Program::constant(false), &mut fixed_oracle, &img, 0);
        assert!(eager.is_success() && fixed.is_success());
        assert!(
            eager.queries() <= fixed.queries(),
            "eager {} vs fixed {}",
            eager.queries(),
            fixed.queries()
        );
    }

    #[test]
    fn success_query_count_matches_oracle_delta() {
        let target = Location::new(1, 1);
        let clf = trigger_classifier(target, Pixel([1.0, 1.0, 1.0]));
        let mut oracle = Oracle::new(&clf);
        // Pre-spend some queries to check delta accounting.
        oracle.query(&grey(3, 3)).unwrap();
        oracle.query(&grey(3, 3)).unwrap();
        let outcome = run_sketch(&Program::constant(false), &mut oracle, &grey(3, 3), 0);
        assert_eq!(outcome.queries() + 2, oracle.queries());
    }

    #[test]
    fn a_good_prior_reduces_queries_without_changing_the_outcome() {
        // Trigger far from the centre: the uniform (centre-out) order
        // reaches it late, a prior that marks its cell hot reaches it
        // early. Success is guaranteed either way — priors only permute
        // the starting order.
        let img = grey(6, 6);
        let target = Location::new(0, 0);
        let trigger = Corner::ranked_by_distance(img.pixel(target))[0].as_pixel();
        let clf = trigger_classifier(target, trigger);

        let mut table = vec![0.0; 9];
        table[0] = 1.0; // top-left cell of a 3x3 grid
        let prior = crate::prior::SaliencyPrior::new(3, vec![table]);

        let mut with_prior = Oracle::new(&clf);
        let hot = run_sketch_with_goal_prior(
            &Program::constant(false),
            &mut with_prior,
            &img,
            0,
            AttackGoal::Untargeted,
            &prior,
        );
        let mut uniform = Oracle::new(&clf);
        let cold = run_sketch(&Program::constant(false), &mut uniform, &img, 0);
        assert!(hot.is_success() && cold.is_success());
        assert!(
            hot.queries() < cold.queries(),
            "prior {} vs uniform {}",
            hot.queries(),
            cold.queries()
        );
    }

    #[cfg(feature = "query-memo")]
    #[test]
    fn a_restart_with_a_shared_memo_repays_nothing() {
        use crate::oracle::QueryMemo;
        // No attack exists, so a run visits every candidate. A second
        // run (restart) over the same image with a shared memo must see
        // the identical outcome while paying zero fresh queries.
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let img = grey(3, 3);
        let memo = QueryMemo::new();
        let mut first = Oracle::new(&clf).with_memo(&memo);
        let a = run_sketch(&Program::constant(false), &mut first, &img, 0);
        assert_eq!(a, SketchOutcome::Exhausted { queries: 73 });

        let mut second = Oracle::new(&clf).with_memo(&memo);
        let b = run_sketch(&Program::constant(false), &mut second, &img, 0);
        assert_eq!(
            b,
            SketchOutcome::Exhausted { queries: 0 },
            "every candidate served from the memo"
        );
        assert_eq!(second.memo_hits(), 73);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_true_class() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let mut oracle = Oracle::new(&clf);
        run_sketch(&Program::constant(false), &mut oracle, &grey(3, 3), 5);
    }
}
