//! OPPSLA: the Metropolis–Hastings program synthesizer (Algorithm 2 /
//! Appendix B of the paper).
//!
//! The search space is every instantiation of the sketch's four
//! conditions. Candidates are scored by the *average number of queries*
//! their attack needs over a training set, `S(P) = exp(−β·Q̄_P)`, and a
//! mutated candidate `P'` replaces the incumbent `P` with probability
//! `min(1, S(P')/S(P)) = min(1, exp(−β·(Q̄_{P'} − Q̄_P)))`. We compute the
//! ratio in the exponent domain so large `Q̄` never underflows.

use crate::dsl::{mutate_in, random_program_in, GrammarConfig, ImageDims, Program};
use crate::image::Image;
use crate::oracle::{BatchClassifier, Classifier, MemoBank, Oracle, QueryMemo};
use crate::parallel::parallel_map_with;
use crate::sketch::{run_sketch, SketchOutcome};
use crate::telemetry::trace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A training example: an image with its true class label.
pub type Labeled = (Image, usize);

/// A prefilter callback: keeps the vulnerable subset of a training set
/// and reports the classifier queries spent deciding.
pub type FilterFn<'a> = dyn FnMut(&[Labeled]) -> (Vec<Labeled>, u64) + 'a;

/// Configuration of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// `MAX_ITER`: number of mutate-evaluate-accept iterations. The paper
    /// uses 210.
    pub max_iterations: usize,
    /// The score exponent `β` in `S(P) = exp(−β·Q̄_P)`.
    pub beta: f64,
    /// Seed for the initial program, mutations and acceptance sampling.
    pub seed: u64,
    /// Per-image query cap during candidate evaluation. `None` lets every
    /// attack run to completion (at most `8·d₁·d₂ + 1` queries). A cap
    /// bounds synthesis cost on hard images; capped runs count as
    /// failures, mirroring the paper's treatment of unsuccessful inputs.
    pub per_image_budget: Option<u64>,
    /// When true, training images with *no* one-pixel corner attack at all
    /// are dropped before the search starts (detected by one uncapped run
    /// of the fixed-prioritization program per image, whose queries count
    /// toward the synthesis total). The paper's score already ignores
    /// unsuccessful inputs — "their number of queries is fixed" — so
    /// re-paying that fixed cost every iteration is pure waste; filtering
    /// preserves the score semantics while making each iteration cheap.
    pub prefilter: bool,
    /// The condition grammar the search draws from: the paper's atomic
    /// grammar by default, or the extended boolean-combinator grammar
    /// ([`GrammarConfig::extended`]).
    pub grammar: GrammarConfig,
    /// Worker threads used by [`synthesize_parallel`] (and the other
    /// `*_parallel` entry points) to spread candidate evaluation over the
    /// training set. Ignored by the sequential [`synthesize`]. Any value
    /// produces a bit-identical [`SynthReport`]: per-image query counts
    /// are exact integers reduced by order-independent sums, and the MH
    /// random stream never leaves the main thread.
    pub threads: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_iterations: 210,
            beta: 0.01,
            seed: 0,
            per_image_budget: None,
            prefilter: false,
            grammar: GrammarConfig::paper(),
            threads: 1,
        }
    }
}

/// The evaluation of one candidate program on the training set.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `Q̄_P`: mean queries over the training inputs the program attacked
    /// successfully (`f64::INFINITY` when it succeeded on none).
    pub avg_queries: f64,
    /// How many training inputs were attacked successfully.
    pub successes: usize,
    /// Total classifier queries this evaluation spent.
    pub queries_spent: u64,
}

/// One Metropolis–Hastings iteration, for trajectory analysis (Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number, starting at 1 (0 is the initial program).
    pub iteration: usize,
    /// The mutated candidate proposed this iteration.
    pub candidate: Program,
    /// The candidate's evaluation.
    pub evaluation: Evaluation,
    /// Whether the candidate was accepted as the new incumbent.
    pub accepted: bool,
    /// Total synthesis queries spent up to and including this iteration.
    pub cumulative_queries: u64,
}

/// The result of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// The final (incumbent) program.
    pub program: Program,
    /// How many training images the prefilter dropped as unattackable
    /// (0 when prefiltering is off).
    pub prefiltered: usize,
    /// The initial random program's evaluation.
    pub initial: Evaluation,
    /// The initial random program itself.
    pub initial_program: Program,
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// Total queries posed to the classifier during synthesis.
    pub total_queries: u64,
}

impl SynthReport {
    /// The accepted-program trajectory: `(iteration, cumulative_queries,
    /// program)` for the initial program and every accepted candidate —
    /// the x-axes and series of the paper's Figure 4.
    pub fn accepted_trajectory(&self) -> Vec<(usize, u64, Program)> {
        let initial_cumulative = self
            .iterations
            .first()
            .map(|r| r.cumulative_queries - r.evaluation.queries_spent)
            .unwrap_or(self.total_queries);
        let mut out = vec![(0, initial_cumulative, self.initial_program.clone())];
        for rec in &self.iterations {
            if rec.accepted {
                out.push((rec.iteration, rec.cumulative_queries, rec.candidate.clone()));
            }
        }
        out
    }
}

/// Attacks one training pair: `(queries spent, queries if successful)`.
fn attack_one(
    program: &Program,
    classifier: &dyn Classifier,
    image: &Image,
    true_class: usize,
    per_image_budget: Option<u64>,
    memo: Option<&QueryMemo>,
) -> (u64, Option<u64>) {
    let mut oracle = match per_image_budget {
        Some(b) => Oracle::with_budget(classifier, b),
        None => Oracle::new(classifier),
    };
    if let Some(memo) = memo {
        oracle = oracle.with_memo(memo);
    }
    let outcome = run_sketch(program, &mut oracle, image, true_class);
    let spent = outcome.queries();
    match outcome {
        SketchOutcome::Success { queries, .. } => (spent, Some(queries)),
        _ => (spent, None),
    }
}

/// [`attack_one`] bracketed by trace addressing: tags the worker's
/// subsequent records with the training-set index and closes the run
/// with its query count and outcome.
fn attack_one_traced(
    program: &Program,
    classifier: &dyn Classifier,
    index: usize,
    image: &Image,
    true_class: usize,
    per_image_budget: Option<u64>,
    memo: Option<&QueryMemo>,
) -> (u64, Option<u64>) {
    trace::set_image(index);
    let result = attack_one(
        program,
        classifier,
        image,
        true_class,
        per_image_budget,
        memo,
    );
    trace::record_run(result.0, result.1.is_some());
    result
}

/// Reduces per-image attack results into an [`Evaluation`]. All sums are
/// exact integers, so the result is independent of the order (and thus the
/// thread assignment) the per-image results were produced in.
fn reduce_evaluation(per_image: impl IntoIterator<Item = (u64, Option<u64>)>) -> Evaluation {
    let mut total_queries = 0u64;
    let mut success_queries = 0u64;
    let mut successes = 0usize;
    for (spent, success) in per_image {
        total_queries += spent;
        if let Some(queries) = success {
            success_queries += queries;
            successes += 1;
        }
    }
    Evaluation {
        avg_queries: if successes == 0 {
            f64::INFINITY
        } else {
            success_queries as f64 / successes as f64
        },
        successes,
        queries_spent: total_queries,
    }
}

/// Evaluates `program` on the training set: runs the sketch attack on
/// every `(image, true_class)` pair and averages the query counts of the
/// successful ones (Algorithm 2's inner loop).
///
/// # Panics
///
/// Panics if `train` is empty or a true class is out of range.
pub fn evaluate_program(
    program: &Program,
    classifier: &dyn Classifier,
    train: &[Labeled],
    per_image_budget: Option<u64>,
) -> Evaluation {
    assert!(!train.is_empty(), "training set is empty");
    reduce_evaluation(train.iter().enumerate().map(|(i, (image, c))| {
        attack_one_traced(program, classifier, i, image, *c, per_image_budget, None)
    }))
}

/// [`evaluate_program`] through a shared [`MemoBank`] (entry `i` serves
/// training image `i`): candidates already paid for by an earlier
/// evaluation through the same bank are served from the cache without
/// counting a query. Success/failure per image is identical to the
/// memo-less call; `avg_queries` and `queries_spent` measure only the
/// *marginal* (previously unpaid) queries. Without the `query-memo`
/// feature the bank is inert and this *is* [`evaluate_program`].
///
/// # Panics
///
/// Panics if `train` is empty, a true class is out of range, or the bank
/// has fewer entries than `train`.
pub fn evaluate_program_with_memo(
    program: &Program,
    classifier: &dyn Classifier,
    train: &[Labeled],
    per_image_budget: Option<u64>,
    memo: &MemoBank,
) -> Evaluation {
    assert!(!train.is_empty(), "training set is empty");
    assert!(
        memo.len() >= train.len(),
        "memo bank has {} entries for {} training images",
        memo.len(),
        train.len()
    );
    reduce_evaluation(train.iter().enumerate().map(|(i, (image, c))| {
        attack_one_traced(
            program,
            classifier,
            i,
            image,
            *c,
            per_image_budget,
            Some(memo.memo(i)),
        )
    }))
}

/// [`evaluate_program`] fanned out over `threads` workers, each querying
/// through its own [`BatchClassifier::session`] handle. Returns the same
/// [`Evaluation`], bit for bit, as the sequential function for any thread
/// count: per-image query counts are exact and reduced order-independently.
///
/// # Panics
///
/// Panics if `train` is empty or a true class is out of range.
pub fn evaluate_program_parallel(
    program: &Program,
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    per_image_budget: Option<u64>,
    threads: usize,
) -> Evaluation {
    assert!(!train.is_empty(), "training set is empty");
    reduce_evaluation(parallel_map_with(
        threads,
        train,
        || classifier.session(),
        |session, i, (image, c)| {
            attack_one_traced(program, &**session, i, image, *c, per_image_budget, None)
        },
    ))
}

/// [`evaluate_program_with_memo`] fanned out over `threads` workers. The
/// bank is indexed by training-set position, so each worker only touches
/// its current image's memo: the [`Evaluation`] is bit-identical to the
/// sequential memo call for any thread count.
///
/// # Panics
///
/// Panics if `train` is empty, a true class is out of range, or the bank
/// has fewer entries than `train`.
pub fn evaluate_program_parallel_with_memo(
    program: &Program,
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    per_image_budget: Option<u64>,
    threads: usize,
    memo: &MemoBank,
) -> Evaluation {
    assert!(!train.is_empty(), "training set is empty");
    assert!(
        memo.len() >= train.len(),
        "memo bank has {} entries for {} training images",
        memo.len(),
        train.len()
    );
    reduce_evaluation(parallel_map_with(
        threads,
        train,
        || classifier.session(),
        |session, i, (image, c)| {
            attack_one_traced(
                program,
                &**session,
                i,
                image,
                *c,
                per_image_budget,
                Some(memo.memo(i)),
            )
        },
    ))
}

/// The MH acceptance probability `min(1, exp(−β·(q_new − q_old)))`,
/// computed in the exponent domain. Handles infinite averages: a finite
/// candidate always beats an infinite incumbent and vice versa; two
/// infinite averages tie (probability 1, as `Q̄' − Q̄ = 0` conceptually).
pub fn acceptance_probability(beta: f64, q_old: f64, q_new: f64) -> f64 {
    match (q_old.is_infinite(), q_new.is_infinite()) {
        (true, true) => 1.0,
        (true, false) => 1.0,
        (false, true) => 0.0,
        (false, false) => (-beta * (q_new - q_old)).exp().min(1.0),
    }
}

/// Splits `train` into its attackable subset: runs the fixed-prioritization
/// program uncapped on every image and keeps those with a successful
/// one-pixel corner attack (a program-independent property of the sketch).
/// Returns the kept images and the queries the filtering spent.
///
/// # Panics
///
/// Panics if `train` is empty or a true class is out of range.
pub fn filter_attackable(classifier: &dyn Classifier, train: &[Labeled]) -> (Vec<Labeled>, u64) {
    assert!(!train.is_empty(), "training set is empty");
    let fixed = Program::constant(false);
    let probes = train
        .iter()
        .enumerate()
        .map(|(i, (image, c))| probe_one_traced(&fixed, classifier, i, image, *c))
        .collect::<Vec<_>>();
    keep_attackable(train, probes)
}

/// [`filter_attackable`] fanned out over `threads` workers via per-worker
/// [`BatchClassifier::session`] handles. The kept set and query total are
/// identical to the sequential function for any thread count.
///
/// # Panics
///
/// Panics if `train` is empty or a true class is out of range.
pub fn filter_attackable_parallel(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    threads: usize,
) -> (Vec<Labeled>, u64) {
    assert!(!train.is_empty(), "training set is empty");
    let fixed = Program::constant(false);
    let probes = parallel_map_with(
        threads,
        train,
        || classifier.session(),
        |session, i, (image, c)| probe_one_traced(&fixed, &**session, i, image, *c),
    );
    keep_attackable(train, probes)
}

/// Probes one training pair with the fixed-prioritization program:
/// `(queries spent, attackable?)`.
fn probe_one(
    fixed: &Program,
    classifier: &dyn Classifier,
    image: &Image,
    true_class: usize,
) -> (u64, bool) {
    let mut oracle = Oracle::new(classifier);
    let outcome = run_sketch(fixed, &mut oracle, image, true_class);
    (outcome.queries(), outcome.is_success())
}

/// [`probe_one`] bracketed by trace addressing, like [`attack_one_traced`].
fn probe_one_traced(
    fixed: &Program,
    classifier: &dyn Classifier,
    index: usize,
    image: &Image,
    true_class: usize,
) -> (u64, bool) {
    trace::set_image(index);
    let result = probe_one(fixed, classifier, image, true_class);
    trace::record_run(result.0, result.1);
    result
}

/// Zips probe results back onto `train`, keeping the attackable pairs and
/// summing queries (exact, order-independent).
fn keep_attackable(train: &[Labeled], probes: Vec<(u64, bool)>) -> (Vec<Labeled>, u64) {
    let mut kept = Vec::with_capacity(train.len());
    let mut kept_idx = Vec::with_capacity(train.len());
    let mut queries = 0u64;
    for (i, ((image, true_class), (spent, attackable))) in train.iter().zip(probes).enumerate() {
        queries += spent;
        if attackable {
            kept_idx.push(i);
            kept.push((image.clone(), *true_class));
        }
    }
    trace::record_filter(&kept_idx);
    (kept, queries)
}

/// Runs OPPSLA: synthesizes an adversarial program for `classifier` from
/// `train` (Algorithm 2).
///
/// # Panics
///
/// Panics if `train` is empty, images disagree on extents, or `beta` is
/// not positive.
pub fn synthesize(
    classifier: &dyn Classifier,
    train: &[Labeled],
    config: &SynthConfig,
) -> SynthReport {
    run_mh(
        train,
        config,
        &mut |t| filter_attackable(classifier, t),
        &mut |p, t| evaluate_program(p, classifier, t, config.per_image_budget),
    )
}

/// [`synthesize`] with candidate evaluation fanned out over
/// [`SynthConfig::threads`] workers. The Metropolis–Hastings chain itself
/// (mutation, acceptance sampling) stays on the calling thread, and every
/// [`Evaluation`] is bit-identical to the sequential one, so the returned
/// [`SynthReport`] is identical for any thread count — only wall-clock
/// time changes.
///
/// # Panics
///
/// Panics if `train` is empty, images disagree on extents, or `beta` is
/// not positive.
pub fn synthesize_parallel(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    config: &SynthConfig,
) -> SynthReport {
    let threads = config.threads;
    run_mh(
        train,
        config,
        &mut |t| filter_attackable_parallel(classifier, t, threads),
        &mut |p, t| evaluate_program_parallel(p, classifier, t, config.per_image_budget, threads),
    )
}

/// [`synthesize`] with every candidate evaluation routed through one
/// shared [`MemoBank`]: a candidate query any earlier iteration already
/// paid for is served from the cache without touching the classifier.
/// Because memo hits are never counted as oracle queries, the MH score
/// ranks programs by their *marginal* query cost given the cache — a
/// deliberately different (and much cheaper) search mode than
/// [`synthesize`], whose trajectory it does not reproduce. Memo keys
/// carry full image content hashes, so the prefilter reindexing the
/// training set cannot cause false hits. Without the `query-memo`
/// feature the bank is inert and this *is* [`synthesize`].
///
/// # Panics
///
/// Panics like [`synthesize`], or if the bank has fewer entries than
/// `train`.
pub fn synthesize_with_memo(
    classifier: &dyn Classifier,
    train: &[Labeled],
    config: &SynthConfig,
    memo: &MemoBank,
) -> SynthReport {
    assert!(
        memo.len() >= train.len(),
        "memo bank has {} entries for {} training images",
        memo.len(),
        train.len()
    );
    run_mh(
        train,
        config,
        &mut |t| filter_attackable(classifier, t),
        &mut |p, t| evaluate_program_with_memo(p, classifier, t, config.per_image_budget, memo),
    )
}

/// [`synthesize_with_memo`] with candidate evaluation fanned out over
/// [`SynthConfig::threads`] workers; the report is bit-identical to the
/// sequential memo call for any thread count.
///
/// # Panics
///
/// Panics like [`synthesize_with_memo`].
pub fn synthesize_parallel_with_memo(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    config: &SynthConfig,
    memo: &MemoBank,
) -> SynthReport {
    assert!(
        memo.len() >= train.len(),
        "memo bank has {} entries for {} training images",
        memo.len(),
        train.len()
    );
    let threads = config.threads;
    run_mh(
        train,
        config,
        &mut |t| filter_attackable_parallel(classifier, t, threads),
        &mut |p, t| {
            evaluate_program_parallel_with_memo(
                p,
                classifier,
                t,
                config.per_image_budget,
                threads,
                memo,
            )
        },
    )
}

/// The Metropolis–Hastings core shared by [`synthesize`] and
/// [`synthesize_parallel`]: all classifier access goes through the
/// injected `filter` and `eval` closures, so the chain's control flow (and
/// its random stream) is written exactly once.
fn run_mh(
    train: &[Labeled],
    config: &SynthConfig,
    filter: &mut FilterFn<'_>,
    eval: &mut dyn FnMut(&Program, &[Labeled]) -> Evaluation,
) -> SynthReport {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.beta > 0.0, "beta must be positive");
    let dims = ImageDims::new(train[0].0.height(), train[0].0.width());
    for (img, _) in train {
        assert_eq!(
            (img.height(), img.width()),
            (dims.height, dims.width),
            "training images disagree on extents"
        );
    }

    // Optional prefilter: drop images that no instantiation can attack
    // (the sketch's success set is program-independent), so iterations
    // stop re-paying their fixed exhaustive cost.
    let mut prefilter_queries = 0u64;
    let mut prefiltered = 0usize;
    let filtered: Vec<Labeled>;
    let train: &[Labeled] = if config.prefilter {
        trace::begin_sweep("prefilter", train.len(), "");
        let (kept, queries) = filter(train);
        prefilter_queries = queries;
        if kept.is_empty() {
            // Nothing attackable: fall back to the full set so the run
            // still returns a (necessarily arbitrary) program.
            filtered = train.to_vec();
        } else {
            prefiltered = train.len() - kept.len();
            filtered = kept;
        }
        &filtered
    } else {
        train
    };

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut incumbent = random_program_in(&mut rng, dims, config.grammar);
    let initial_program = incumbent.clone();
    if trace::armed() {
        trace::begin_sweep("eval", train.len(), &incumbent.to_string());
    }
    let initial = eval(&incumbent, train);
    crate::telemetry::count(crate::telemetry::Counter::SynthPrograms);
    if trace::armed() {
        // The initial program is the step-0 incumbent by definition.
        trace::record_synth(0, &initial_program.to_string(), initial.avg_queries, true);
    }
    let mut incumbent_avg = initial.avg_queries;
    let mut cumulative = prefilter_queries + initial.queries_spent;
    let mut iterations = Vec::with_capacity(config.max_iterations);

    for iteration in 1..=config.max_iterations {
        let candidate = mutate_in(&mut rng, &incumbent, dims, config.grammar);
        if trace::armed() {
            trace::begin_sweep("eval", train.len(), &candidate.to_string());
        }
        let evaluation = eval(&candidate, train);
        crate::telemetry::count(crate::telemetry::Counter::SynthPrograms);
        cumulative += evaluation.queries_spent;
        let p = acceptance_probability(config.beta, incumbent_avg, evaluation.avg_queries);
        let accepted = rng.gen::<f64>() < p;
        if trace::armed() {
            trace::record_synth(
                iteration,
                &candidate.to_string(),
                evaluation.avg_queries,
                accepted,
            );
        }
        if accepted {
            crate::telemetry::count(crate::telemetry::Counter::SynthAccepted);
            incumbent = candidate.clone();
            incumbent_avg = evaluation.avg_queries;
        }
        iterations.push(IterationRecord {
            iteration,
            candidate,
            evaluation,
            accepted,
            cumulative_queries: cumulative,
        });
    }

    SynthReport {
        program: incumbent,
        prefiltered,
        initial,
        initial_program,
        iterations,
        total_queries: cumulative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FnClassifier;
    use crate::pair::{Location, Pixel};

    /// Classifier with a one-pixel weakness near the centre: any corner
    /// with a red channel of 1 at a location in the central 3×3 flips it.
    fn center_weak_classifier() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, |img: &Image| {
            for row in 3..6u16 {
                for col in 3..6u16 {
                    let p = img.pixel(Location::new(row, col));
                    if p.0[0] == 1.0 && p.0[1] == 1.0 && p.0[2] == 1.0 {
                        return vec![0.2, 0.8];
                    }
                }
            }
            vec![0.8, 0.2]
        })
    }

    fn train_set(n: usize) -> Vec<Labeled> {
        (0..n)
            .map(|i| {
                let v = 0.3 + 0.05 * (i % 5) as f32;
                (Image::filled(9, 9, Pixel([v, v, v])), 0)
            })
            .collect()
    }

    #[test]
    fn evaluate_program_counts_successes_and_averages() {
        let clf = center_weak_classifier();
        let train = train_set(4);
        let eval = evaluate_program(&Program::constant(false), &clf, &train, None);
        assert_eq!(eval.successes, 4);
        assert!(eval.avg_queries.is_finite());
        assert!(eval.avg_queries >= 2.0);
        assert!(eval.queries_spent >= eval.avg_queries as u64 * 4);
    }

    #[test]
    fn evaluate_program_with_no_successes_is_infinite() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let train = vec![(Image::filled(3, 3, Pixel([0.5, 0.5, 0.5])), 0)];
        let eval = evaluate_program(&Program::constant(false), &clf, &train, None);
        assert_eq!(eval.successes, 0);
        assert!(eval.avg_queries.is_infinite());
        assert_eq!(eval.queries_spent, 73);
    }

    #[test]
    fn memo_evaluation_preserves_successes_and_only_cheapens_requeries() {
        let clf = center_weak_classifier();
        let train = train_set(3);
        let program = Program::constant(false);
        let plain = evaluate_program(&program, &clf, &train, None);

        let bank = MemoBank::new(train.len(), crate::oracle::DEFAULT_MEMO_CAPACITY);
        let first = evaluate_program_with_memo(&program, &clf, &train, None, &bank);
        // A cold bank changes nothing: no candidate repeats within a run.
        assert_eq!(first, plain);

        // Re-evaluating the same program replays the same candidates, so
        // everything is served from the warm bank: successes unchanged,
        // counted queries only fall.
        let second = evaluate_program_with_memo(&program, &clf, &train, None, &bank);
        assert_eq!(second.successes, first.successes);
        assert!(second.queries_spent <= first.queries_spent);
        #[cfg(feature = "query-memo")]
        assert_eq!(
            second.queries_spent, 0,
            "a full replay through a warm memo must be free"
        );

        // Parallel memo evaluation is thread-count invariant.
        for threads in [1, 2, 4] {
            let bank_p = MemoBank::new(train.len(), crate::oracle::DEFAULT_MEMO_CAPACITY);
            let seq = evaluate_program_with_memo(&program, &clf, &train, None, &bank_p);
            assert_eq!(seq, first);
            let par =
                evaluate_program_parallel_with_memo(&program, &clf, &train, None, threads, &bank_p);
            // The sequential call warmed bank_p, so the parallel replay is
            // the "second" evaluation for every thread count.
            assert_eq!(par, second, "threads = {threads}");
        }
    }

    #[test]
    fn synthesize_with_memo_runs_and_matches_plain_synthesis_when_inert() {
        let clf = center_weak_classifier();
        let train = train_set(2);
        let config = SynthConfig {
            max_iterations: 3,
            beta: 0.01,
            seed: 5,
            ..SynthConfig::default()
        };
        let bank = MemoBank::new(train.len(), crate::oracle::DEFAULT_MEMO_CAPACITY);
        let memoed = synthesize_with_memo(&clf, &train, &config, &bank);
        // The synthesized program still attacks the training set.
        let check = evaluate_program(&memoed.program, &clf, &train, None);
        assert!(check.avg_queries.is_finite());
        if cfg!(not(feature = "query-memo")) {
            // Inert bank → literally the plain entry point.
            assert_eq!(memoed, synthesize(&clf, &train, &config));
        }
        // And the parallel form agrees with the sequential one for any
        // thread count (fresh banks: the one above is warm).
        for threads in [1, 3] {
            let bank_a = MemoBank::new(train.len(), crate::oracle::DEFAULT_MEMO_CAPACITY);
            let bank_b = MemoBank::new(train.len(), crate::oracle::DEFAULT_MEMO_CAPACITY);
            let seq = synthesize_with_memo(&clf, &train, &config, &bank_a);
            let cfg_threads = SynthConfig {
                threads,
                ..config.clone()
            };
            let par = synthesize_parallel_with_memo(&clf, &train, &cfg_threads, &bank_b);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn per_image_budget_caps_spending() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let train = vec![
            (Image::filled(5, 5, Pixel([0.5, 0.5, 0.5])), 0),
            (Image::filled(5, 5, Pixel([0.2, 0.2, 0.2])), 0),
        ];
        let eval = evaluate_program(&Program::constant(false), &clf, &train, Some(10));
        assert_eq!(eval.queries_spent, 20);
        assert_eq!(eval.successes, 0);
    }

    #[test]
    fn acceptance_probability_behaves_like_mh() {
        // Better candidate (fewer queries) is always accepted.
        assert_eq!(acceptance_probability(0.01, 100.0, 50.0), 1.0);
        assert_eq!(acceptance_probability(0.01, 100.0, 100.0), 1.0);
        // Worse candidate is accepted with exp(-β·Δ).
        let p = acceptance_probability(0.01, 100.0, 200.0);
        assert!((p - (-1.0f64).exp()).abs() < 1e-12, "{p}");
        // Infinite incumbents are always replaced; infinite candidates never
        // replace finite incumbents.
        assert_eq!(acceptance_probability(0.01, f64::INFINITY, 10.0), 1.0);
        assert_eq!(acceptance_probability(0.01, 10.0, f64::INFINITY), 0.0);
        assert_eq!(
            acceptance_probability(0.01, f64::INFINITY, f64::INFINITY),
            1.0
        );
    }

    #[test]
    fn acceptance_probability_never_underflows_to_nan() {
        let p = acceptance_probability(1.0, 0.0, 1e6);
        assert!(p >= 0.0 && !p.is_nan());
    }

    #[test]
    fn synthesize_runs_all_iterations_and_tracks_queries() {
        let clf = center_weak_classifier();
        let train = train_set(2);
        let config = SynthConfig {
            max_iterations: 5,
            beta: 0.01,
            seed: 42,
            ..SynthConfig::default()
        };
        let report = synthesize(&clf, &train, &config);
        assert_eq!(report.iterations.len(), 5);
        let sum: u64 = report.initial.queries_spent
            + report
                .iterations
                .iter()
                .map(|r| r.evaluation.queries_spent)
                .sum::<u64>();
        assert_eq!(report.total_queries, sum);
        // cumulative_queries is non-decreasing.
        let mut prev = report.initial.queries_spent;
        for rec in &report.iterations {
            assert!(rec.cumulative_queries >= prev);
            prev = rec.cumulative_queries;
        }
    }

    #[test]
    fn synthesize_is_deterministic_under_seed() {
        let clf = center_weak_classifier();
        let train = train_set(2);
        let config = SynthConfig {
            max_iterations: 4,
            beta: 0.01,
            seed: 7,
            ..SynthConfig::default()
        };
        let a = synthesize(&clf, &train, &config);
        let b = synthesize(&clf, &train, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn synthesized_program_is_no_worse_than_initial_on_training() {
        // MH keeps the incumbent only through accepted moves; with the
        // always-accept-on-improvement rule the final program's training
        // average should not be dramatically worse than the initial one.
        // We check the weaker, deterministic property: the final program's
        // evaluation equals the evaluation of the last accepted candidate.
        let clf = center_weak_classifier();
        let train = train_set(3);
        let config = SynthConfig {
            max_iterations: 12,
            beta: 0.05,
            seed: 3,
            ..SynthConfig::default()
        };
        let report = synthesize(&clf, &train, &config);
        let last_accepted = report
            .iterations
            .iter()
            .rev()
            .find(|r| r.accepted)
            .map(|r| r.candidate.clone());
        let expected = last_accepted.unwrap_or(report.initial_program.clone());
        assert_eq!(report.program, expected);
        // And re-evaluating it reproduces a finite average on this
        // attackable classifier.
        let eval = evaluate_program(&report.program, &clf, &train, None);
        assert!(eval.avg_queries.is_finite());
    }

    #[test]
    fn accepted_trajectory_starts_at_initial_and_is_monotone_in_queries() {
        let clf = center_weak_classifier();
        let train = train_set(2);
        let config = SynthConfig {
            max_iterations: 8,
            beta: 0.01,
            seed: 11,
            ..SynthConfig::default()
        };
        let report = synthesize(&clf, &train, &config);
        let traj = report.accepted_trajectory();
        assert_eq!(traj[0].0, 0);
        for w in traj.windows(2) {
            assert!(w[0].0 < w[1].0, "iterations increase");
            assert!(w[0].1 <= w[1].1, "queries increase");
        }
    }

    #[test]
    fn filter_attackable_keeps_only_vulnerable_images() {
        let clf = center_weak_classifier();
        let mut train = train_set(2);
        // Labelled 1 while the classifier answers 0: already misclassified,
        // so the sketch never reports a Success for it.
        train.push((Image::filled(9, 9, Pixel([0.9, 0.9, 0.9])), 1));
        let (kept, queries) = filter_attackable(&clf, &train);
        assert_eq!(kept.len(), 2, "only the genuinely attackable images remain");
        assert!(queries >= 2);
    }

    #[test]
    fn prefilter_reduces_iteration_cost_without_changing_result_program_validity() {
        let clf = center_weak_classifier();
        let mut train = train_set(2);
        // An already-misclassified image never becomes a Success, so the
        // prefilter drops it.
        train.push((Image::filled(9, 9, Pixel([0.7, 0.7, 0.7])), 1));
        let base = SynthConfig {
            max_iterations: 4,
            beta: 0.01,
            seed: 9,
            ..SynthConfig::default()
        };
        let without = synthesize(&clf, &train, &base);
        let with = synthesize(
            &clf,
            &train,
            &SynthConfig {
                prefilter: true,
                ..base
            },
        );
        assert_eq!(with.prefiltered, 1);
        assert_eq!(without.prefiltered, 0);
        // The prefiltered run spends fewer queries per iteration (the
        // dropped image costs a fixed amount every iteration otherwise).
        let per_iter_with = with.iterations[0].evaluation.queries_spent;
        let per_iter_without = without.iterations[0].evaluation.queries_spent;
        assert!(per_iter_with < per_iter_without);
        // And the synthesized program still attacks the attackable set.
        let eval = evaluate_program(&with.program, &clf, &train_set(2), None);
        assert!(eval.avg_queries.is_finite());
    }

    #[test]
    fn prefilter_falls_back_when_nothing_is_attackable() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let train = vec![(Image::filled(3, 3, Pixel([0.5, 0.5, 0.5])), 0)];
        let report = synthesize(
            &clf,
            &train,
            &SynthConfig {
                max_iterations: 1,
                prefilter: true,
                ..SynthConfig::default()
            },
        );
        assert_eq!(report.prefiltered, 0, "fallback keeps the full set");
        assert!(report.initial.avg_queries.is_infinite());
    }

    #[test]
    fn extended_grammar_synthesis_runs_and_stays_well_typed() {
        let clf = center_weak_classifier();
        let train = train_set(2);
        let config = SynthConfig {
            max_iterations: 6,
            seed: 4,
            grammar: GrammarConfig::extended(3),
            ..SynthConfig::default()
        };
        let report = synthesize(&clf, &train, &config);
        let dims = ImageDims::new(9, 9);
        assert!(crate::dsl::is_well_typed(&report.program, dims));
        for rec in &report.iterations {
            assert!(
                crate::dsl::is_well_typed(&rec.candidate, dims),
                "{}",
                rec.candidate
            );
        }
        // And the result still attacks the training set.
        let eval = evaluate_program(&report.program, &clf, &train, None);
        assert!(eval.avg_queries.is_finite());
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn synthesize_rejects_empty_training_set() {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        synthesize(&clf, &[], &SynthConfig::default());
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let clf = center_weak_classifier();
        let train = train_set(7);
        let program = Program::constant(false);
        for budget in [None, Some(10)] {
            let reference = evaluate_program(&program, &clf, &train, budget);
            for threads in [1, 2, 4, 16] {
                let parallel = evaluate_program_parallel(&program, &clf, &train, budget, threads);
                assert_eq!(
                    parallel, reference,
                    "threads = {threads}, budget = {budget:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_filter_is_identical_to_sequential() {
        let clf = center_weak_classifier();
        let mut train = train_set(5);
        train.push((Image::filled(9, 9, Pixel([0.9, 0.9, 0.9])), 1));
        let reference = filter_attackable(&clf, &train);
        for threads in [1, 2, 4] {
            assert_eq!(
                filter_attackable_parallel(&clf, &train, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_synthesis_trajectory() {
        // The headline determinism guarantee: same seed, different worker
        // counts, identical accepted-program trajectory and query totals.
        let clf = center_weak_classifier();
        let train = train_set(3);
        let base = SynthConfig {
            max_iterations: 6,
            beta: 0.01,
            seed: 13,
            prefilter: true,
            threads: 1,
            ..SynthConfig::default()
        };
        let one = synthesize_parallel(&clf, &train, &base);
        let four = synthesize_parallel(
            &clf,
            &train,
            &SynthConfig {
                threads: 4,
                ..base.clone()
            },
        );
        assert_eq!(one.accepted_trajectory(), four.accepted_trajectory());
        assert_eq!(one.total_queries, four.total_queries);
        assert_eq!(one, four);
        // And both agree with the sequential entry point.
        let sequential = synthesize(&clf, &train, &base);
        assert_eq!(sequential, one);
    }
}
