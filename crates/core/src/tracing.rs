//! Glue between oracle-query sites and [`telemetry::trace`]: a helper
//! that derives the margin, predicted class, and label flip from one
//! query's scores and records the trace event. Inert (one branch) unless
//! a trace is armed; compiles to a no-op without the `trace` feature.

use crate::goal::AttackGoal;
use crate::oracle::argmax;
use crate::pair::{Location, Pixel};
use crate::telemetry::trace;

/// Records one oracle query in the active trace.
///
/// `seq` is the query's 1-based ordinal within its per-image run (the
/// oracle's count minus the count at run start); `pixel` is the perturbed
/// pixel, or `None` for a full-image (baseline) query. Routing and
/// delta-cache tags are joined in from the thread-local pending tags the
/// oracle and inference engine set during the call.
#[inline]
pub fn record_oracle_query(
    phase: &'static str,
    seq: u64,
    pixel: Option<(Location, Pixel)>,
    scores: &[f32],
    true_class: usize,
    goal: AttackGoal,
) {
    if !trace::armed() {
        return;
    }
    let pred = argmax(scores);
    trace::record_query(trace::QueryInfo {
        phase,
        seq,
        pixel: pixel.map(|(loc, px)| (u32::from(loc.row), u32::from(loc.col), px.0)),
        margin: goal.margin(scores, true_class),
        pred: pred as u32,
        flip: pred != true_class,
    });
}
