//! Property tests of the cross-restart query memo: random images and
//! candidate streams against a reference oracle without a memo.
//!
//! Three claims, each over arbitrary inputs rather than the handful of
//! fixtures the unit tests pin down:
//!  1. round-trip — whatever was paid for once is served back
//!     bit-identical, uncounted, on every later request;
//!  2. no false hits — keys differing in the base image, the location,
//!     or the perturbation colour never alias, even though lookups go
//!     through an FNV-hashed map (full-tuple equality backs the hash);
//!  3. eviction — a capped memo holds exactly the newest `cap` distinct
//!     keys (deterministic FIFO on first-insert order), so which repeat
//!     is free is a pure function of the query stream.
//!
//! Only compiled with the `query-memo` feature: without it the memo is
//! an inert stub and there is nothing to test.
#![cfg(feature = "query-memo")]

use oppsla_core::image::Image;
use oppsla_core::oracle::{image_content_id, FnClassifier, Oracle, QueryMemo};
use oppsla_core::pair::{Location, Pixel};
use proptest::prelude::*;

/// A classifier whose scores depend on every channel of the perturbed
/// image, so any aliasing between distinct memo keys shows up as a
/// wrong score, not a silent coincidence.
fn content_clf() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
    FnClassifier::new(3, |img: &Image| {
        let mut acc = [0.0f32; 3];
        for (i, v) in img.data().iter().enumerate() {
            acc[i % 3] += v * (i as f32 + 1.0);
        }
        acc.to_vec()
    })
}

/// An arbitrary small image: 2..=4 per side, channels quantized to a
/// 1/32 grid (exact in f32, so content ids are stable bit patterns).
fn image_strategy() -> impl Strategy<Value = Image> {
    (2usize..=4, 2usize..=4).prop_flat_map(|(h, w)| {
        proptest::collection::vec(0u8..=32, h * w * 3)
            .prop_map(move |vals| Image::new(h, w, vals.iter().map(|&v| v as f32 / 32.0).collect()))
    })
}

/// An arbitrary candidate on a 4x4 grid (clamped to the image inside the
/// tests), likewise quantized.
fn candidate_strategy() -> impl Strategy<Value = (Location, Pixel)> {
    (0u16..4, 0u16..4, 0u8..=32, 0u8..=32, 0u8..=32).prop_map(|(r, c, pr, pg, pb)| {
        (
            Location::new(r, c),
            Pixel([pr as f32 / 32.0, pg as f32 / 32.0, pb as f32 / 32.0]),
        )
    })
}

fn clamp(image: &Image, loc: Location) -> Location {
    Location::new(
        loc.row.min(image.height() as u16 - 1),
        loc.col.min(image.width() as u16 - 1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip: replaying an arbitrary candidate stream (repeats and
    /// all) through a warm memo costs zero queries and returns scores
    /// bit-identical to the unmemoized reference, while the cold pass
    /// pays exactly once per *distinct* key — memo-on counts never
    /// exceed memo-off counts on any stream.
    #[test]
    fn warm_memo_round_trips_bit_identically(
        image in image_strategy(),
        stream in proptest::collection::vec(candidate_strategy(), 1..40),
    ) {
        let clf = content_clf();
        let memo = QueryMemo::new();
        let mut reference = Oracle::new(&clf);
        let mut cold = Oracle::new(&clf).with_memo(&memo);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        let mut distinct = std::collections::HashSet::new();
        for &(loc, px) in &stream {
            let loc = clamp(&image, loc);
            distinct.insert((loc.row, loc.col, px.0.map(f32::to_bits)));
            reference.query_pixel_delta_into(&image, loc, px, &mut want).unwrap();
            cold.query_pixel_delta_into(&image, loc, px, &mut got).unwrap();
            prop_assert_eq!(&got, &want, "cold pass diverged from reference");
        }
        prop_assert_eq!(cold.queries(), distinct.len() as u64);
        prop_assert!(cold.queries() <= reference.queries());
        prop_assert_eq!(cold.queries() + cold.memo_hits(), stream.len() as u64);

        // Second restart: every candidate is already paid for.
        let mut warm = Oracle::new(&clf).with_memo(&memo);
        for &(loc, px) in &stream {
            let loc = clamp(&image, loc);
            reference.query_pixel_delta_into(&image, loc, px, &mut want).unwrap();
            warm.query_pixel_delta_into(&image, loc, px, &mut got).unwrap();
            prop_assert_eq!(&got, &want, "warm pass diverged from reference");
        }
        prop_assert_eq!(warm.queries(), 0, "a warm memo pays for nothing");
        prop_assert_eq!(warm.memo_hits(), stream.len() as u64);
    }

    /// No false hits: two keys that differ anywhere — base image content,
    /// location, or perturbation colour — never serve each other's
    /// scores. A warm memo for one key must miss (and pay) for the other.
    #[test]
    fn differing_keys_never_alias(
        image_a in image_strategy(),
        image_b in image_strategy(),
        cand_a in candidate_strategy(),
        cand_b in candidate_strategy(),
    ) {
        let clf = content_clf();
        let memo = QueryMemo::new();
        let loc_a = clamp(&image_a, cand_a.0);
        let mut warm = Oracle::new(&clf).with_memo(&memo);
        let mut buf = Vec::new();
        warm.query_pixel_delta_into(&image_a, loc_a, cand_a.1, &mut buf).unwrap();
        prop_assert_eq!(warm.queries(), 1);

        // The same candidate against a different image only hits when
        // the images are bit-identical (content id, not address).
        let mut probe = Oracle::new(&clf).with_memo(&memo);
        let loc_on_b = clamp(&image_b, cand_a.0);
        probe.query_pixel_delta_into(&image_b, loc_on_b, cand_a.1, &mut buf).unwrap();
        let same_key = image_content_id(&image_a) == image_content_id(&image_b)
            && loc_on_b == loc_a;
        prop_assert_eq!(probe.memo_hits() == 1, same_key, "image identity mismatch");

        // A different candidate against the warm image only hits when
        // the (location, colour) tuple is exactly equal.
        let mut probe = Oracle::new(&clf).with_memo(&memo);
        let loc_b = clamp(&image_a, cand_b.0);
        probe.query_pixel_delta_into(&image_a, loc_b, cand_b.1, &mut buf).unwrap();
        let same_cand = loc_b == loc_a
            && cand_b.1.0.map(f32::to_bits) == cand_a.1.0.map(f32::to_bits);
        prop_assert_eq!(probe.memo_hits() == 1, same_cand, "candidate identity mismatch");
    }

    /// Eviction: with capacity `cap`, one pass over `n` distinct keys
    /// leaves exactly the newest `cap` of them cached — re-requesting
    /// the newest `cap` is free, everything older pays again. FIFO on
    /// first-insert order, a pure function of the stream.
    #[test]
    fn capped_memo_evicts_oldest_first(
        image in image_strategy(),
        cap in 1usize..6,
        extra in 1usize..6,
    ) {
        let clf = content_clf();
        // Distinct keys by construction: vary only the red channel on a
        // fixed quantized grid.
        let n = cap + extra;
        let candidates: Vec<(Location, Pixel)> = (0..n)
            .map(|i| (Location::new(0, 0), Pixel([i as f32 / 32.0, 0.5, 0.5])))
            .collect();
        let memo = QueryMemo::with_capacity(cap);
        let mut oracle = Oracle::new(&clf).with_memo(&memo);
        let mut buf = Vec::new();
        for &(loc, px) in &candidates {
            oracle.begin_candidate_scope();
            oracle.query_pixel_delta_into(&image, loc, px, &mut buf).unwrap();
        }
        prop_assert_eq!(oracle.queries(), n as u64);
        prop_assert_eq!(memo.len(), cap, "cap must hold after overflow");

        // The newest `cap` keys are hits (checked before any re-insert
        // can evict), the `extra` oldest were evicted and pay again.
        let mut probe = Oracle::new(&clf).with_memo(&memo);
        for &(loc, px) in &candidates[extra..] {
            probe.begin_candidate_scope();
            probe.query_pixel_delta_into(&image, loc, px, &mut buf).unwrap();
        }
        prop_assert_eq!(probe.queries(), 0, "newest cap keys survive");
        prop_assert_eq!(probe.memo_hits(), cap as u64);
        for &(loc, px) in &candidates[..extra] {
            probe.begin_candidate_scope();
            probe.query_pixel_delta_into(&image, loc, px, &mut buf).unwrap();
        }
        prop_assert_eq!(probe.queries(), extra as u64, "oldest keys were evicted");
    }
}
