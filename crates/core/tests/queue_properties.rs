//! Model-based property tests of [`PairQueue`]: random interleavings of
//! the four inner-loop operations (pop, remove, push_back,
//! next_at_location) against a naive `Vec<Pair>` mirror.
//!
//! The queue keeps a per-location side index (`closest_pert` support)
//! alongside the intrusive list; the `expect("per-location list out of
//! sync")` in `detach` is the invariant these interleavings exercise.

use oppsla_core::image::Image;
use oppsla_core::pair::{Corner, Location, Pair, Pixel};
use oppsla_core::queue::PairQueue;
use proptest::prelude::*;

const HEIGHT: u16 = 3;
const WIDTH: u16 = 3;
const NUM_PAIRS: u8 = 8 * (HEIGHT as u8) * (WIDTH as u8);

/// One queue operation; the payload indexes the pair/location universe so
/// any `u8` shrinks to a valid target.
#[derive(Debug, Clone, Copy)]
enum Op {
    Pop,
    Remove(u8),
    PushBack(u8),
    NextAtLocation(u8),
}

fn decode_pair(id: u8) -> Pair {
    let li = (id / 8) as u16;
    let loc = Location::new(li / WIDTH, li % WIDTH);
    Pair::new(loc, Corner::new(id % 8))
}

fn decode_location(id: u8) -> Location {
    let li = id as u16 % (HEIGHT * WIDTH);
    Location::new(li / WIDTH, li % WIDTH)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Pop),
        (0..NUM_PAIRS).prop_map(Op::Remove),
        (0..NUM_PAIRS).prop_map(Op::PushBack),
        (0..NUM_PAIRS).prop_map(Op::NextAtLocation),
    ]
}

/// Applies `op` to the queue and the `Vec<Pair>` mirror, checking that
/// both observe the same result.
fn apply(queue: &mut PairQueue, model: &mut Vec<Pair>, op: Op) -> Result<(), TestCaseError> {
    match op {
        Op::Pop => {
            let expected = (!model.is_empty()).then(|| model.remove(0));
            prop_assert_eq!(queue.pop(), expected);
        }
        Op::Remove(id) => {
            let pair = decode_pair(id);
            let pos = model.iter().position(|&p| p == pair);
            if let Some(pos) = pos {
                model.remove(pos);
            }
            prop_assert_eq!(queue.remove(pair), pos.is_some());
        }
        Op::PushBack(id) => {
            let pair = decode_pair(id);
            let pos = model.iter().position(|&p| p == pair);
            if let Some(pos) = pos {
                model.remove(pos);
                model.push(pair);
            }
            prop_assert_eq!(queue.push_back(pair), pos.is_some());
        }
        Op::NextAtLocation(id) => {
            let loc = decode_location(id);
            let expected = model.iter().copied().find(|p| p.location == loc);
            prop_assert_eq!(queue.next_at_location(loc), expected);
        }
    }
    Ok(())
}

/// Full-state equivalence: list order, length, membership, and the
/// per-location index all agree with the mirror.
fn check_state(queue: &PairQueue, model: &[Pair]) -> Result<(), TestCaseError> {
    prop_assert_eq!(queue.len(), model.len(), "len() desynced from the model");
    let iterated: Vec<Pair> = queue.iter().collect();
    prop_assert_eq!(
        iterated.len(),
        queue.len(),
        "len() disagrees with iter().count()"
    );
    prop_assert_eq!(&iterated, model, "queue order desynced from the model");
    for id in 0..NUM_PAIRS {
        let pair = decode_pair(id);
        prop_assert_eq!(queue.contains(pair), model.contains(&pair));
    }
    for li in 0..(HEIGHT * WIDTH) as u8 {
        let loc = decode_location(li);
        let expected = model.iter().copied().find(|p| p.location == loc);
        prop_assert_eq!(
            queue.next_at_location(loc),
            expected,
            "per-location index desynced at {:?}",
            loc
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of the four operations keeps the intrusive list,
    /// `len()`, and the per-location side index consistent with a naive
    /// mirror.
    #[test]
    fn random_interleavings_never_desync(
        grey in 0u8..=255,
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let v = grey as f32 / 255.0;
        let image = Image::filled(HEIGHT as usize, WIDTH as usize, Pixel([v, v, v]));
        let mut queue = PairQueue::for_image(&image);
        let mut model: Vec<Pair> = queue.iter().collect();
        prop_assert_eq!(model.len(), NUM_PAIRS as usize);

        for op in ops {
            apply(&mut queue, &mut model, op)?;
            check_state(&queue, &model)?;
        }
    }

    /// Draining an interleaved queue by popping always yields exactly the
    /// mirror's remaining pairs and ends empty.
    #[test]
    fn drain_after_interleaving_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let image = Image::filled(HEIGHT as usize, WIDTH as usize, Pixel([0.0, 0.0, 0.0]));
        let mut queue = PairQueue::for_image(&image);
        let mut model: Vec<Pair> = queue.iter().collect();
        for op in ops {
            apply(&mut queue, &mut model, op)?;
        }
        let mut drained = Vec::new();
        while let Some(p) = queue.pop() {
            drained.push(p);
        }
        prop_assert_eq!(drained, model);
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.len(), 0);
    }
}
