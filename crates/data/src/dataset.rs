//! Labeled image collections, generation, and splits.

use crate::render::{draw, Canvas, Placement, ShapeKind};
use oppsla_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Specification of one synthetic class: a shape kind plus a colour family.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Human-readable class name (e.g. `"disc/warm"`).
    pub name: String,
    /// Shape drawn for this class.
    pub kind: ShapeKind,
    /// Base object colour; jittered per sample.
    pub color: [f32; 3],
    /// Base background colour; jittered per sample.
    pub background: [f32; 3],
}

/// Specification of a whole synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (used in reports).
    pub name: String,
    /// Image height and width (square images).
    pub size: usize,
    /// Per-class specifications; the class index is the position here.
    pub classes: Vec<ClassSpec>,
    /// Amplitude of the per-pixel uniform noise.
    pub noise: f32,
}

impl DatasetSpec {
    /// The CIFAR-10-scale dataset: 32×32, ten classes, one shape kind per
    /// class with a warm palette.
    pub fn shapes32() -> Self {
        let classes = ShapeKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &kind)| ClassSpec {
                name: format!("{kind:?}/warm").to_lowercase(),
                kind,
                color: WARM_COLORS[i % WARM_COLORS.len()],
                background: [0.25, 0.28, 0.32],
            })
            .collect();
        DatasetSpec {
            name: "shapes32".into(),
            size: 32,
            classes,
            noise: 0.06,
        }
    }

    /// The ImageNet-scale stand-in: 64×64, twenty classes (ten shape kinds
    /// × two colour families), which quadruples the one-pixel search space
    /// relative to [`DatasetSpec::shapes32`] (32,768 vs 8,192 pairs).
    pub fn shapes64() -> Self {
        let mut classes = Vec::with_capacity(20);
        for (palette_name, palette, background) in [
            ("warm", WARM_COLORS, [0.22, 0.25, 0.30]),
            ("cool", COOL_COLORS, [0.45, 0.40, 0.33]),
        ] {
            for (i, &kind) in ShapeKind::ALL.iter().enumerate() {
                classes.push(ClassSpec {
                    name: format!("{kind:?}/{palette_name}").to_lowercase(),
                    kind,
                    color: palette[i % palette.len()],
                    background,
                });
            }
        }
        DatasetSpec {
            name: "shapes64".into(),
            size: 64,
            classes,
            noise: 0.06,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Renders one sample of `class` using `rng` for all jitter.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn render_sample(&self, class: usize, rng: &mut impl Rng) -> Tensor {
        assert!(class < self.classes.len(), "class {class} out of range");
        let spec = &self.classes[class];
        let s = self.size as f32;
        let jitter = |rng: &mut dyn rand::RngCore, c: [f32; 3]| {
            [
                (c[0] + rng.gen_range(-0.12..0.12f32)).clamp(0.0, 1.0),
                (c[1] + rng.gen_range(-0.12..0.12f32)).clamp(0.0, 1.0),
                (c[2] + rng.gen_range(-0.12..0.12f32)).clamp(0.0, 1.0),
            ]
        };
        let background = jitter(rng, spec.background);
        let color = jitter(rng, spec.color);
        let mut canvas = Canvas::filled(self.size, self.size, background);
        let placement = Placement {
            center_row: s / 2.0 + rng.gen_range(-s / 8.0..s / 8.0),
            center_col: s / 2.0 + rng.gen_range(-s / 8.0..s / 8.0),
            radius: rng.gen_range(s / 5.0..s / 3.2),
            period: rng.gen_range(self.size / 10..self.size / 5).max(2),
        };
        draw(&mut canvas, spec.kind, color, placement);
        let noise = self.noise;
        canvas.perturb(|_, _, _| rng.gen_range(-noise..noise));
        canvas.into_tensor()
    }
}

const WARM_COLORS: [[f32; 3]; 10] = [
    [0.85, 0.25, 0.20],
    [0.90, 0.55, 0.15],
    [0.88, 0.80, 0.25],
    [0.60, 0.80, 0.30],
    [0.30, 0.75, 0.45],
    [0.25, 0.70, 0.75],
    [0.30, 0.45, 0.85],
    [0.55, 0.35, 0.85],
    [0.80, 0.30, 0.70],
    [0.85, 0.60, 0.55],
];

const COOL_COLORS: [[f32; 3]; 10] = [
    [0.15, 0.30, 0.55],
    [0.10, 0.45, 0.50],
    [0.20, 0.55, 0.65],
    [0.35, 0.60, 0.80],
    [0.10, 0.25, 0.35],
    [0.45, 0.50, 0.70],
    [0.25, 0.40, 0.45],
    [0.50, 0.65, 0.75],
    [0.15, 0.20, 0.60],
    [0.40, 0.45, 0.55],
];

/// A labeled image collection.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (propagated from the spec).
    pub name: String,
    /// `[3, size, size]` images.
    pub images: Vec<Tensor>,
    /// One class index per image.
    pub labels: Vec<usize>,
    /// Total number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Generates `per_class` samples of every class, deterministically from
    /// `seed`, in interleaved class order.
    pub fn generate(spec: &DatasetSpec, per_class: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(per_class * spec.num_classes());
        let mut labels = Vec::with_capacity(per_class * spec.num_classes());
        for _ in 0..per_class {
            for class in 0..spec.num_classes() {
                images.push(spec.render_sample(class, &mut rng));
                labels.push(class);
            }
        }
        Dataset {
            name: spec.name.clone(),
            images,
            labels,
            num_classes: spec.num_classes(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The samples of one class, in generation order.
    pub fn of_class(&self, class: usize) -> Vec<&Tensor> {
        self.images
            .iter()
            .zip(&self.labels)
            .filter(|(_, &l)| l == class)
            .map(|(img, _)| img)
            .collect()
    }

    /// Splits into `(front, back)` where `front` takes the first
    /// `fraction` of every class (generation order is interleaved, so a
    /// prefix split is already stratified).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn split(&self, fraction: f32) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f32 * fraction) as usize).clamp(1, self.len() - 1);
        let mk = |imgs: &[Tensor], labels: &[usize]| Dataset {
            name: self.name.clone(),
            images: imgs.to_vec(),
            labels: labels.to_vec(),
            num_classes: self.num_classes,
        };
        (
            mk(&self.images[..cut], &self.labels[..cut]),
            mk(&self.images[cut..], &self.labels[cut..]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes32_has_ten_classes_of_32() {
        let spec = DatasetSpec::shapes32();
        assert_eq!(spec.num_classes(), 10);
        assert_eq!(spec.size, 32);
    }

    #[test]
    fn shapes64_has_twenty_distinctly_named_classes() {
        let spec = DatasetSpec::shapes64();
        assert_eq!(spec.num_classes(), 20);
        let mut names: Vec<&str> = spec.classes.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "class names must be unique");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::shapes32();
        let a = Dataset::generate(&spec, 2, 99);
        let b = Dataset::generate(&spec, 2, 99);
        assert_eq!(a.labels, b.labels);
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::shapes32();
        let a = Dataset::generate(&spec, 1, 1);
        let b = Dataset::generate(&spec, 1, 2);
        assert_ne!(a.images[0].data(), b.images[0].data());
    }

    #[test]
    fn generate_is_class_balanced_and_interleaved() {
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, 3, 0);
        assert_eq!(d.len(), 30);
        for class in 0..10 {
            assert_eq!(d.of_class(class).len(), 3);
        }
        assert_eq!(&d.labels[..10], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn samples_are_valid_images() {
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, 1, 5);
        for img in &d.images {
            assert_eq!(img.shape().dims(), &[3, 32, 32]);
            assert!(img.is_finite());
            assert!(img.min() >= 0.0 && img.max() <= 1.0);
        }
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        // Mean per-class images should differ: a sanity check that the
        // renderers actually encode the label.
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, 4, 7);
        let mean = |class: usize| {
            let imgs = d.of_class(class);
            let mut acc = Tensor::zeros([3, 32, 32]);
            for img in &imgs {
                acc.add_scaled_inplace(img, 1.0 / 4.0);
            }
            acc
        };
        let m0 = mean(0);
        let m5 = mean(5);
        let diff: f32 =
            m0.sub(&m5).data().iter().map(|v| v.abs()).sum::<f32>() / (3.0 * 32.0 * 32.0);
        assert!(diff > 0.05, "class means too similar: {diff}");
    }

    #[test]
    fn split_is_stratified_prefix() {
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, 4, 0);
        let (train, test) = d.split(0.5);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 20);
        for class in 0..10 {
            assert_eq!(train.of_class(class).len(), 2);
            assert_eq!(test.of_class(class).len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn split_rejects_degenerate_fraction() {
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, 1, 0);
        let _ = d.split(1.0);
    }
}
