//! Seeded synthetic image datasets for the OPPSLA reproduction.
//!
//! The paper evaluates on CIFAR-10 and ImageNet, which are unavailable in
//! this offline environment. This crate substitutes parametric shape
//! datasets whose samples carry the statistics the attack's condition
//! language reads — centered objects, dark/bright regions, class-correlated
//! colours — at two scales:
//!
//! * [`DatasetSpec::shapes32`] — 32×32×3, 10 classes (CIFAR-10 scale;
//!   8·32·32 = 8,192 one-pixel candidates).
//! * [`DatasetSpec::shapes64`] — 64×64×3, 20 classes (ImageNet stand-in;
//!   8·64·64 = 32,768 candidates).
//!
//! # Examples
//!
//! ```
//! use oppsla_data::{Dataset, DatasetSpec};
//!
//! let spec = DatasetSpec::shapes32();
//! let data = Dataset::generate(&spec, 2, 42);
//! assert_eq!(data.len(), 20);
//! assert_eq!(data.images[0].shape().dims(), &[3, 32, 32]);
//! ```

#![warn(missing_docs)]

mod dataset;
pub mod render;

pub use dataset::{ClassSpec, Dataset, DatasetSpec};
