//! Shape rasterizers for the synthetic datasets.
//!
//! Each renderer draws a parametric object onto an RGB canvas. The
//! renderers deliberately produce the visual statistics the OPPSLA
//! condition language reads: centered objects (the `center(l)` condition),
//! dark and bright regions (`min`/`max`/`avg` pixel conditions), and
//! class-correlated colour distributions.

use oppsla_tensor::Tensor;

/// An RGB canvas in CHW layout with values in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Canvas {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Canvas {
    /// Creates a canvas filled with a solid colour.
    pub fn filled(height: usize, width: usize, color: [f32; 3]) -> Self {
        let mut data = Vec::with_capacity(3 * height * width);
        for c in color {
            data.extend(std::iter::repeat_n(c, height * width));
        }
        Canvas {
            height,
            width,
            data,
        }
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sets the pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, color: [f32; 3]) {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        let area = self.height * self.width;
        for (ch, c) in color.into_iter().enumerate() {
            self.data[ch * area + row * self.width + col] = c;
        }
    }

    /// The pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> [f32; 3] {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        let area = self.height * self.width;
        let off = row * self.width + col;
        [
            self.data[off],
            self.data[area + off],
            self.data[2 * area + off],
        ]
    }

    /// Adds `noise(row, col, channel)` to every sample and clamps to `[0,1]`.
    pub fn perturb(&mut self, mut noise: impl FnMut(usize, usize, usize) -> f32) {
        let area = self.height * self.width;
        for ch in 0..3 {
            for row in 0..self.height {
                for col in 0..self.width {
                    let v = &mut self.data[ch * area + row * self.width + col];
                    *v = (*v + noise(row, col, ch)).clamp(0.0, 1.0);
                }
            }
        }
    }

    /// Converts the canvas into a `[3, h, w]` tensor.
    pub fn into_tensor(self) -> Tensor {
        Tensor::from_vec([3, self.height, self.width], self.data)
    }
}

/// The shape kinds the synthetic classes are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// A filled disc.
    Disc,
    /// A hollow ring.
    Ring,
    /// A filled axis-aligned square.
    Square,
    /// A square outline.
    SquareOutline,
    /// A plus-shaped cross.
    Cross,
    /// Horizontal stripes over the whole canvas.
    HorizontalStripes,
    /// Vertical stripes over the whole canvas.
    VerticalStripes,
    /// Diagonal stripes over the whole canvas.
    DiagonalStripes,
    /// A checkerboard over the whole canvas.
    Checkerboard,
    /// A soft radial blob (Gaussian falloff).
    Blob,
}

impl ShapeKind {
    /// The ten kinds, in class order.
    pub const ALL: [ShapeKind; 10] = [
        ShapeKind::Disc,
        ShapeKind::Ring,
        ShapeKind::Square,
        ShapeKind::SquareOutline,
        ShapeKind::Cross,
        ShapeKind::HorizontalStripes,
        ShapeKind::VerticalStripes,
        ShapeKind::DiagonalStripes,
        ShapeKind::Checkerboard,
        ShapeKind::Blob,
    ];
}

/// Placement and size of a rendered object.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// Object centre row.
    pub center_row: f32,
    /// Object centre column.
    pub center_col: f32,
    /// Characteristic radius / half-extent in pixels.
    pub radius: f32,
    /// Stripe or checker period in pixels (texture kinds only).
    pub period: usize,
}

/// Draws `kind` in `color` at `placement` on `canvas`.
///
/// Texture kinds (stripes, checkerboard) cover the whole canvas and ignore
/// the centre; object kinds are local.
pub fn draw(canvas: &mut Canvas, kind: ShapeKind, color: [f32; 3], placement: Placement) {
    let (h, w) = (canvas.height(), canvas.width());
    let (cr, cc, r) = (
        placement.center_row,
        placement.center_col,
        placement.radius.max(1.0),
    );
    let period = placement.period.max(2);
    for row in 0..h {
        for col in 0..w {
            let dy = row as f32 - cr;
            let dx = col as f32 - cc;
            let dist = (dy * dy + dx * dx).sqrt();
            let inside = match kind {
                ShapeKind::Disc => dist <= r,
                ShapeKind::Ring => dist <= r && dist >= r * 0.6,
                ShapeKind::Square => dy.abs() <= r && dx.abs() <= r,
                ShapeKind::SquareOutline => {
                    let m = dy.abs().max(dx.abs());
                    m <= r && m >= r * 0.6
                }
                ShapeKind::Cross => {
                    (dy.abs() <= r * 0.35 && dx.abs() <= r)
                        || (dx.abs() <= r * 0.35 && dy.abs() <= r)
                }
                ShapeKind::HorizontalStripes => (row / period).is_multiple_of(2),
                ShapeKind::VerticalStripes => (col / period).is_multiple_of(2),
                ShapeKind::DiagonalStripes => ((row + col) / period).is_multiple_of(2),
                ShapeKind::Checkerboard => ((row / period) + (col / period)).is_multiple_of(2),
                ShapeKind::Blob => false, // handled below with soft blending
            };
            if inside {
                canvas.set(row, col, color);
            } else if kind == ShapeKind::Blob {
                let weight = (-dist * dist / (2.0 * r * r)).exp();
                if weight > 0.05 {
                    let bg = canvas.get(row, col);
                    canvas.set(
                        row,
                        col,
                        [
                            bg[0] + (color[0] - bg[0]) * weight,
                            bg[1] + (color[1] - bg[1]) * weight,
                            bg[2] + (color[2] - bg[2]) * weight,
                        ],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_colored(canvas: &Canvas, color: [f32; 3]) -> usize {
        let mut n = 0;
        for row in 0..canvas.height() {
            for col in 0..canvas.width() {
                if canvas.get(row, col) == color {
                    n += 1;
                }
            }
        }
        n
    }

    const RED: [f32; 3] = [1.0, 0.0, 0.0];
    const BLACK: [f32; 3] = [0.0, 0.0, 0.0];

    fn centered() -> Placement {
        Placement {
            center_row: 8.0,
            center_col: 8.0,
            radius: 4.0,
            period: 4,
        }
    }

    #[test]
    fn canvas_round_trips_pixels() {
        let mut c = Canvas::filled(4, 4, BLACK);
        c.set(1, 2, RED);
        assert_eq!(c.get(1, 2), RED);
        assert_eq!(c.get(0, 0), BLACK);
        let t = c.into_tensor();
        assert_eq!(t.shape().dims(), &[3, 4, 4]);
        assert_eq!(t.at(&[0, 1, 2]), 1.0);
    }

    #[test]
    fn disc_is_centered_and_bounded() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::Disc, RED, centered());
        assert_eq!(c.get(8, 8), RED, "centre belongs to the disc");
        assert_eq!(c.get(0, 0), BLACK, "corner stays background");
        let area = count_colored(&c, RED) as f32;
        let expected = std::f32::consts::PI * 16.0;
        assert!(
            (area - expected).abs() < 16.0,
            "disc area {area} vs {expected}"
        );
    }

    #[test]
    fn ring_has_a_hole() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::Ring, RED, centered());
        assert_eq!(c.get(8, 8), BLACK, "ring centre is hollow");
        assert_eq!(c.get(8, 11), RED, "ring band is drawn");
    }

    #[test]
    fn square_outline_is_hollow() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::SquareOutline, RED, centered());
        assert_eq!(c.get(8, 8), BLACK);
        assert_eq!(c.get(4, 8), RED);
    }

    #[test]
    fn stripes_alternate() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::HorizontalStripes, RED, centered());
        assert_eq!(c.get(0, 0), RED);
        assert_eq!(c.get(4, 0), BLACK);
        assert_eq!(c.get(8, 3), RED);
    }

    #[test]
    fn checkerboard_alternates_both_axes() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::Checkerboard, RED, centered());
        assert_eq!(c.get(0, 0), RED);
        assert_eq!(c.get(0, 4), BLACK);
        assert_eq!(c.get(4, 4), RED);
    }

    #[test]
    fn blob_fades_with_distance() {
        let mut c = Canvas::filled(16, 16, BLACK);
        draw(&mut c, ShapeKind::Blob, RED, centered());
        let center = c.get(8, 8)[0];
        let mid = c.get(8, 11)[0];
        let far = c.get(0, 0)[0];
        assert!(center > mid, "blob fades: centre {center} vs mid {mid}");
        assert!(mid > far, "blob fades: mid {mid} vs far {far}");
    }

    #[test]
    fn perturb_clamps_to_unit_interval() {
        let mut c = Canvas::filled(4, 4, [0.9, 0.9, 0.9]);
        c.perturb(|_, _, _| 0.5);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(c.get(row, col), [1.0, 1.0, 1.0]);
            }
        }
    }

    #[test]
    fn all_kinds_render_without_panicking() {
        for kind in ShapeKind::ALL {
            let mut c = Canvas::filled(32, 32, [0.2, 0.2, 0.2]);
            draw(
                &mut c,
                kind,
                [0.8, 0.5, 0.1],
                Placement {
                    center_row: 16.0,
                    center_col: 16.0,
                    radius: 8.0,
                    period: 5,
                },
            );
            let t = c.into_tensor();
            assert!(t.is_finite());
            assert!(t.max() <= 1.0 && t.min() >= 0.0);
        }
    }
}
