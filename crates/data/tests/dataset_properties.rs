//! Property-based tests of the synthetic dataset generators.

use oppsla_data::{Dataset, DatasetSpec};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every rendered sample is a valid [0,1] image of the right shape.
    #[test]
    fn samples_are_valid_for_any_seed_and_class(seed in any::<u64>(), class in 0usize..10) {
        let spec = DatasetSpec::shapes32();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let img = spec.render_sample(class, &mut rng);
        prop_assert_eq!(img.shape().dims(), &[3, 32, 32]);
        prop_assert!(img.is_finite());
        prop_assert!(img.min() >= 0.0 && img.max() <= 1.0);
    }

    /// Rendering is a pure function of (class, rng state).
    #[test]
    fn rendering_is_deterministic(seed in any::<u64>(), class in 0usize..10) {
        let spec = DatasetSpec::shapes32();
        let a = spec.render_sample(class, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = spec.render_sample(class, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.data(), b.data());
    }

    /// Noise actually varies samples of the same class.
    #[test]
    fn same_class_samples_differ(seed in any::<u64>(), class in 0usize..10) {
        let spec = DatasetSpec::shapes32();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = spec.render_sample(class, &mut rng);
        let b = spec.render_sample(class, &mut rng);
        prop_assert_ne!(a.data(), b.data());
    }

    /// Dataset generation yields exactly per_class×classes balanced labels.
    #[test]
    fn generation_is_balanced(per_class in 1usize..5, seed in any::<u64>()) {
        let spec = DatasetSpec::shapes32();
        let d = Dataset::generate(&spec, per_class, seed);
        prop_assert_eq!(d.len(), per_class * 10);
        for class in 0..10 {
            prop_assert_eq!(d.of_class(class).len(), per_class);
        }
    }

    /// shapes64 renders at its own scale for all 20 classes.
    #[test]
    fn shapes64_classes_render(seed in any::<u64>(), class in 0usize..20) {
        let spec = DatasetSpec::shapes64();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let img = spec.render_sample(class, &mut rng);
        prop_assert_eq!(img.shape().dims(), &[3, 64, 64]);
        prop_assert!(img.min() >= 0.0 && img.max() <= 1.0);
    }
}

/// The renderers must leave enough signal for a classifier: mean images of
/// different classes differ markedly for *every* pair of classes.
#[test]
fn all_class_pairs_are_distinguishable_in_expectation() {
    let spec = DatasetSpec::shapes32();
    let per_class = 6;
    let d = Dataset::generate(&spec, per_class, 31);
    let means: Vec<Vec<f32>> = (0..10)
        .map(|class| {
            let imgs = d.of_class(class);
            let mut acc = vec![0.0f32; 3 * 32 * 32];
            for img in &imgs {
                for (a, &v) in acc.iter_mut().zip(img.data()) {
                    *a += v / per_class as f32;
                }
            }
            acc
        })
        .collect();
    for i in 0..10 {
        for j in (i + 1)..10 {
            let diff: f32 = means[i]
                .iter()
                .zip(&means[j])
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / (3.0 * 32.0 * 32.0);
            assert!(
                diff > 0.01,
                "classes {i} and {j} are nearly identical in expectation ({diff})"
            );
        }
    }
}
