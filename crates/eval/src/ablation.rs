//! The Appendix C ablation (Table 2): OPPSLA vs Sketch+False vs
//! Sketch+Random vs Sparse-RS, per classifier, reporting average and
//! median query counts over the test set.

use crate::curves::{evaluate_attack, evaluate_attack_parallel, AttackEval};
use crate::report::{fmt_rate, fmt_stat, Table};
use oppsla_attacks::{Attack, SketchProgramAttack, SparseRs, SparseRsConfig};
use oppsla_core::dsl::{random_program, ImageDims, Program};
use oppsla_core::oracle::{BatchClassifier, Classifier};
use oppsla_core::synth::{
    evaluate_program, evaluate_program_parallel, Evaluation, FilterFn, Labeled, SynthConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Sketch+Random baseline (Appendix C): samples `samples` random
/// instantiations of the sketch, evaluates each on the training set, and
/// returns the one with the lowest average query count, together with the
/// total queries the selection itself spent.
///
/// # Panics
///
/// Panics if `samples` is zero or `train` is empty.
pub fn random_search_program(
    classifier: &dyn Classifier,
    train: &[Labeled],
    samples: usize,
    seed: u64,
    per_image_budget: Option<u64>,
) -> (Program, u64) {
    random_search_core(train, samples, seed, &mut |candidate, train| {
        evaluate_program(candidate, classifier, train, per_image_budget)
    })
}

/// [`random_search_program`] with each candidate evaluated across the
/// training set on `threads` workers. The selected program and query total
/// are identical to the sequential function for any thread count.
pub fn random_search_program_parallel(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    samples: usize,
    seed: u64,
    per_image_budget: Option<u64>,
    threads: usize,
) -> (Program, u64) {
    random_search_core(train, samples, seed, &mut |candidate, train| {
        evaluate_program_parallel(candidate, classifier, train, per_image_budget, threads)
    })
}

fn random_search_core(
    train: &[Labeled],
    samples: usize,
    seed: u64,
    eval: &mut dyn FnMut(&Program, &[Labeled]) -> Evaluation,
) -> (Program, u64) {
    assert!(samples > 0, "need at least one sample");
    assert!(!train.is_empty(), "training set is empty");
    let dims = ImageDims::new(train[0].0.height(), train[0].0.width());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best: Option<(Program, f64)> = None;
    let mut total_queries = 0u64;
    for _ in 0..samples {
        let candidate = random_program(&mut rng, dims);
        let evaluation = eval(&candidate, train);
        total_queries += evaluation.queries_spent;
        let better = match &best {
            Some((_, best_avg)) => evaluation.avg_queries < *best_avg,
            None => true,
        };
        if better {
            best = Some((candidate, evaluation.avg_queries));
        }
    }
    (best.expect("samples > 0").0, total_queries)
}

/// One row of the ablation: an attack's query statistics on a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Report name of the approach.
    pub approach: String,
    /// Mean queries over successful attacks.
    pub avg_queries: f64,
    /// Median queries over successful attacks.
    pub median_queries: f64,
    /// Overall success rate on valid images.
    pub success_rate: f64,
}

/// The full ablation for one classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Classifier label (e.g. the architecture id).
    pub classifier: String,
    /// One row per approach, in the paper's order.
    pub rows: Vec<AblationRow>,
}

/// Configuration of [`run_ablation`].
#[derive(Debug, Clone, PartialEq)]
pub struct AblationConfig {
    /// OPPSLA synthesis configuration (its `max_iterations` is also used
    /// as the Sketch+Random sample count, as in the paper's 210/210
    /// pairing).
    pub synth: SynthConfig,
    /// Per-image query budget for the test-set evaluation.
    pub eval_budget: u64,
    /// Sparse-RS configuration.
    pub sparse_rs: SparseRsConfig,
    /// Evaluation seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            synth: SynthConfig::default(),
            eval_budget: 10_000,
            sparse_rs: SparseRsConfig::default(),
            seed: 0,
        }
    }
}

/// Runs the Table 2 ablation for one classifier: synthesizes an OPPSLA
/// program from `train`, selects a Sketch+Random program with the same
/// candidate count, and evaluates OPPSLA, Sketch+False, Sketch+Random and
/// Sparse-RS on `test`.
pub fn run_ablation(
    label: &str,
    classifier: &dyn Classifier,
    train: &[Labeled],
    test: &[Labeled],
    config: &AblationConfig,
) -> AblationResult {
    let oppsla_report = oppsla_core::synth::synthesize(classifier, train, &config.synth);
    let random_train = random_train_set(train, config, &mut |t| {
        oppsla_core::synth::filter_attackable(classifier, t)
    });
    let (random_prog, _) = random_search_program(
        classifier,
        &random_train,
        config.synth.max_iterations.max(1),
        config.synth.seed.wrapping_add(0x5EED),
        config.synth.per_image_budget,
    );
    ablation_core(
        label,
        config,
        oppsla_report.program,
        random_prog,
        &mut |a| evaluate_attack(a, classifier, test, config.eval_budget, config.seed),
    )
}

/// [`run_ablation`] with synthesis, random search and the test-set
/// evaluations fanned out over [`SynthConfig::threads`] workers. The
/// resulting table is identical to the sequential one for any thread
/// count.
pub fn run_ablation_parallel(
    label: &str,
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    test: &[Labeled],
    config: &AblationConfig,
) -> AblationResult {
    let threads = config.synth.threads;
    let oppsla_report = oppsla_core::synth::synthesize_parallel(classifier, train, &config.synth);
    let random_train = random_train_set(train, config, &mut |t| {
        oppsla_core::synth::filter_attackable_parallel(classifier, t, threads)
    });
    let (random_prog, _) = random_search_program_parallel(
        classifier,
        &random_train,
        config.synth.max_iterations.max(1),
        config.synth.seed.wrapping_add(0x5EED),
        config.synth.per_image_budget,
        threads,
    );
    ablation_core(
        label,
        config,
        oppsla_report.program,
        random_prog,
        &mut |a| {
            evaluate_attack_parallel(
                a,
                classifier,
                test,
                config.eval_budget,
                config.seed,
                threads,
            )
        },
    )
}

/// [`run_ablation_parallel`] with telemetry plumbing: counters recorded
/// across the whole ablation (synthesis, random search, and all four
/// attack evaluations) are emitted to `sink` as one `ablation` event
/// tagged with `label`. The returned result is identical to the unplumbed
/// call.
pub fn run_ablation_parallel_with_sink(
    label: &str,
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    test: &[Labeled],
    config: &AblationConfig,
    sink: &mut dyn oppsla_core::telemetry::MetricsSink,
) -> AblationResult {
    use oppsla_core::telemetry::FieldValue;
    let labels = [
        ("label", FieldValue::Str(label.to_owned())),
        ("train_images", FieldValue::U64(train.len() as u64)),
        ("test_images", FieldValue::U64(test.len() as u64)),
    ];
    crate::obs::with_phase(sink, "ablation", &labels, || {
        run_ablation_parallel(label, classifier, train, test, config)
    })
}

/// Gives the random-search baseline the same prefiltering advantage as
/// OPPSLA so the comparison isolates the *search strategy*.
fn random_train_set(
    train: &[Labeled],
    config: &AblationConfig,
    filter: &mut FilterFn<'_>,
) -> Vec<Labeled> {
    if config.synth.prefilter {
        let (kept, _) = filter(train);
        if kept.is_empty() {
            train.to_vec()
        } else {
            kept
        }
    } else {
        train.to_vec()
    }
}

fn ablation_core(
    label: &str,
    config: &AblationConfig,
    oppsla_program: Program,
    random_prog: Program,
    eval: &mut dyn FnMut(&(dyn Attack + Sync)) -> AttackEval,
) -> AblationResult {
    let approaches: Vec<Box<dyn Attack + Sync>> = vec![
        Box::new(SketchProgramAttack::named(oppsla_program, "oppsla")),
        Box::new(SketchProgramAttack::named(
            Program::constant(false),
            "sketch+false",
        )),
        Box::new(SketchProgramAttack::named(random_prog, "sketch+random")),
        Box::new(SparseRs::new(config.sparse_rs.clone())),
    ];

    let rows = approaches
        .iter()
        .map(|attack| row_from_eval(&eval(attack.as_ref())))
        .collect();

    AblationResult {
        classifier: label.to_owned(),
        rows,
    }
}

fn row_from_eval(eval: &AttackEval) -> AblationRow {
    AblationRow {
        approach: eval.attack_name.clone(),
        avg_queries: eval.avg_queries(),
        median_queries: eval.median_queries(),
        success_rate: eval.success_rate(),
    }
}

/// Renders ablation results as the paper's Table 2 (plus a success-rate
/// column, which the paper states is equal across sketch instantiations).
pub fn ablation_table(results: &[AblationResult]) -> Table {
    let mut table = Table::new(
        "Table 2: impact of the synthesized conditions and the stochastic search",
        vec![
            "Classifier".into(),
            "Approach".into(),
            "Average #Queries".into(),
            "Median #Queries".into(),
            "Success rate".into(),
        ],
    );
    for result in results {
        for (i, row) in result.rows.iter().enumerate() {
            table.push_row(vec![
                if i == 0 {
                    result.classifier.clone()
                } else {
                    String::new()
                },
                row.approach.clone(),
                fmt_stat(row.avg_queries),
                fmt_stat(row.median_queries),
                fmt_rate(row.success_rate),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::image::Image;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};

    /// Weak near the centre: white pixel in the central 3×3 flips it.
    fn weak_clf() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, |img: &Image| {
            for row in 2..5u16 {
                for col in 2..5u16 {
                    if img.pixel(Location::new(row, col)) == Pixel([1.0, 1.0, 1.0]) {
                        return vec![0.2, 0.8];
                    }
                }
            }
            vec![0.8, 0.2]
        })
    }

    fn sets() -> (Vec<Labeled>, Vec<Labeled>) {
        let mk = |v: f32| (Image::filled(7, 7, Pixel([v, v, v])), 0usize);
        (vec![mk(0.3), mk(0.4)], vec![mk(0.35), mk(0.45), mk(0.5)])
    }

    #[test]
    fn random_search_returns_best_of_samples() {
        let clf = weak_clf();
        let (train, _) = sets();
        let (program, queries) = random_search_program(&clf, &train, 5, 0, None);
        assert!(queries > 0);
        // The selected program attacks the training set successfully.
        let eval = evaluate_program(&program, &clf, &train, None);
        assert!(eval.avg_queries.is_finite());
    }

    #[test]
    fn ablation_produces_four_rows_with_equal_sketch_success() {
        let clf = weak_clf();
        let (train, test) = sets();
        let config = AblationConfig {
            synth: SynthConfig {
                max_iterations: 3,
                ..SynthConfig::default()
            },
            eval_budget: 10_000,
            sparse_rs: SparseRsConfig {
                max_iterations: 2_000,
                ..SparseRsConfig::default()
            },
            seed: 0,
        };
        let result = run_ablation("toy", &clf, &train, &test, &config);
        assert_eq!(result.rows.len(), 4);
        let names: Vec<&str> = result.rows.iter().map(|r| r.approach.as_str()).collect();
        assert_eq!(
            names,
            ["oppsla", "sketch+false", "sketch+random", "sparse-rs"]
        );
        // The paper: all sketch instantiations share the same success rate.
        assert_eq!(result.rows[0].success_rate, result.rows[1].success_rate);
        assert_eq!(result.rows[0].success_rate, result.rows[2].success_rate);
        assert_eq!(result.rows[0].success_rate, 1.0);
    }

    #[test]
    fn parallel_ablation_matches_sequential() {
        let clf = weak_clf();
        let (train, test) = sets();
        let config = AblationConfig {
            synth: SynthConfig {
                max_iterations: 3,
                prefilter: true,
                ..SynthConfig::default()
            },
            eval_budget: 10_000,
            sparse_rs: SparseRsConfig {
                max_iterations: 1_000,
                ..SparseRsConfig::default()
            },
            seed: 0,
        };
        let sequential = run_ablation("toy", &clf, &train, &test, &config);
        for threads in [1, 4] {
            let par_config = AblationConfig {
                synth: SynthConfig {
                    threads,
                    ..config.synth.clone()
                },
                ..config.clone()
            };
            let parallel = run_ablation_parallel("toy", &clf, &train, &test, &par_config);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn ablation_table_renders_every_row() {
        let clf = weak_clf();
        let (train, test) = sets();
        let config = AblationConfig {
            synth: SynthConfig {
                max_iterations: 2,
                ..SynthConfig::default()
            },
            eval_budget: 10_000,
            sparse_rs: SparseRsConfig {
                max_iterations: 500,
                ..SparseRsConfig::default()
            },
            seed: 0,
        };
        let result = run_ablation("toy", &clf, &train, &test, &config);
        let table = ablation_table(&[result]);
        let s = table.to_string();
        assert!(s.contains("oppsla"), "{s}");
        assert!(s.contains("sketch+false"), "{s}");
        assert!(s.contains("sparse-rs"), "{s}");
    }
}
