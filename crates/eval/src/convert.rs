//! Conversions between the attack core's [`Image`] and the network
//! substrate's [`Tensor`] (both CHW, so conversions are plain copies).

use oppsla_core::image::Image;
use oppsla_tensor::Tensor;

/// Converts a `[3, h, w]` tensor into an attack-core image.
///
/// Out-of-range values (possible only from buggy upstream code — dataset
/// renderers clamp) are clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if the tensor is not `[3, h, w]`.
pub fn tensor_to_image(tensor: &Tensor) -> Image {
    let dims = tensor.shape().dims();
    assert_eq!(dims.len(), 3, "expected a [3, h, w] tensor");
    assert_eq!(dims[0], 3, "expected 3 channels");
    let data = tensor.data().iter().map(|v| v.clamp(0.0, 1.0)).collect();
    Image::new(dims[1], dims[2], data)
}

/// Converts an attack-core image back into a `[3, h, w]` tensor.
pub fn image_to_tensor(image: &Image) -> Tensor {
    Tensor::from_vec([3, image.height(), image.width()], image.data().to_vec())
}

/// Copies an attack-core image into an existing `[3, h, w]` tensor without
/// allocating — the query hot path's conversion.
///
/// # Panics
///
/// Panics if the tensor's shape does not match the image's extents.
pub fn image_into_tensor(image: &Image, tensor: &mut Tensor) {
    assert_eq!(
        tensor.shape().dims(),
        &[3, image.height(), image.width()],
        "tensor shape does not match image extents"
    );
    tensor.data_mut().copy_from_slice(image.data());
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::pair::{Location, Pixel};

    #[test]
    fn round_trip_preserves_data() {
        let t = Tensor::from_fn([3, 4, 5], |i| (i % 10) as f32 / 10.0);
        let img = tensor_to_image(&t);
        let back = image_to_tensor(&img);
        assert_eq!(t.data(), back.data());
        assert_eq!(back.shape().dims(), &[3, 4, 5]);
    }

    #[test]
    fn pixel_access_agrees_across_the_conversion() {
        let mut t = Tensor::zeros([3, 3, 3]);
        // Set (row=1, col=2) to (0.1, 0.2, 0.3) in CHW layout.
        *t.at_mut(&[0, 1, 2]) = 0.1;
        *t.at_mut(&[1, 1, 2]) = 0.2;
        *t.at_mut(&[2, 1, 2]) = 0.3;
        let img = tensor_to_image(&t);
        assert_eq!(img.pixel(Location::new(1, 2)), Pixel([0.1, 0.2, 0.3]));
    }

    #[test]
    fn image_into_tensor_matches_allocating_conversion() {
        let t = Tensor::from_fn([3, 4, 5], |i| (i % 7) as f32 / 7.0);
        let img = tensor_to_image(&t);
        let mut scratch = Tensor::zeros([3, 4, 5]);
        image_into_tensor(&img, &mut scratch);
        assert_eq!(scratch.data(), image_to_tensor(&img).data());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn image_into_tensor_rejects_shape_mismatch() {
        let img = tensor_to_image(&Tensor::zeros([3, 4, 5]));
        let mut scratch = Tensor::zeros([3, 5, 4]);
        image_into_tensor(&img, &mut scratch);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut t = Tensor::zeros([3, 2, 2]);
        t.data_mut()[0] = 1.5;
        t.data_mut()[1] = -0.5;
        let img = tensor_to_image(&t);
        assert_eq!(img.data()[0], 1.0);
        assert_eq!(img.data()[1], 0.0);
    }
}
