//! Attack evaluation over a test set: per-image outcomes, success-rate
//! curves as a function of the query budget (the paper's Figure 3), and
//! query statistics (average / median, Tables 1 and 2).

use oppsla_attacks::{Attack, AttackOutcome};
use oppsla_core::image::Image;
use oppsla_core::oracle::{BatchClassifier, Classifier, MemoBank, Oracle};
use oppsla_core::parallel::parallel_map_with;
use oppsla_core::telemetry::{trace, FieldValue, MetricsSink};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-image outcomes of running one attack over a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackEval {
    /// The report name of the evaluated attack.
    pub attack_name: String,
    /// Outcome per test image, in input order.
    pub outcomes: Vec<AttackOutcome>,
}

impl AttackEval {
    /// Number of *valid* images: those the classifier got right to begin
    /// with (misclassified images are discarded, as in the paper).
    pub fn num_valid(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !matches!(o, AttackOutcome::AlreadyMisclassified { .. }))
            .count()
    }

    /// Query counts of the successful attacks, in input order.
    pub fn success_queries(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                AttackOutcome::Success { queries, .. } => Some(*queries),
                _ => None,
            })
            .collect()
    }

    /// Fraction of valid images successfully attacked within `budget`
    /// queries. Returns 0 when there are no valid images.
    pub fn success_rate_at(&self, budget: u64) -> f64 {
        let valid = self.num_valid();
        if valid == 0 {
            return 0.0;
        }
        let hits = self
            .success_queries()
            .iter()
            .filter(|&&q| q <= budget)
            .count();
        hits as f64 / valid as f64
    }

    /// Overall success rate (no budget cut).
    pub fn success_rate(&self) -> f64 {
        self.success_rate_at(u64::MAX)
    }

    /// Mean queries over successful attacks (`NaN` when none succeeded).
    pub fn avg_queries(&self) -> f64 {
        let qs = self.success_queries();
        if qs.is_empty() {
            return f64::NAN;
        }
        qs.iter().sum::<u64>() as f64 / qs.len() as f64
    }

    /// Median queries over successful attacks (`NaN` when none succeeded).
    /// Even-length medians average the two central values, matching the
    /// paper's fractional medians.
    pub fn median_queries(&self) -> f64 {
        let mut qs = self.success_queries();
        if qs.is_empty() {
            return f64::NAN;
        }
        qs.sort_unstable();
        let n = qs.len();
        if n % 2 == 1 {
            qs[n / 2] as f64
        } else {
            (qs[n / 2 - 1] + qs[n / 2]) as f64 / 2.0
        }
    }

    /// Samples the success-rate curve at the given budgets (the series of
    /// Figure 3).
    pub fn curve(&self, budgets: &[u64]) -> Vec<(u64, f64)> {
        budgets
            .iter()
            .map(|&b| (b, self.success_rate_at(b)))
            .collect()
    }
}

/// Runs `attack` on every `(image, true_class)` in `test`, each with a
/// fresh per-image oracle capped at `budget` queries. Randomized attacks
/// draw from a per-image seeded stream so evaluations are reproducible and
/// order-independent.
pub fn evaluate_attack(
    attack: &dyn Attack,
    classifier: &dyn Classifier,
    test: &[(Image, usize)],
    budget: u64,
    seed: u64,
) -> AttackEval {
    trace::begin_sweep("attack_eval", test.len(), attack.name());
    let outcomes = test
        .iter()
        .enumerate()
        .map(|(i, (image, true_class))| {
            let mut oracle = Oracle::with_budget(classifier, budget);
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            trace::set_image(i);
            let outcome = attack.attack(&mut oracle, image, *true_class, &mut rng);
            trace::record_run(
                outcome.queries(),
                matches!(outcome, AttackOutcome::Success { .. }),
            );
            oppsla_core::telemetry::observe_image_queries(outcome.queries());
            outcome
        })
        .collect();
    AttackEval {
        attack_name: attack.name().to_owned(),
        outcomes,
    }
}

/// [`evaluate_attack`] with a cross-restart memo: each per-image oracle
/// shares the [`MemoBank`] entry for its test-set index, so a candidate
/// already paid for by an earlier evaluation through the same bank is
/// served for free. Scores and outcomes are bit-identical to the
/// memo-less call; only query counts can drop. Without the core
/// `query-memo` feature the bank is inert and this *is* the memo-less
/// call.
///
/// `memo.len()` must cover the test set (one entry per image index).
pub fn evaluate_attack_with_memo(
    attack: &dyn Attack,
    classifier: &dyn Classifier,
    test: &[(Image, usize)],
    budget: u64,
    seed: u64,
    memo: &MemoBank,
) -> AttackEval {
    assert!(
        memo.len() >= test.len(),
        "memo bank has {} entries for {} test images",
        memo.len(),
        test.len()
    );
    trace::begin_sweep("attack_eval", test.len(), attack.name());
    let outcomes = test
        .iter()
        .enumerate()
        .map(|(i, (image, true_class))| {
            let mut oracle = Oracle::with_budget(classifier, budget).with_memo(memo.memo(i));
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            trace::set_image(i);
            let outcome = attack.attack(&mut oracle, image, *true_class, &mut rng);
            trace::record_run(
                outcome.queries(),
                matches!(outcome, AttackOutcome::Success { .. }),
            );
            oppsla_core::telemetry::observe_image_queries(outcome.queries());
            outcome
        })
        .collect();
    AttackEval {
        attack_name: attack.name().to_owned(),
        outcomes,
    }
}

/// [`evaluate_attack`] fanned out over `threads` workers, each querying
/// through its own [`BatchClassifier::session`] handle. Per-image oracles
/// and per-image seeded random streams make the evaluation outcome
/// independent of scheduling: the result is identical to the sequential
/// function for any thread count.
pub fn evaluate_attack_parallel(
    attack: &(dyn Attack + Sync),
    classifier: &dyn BatchClassifier,
    test: &[(Image, usize)],
    budget: u64,
    seed: u64,
    threads: usize,
) -> AttackEval {
    trace::begin_sweep("attack_eval", test.len(), attack.name());
    let outcomes = parallel_map_with(
        threads,
        test,
        || classifier.session(),
        |session, i, (image, true_class)| {
            let mut oracle = Oracle::with_budget(&**session, budget);
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            trace::set_image(i);
            let outcome = attack.attack(&mut oracle, image, *true_class, &mut rng);
            trace::record_run(
                outcome.queries(),
                matches!(outcome, AttackOutcome::Success { .. }),
            );
            oppsla_core::telemetry::observe_image_queries(outcome.queries());
            outcome
        },
    );
    AttackEval {
        attack_name: attack.name().to_owned(),
        outcomes,
    }
}

/// [`evaluate_attack_parallel`] sharing a [`MemoBank`]. The bank is
/// indexed by test-set position, so each worker only ever touches its
/// current image's memo — results stay independent of the thread count
/// and identical to [`evaluate_attack_with_memo`].
pub fn evaluate_attack_parallel_with_memo(
    attack: &(dyn Attack + Sync),
    classifier: &dyn BatchClassifier,
    test: &[(Image, usize)],
    budget: u64,
    seed: u64,
    threads: usize,
    memo: &MemoBank,
) -> AttackEval {
    assert!(
        memo.len() >= test.len(),
        "memo bank has {} entries for {} test images",
        memo.len(),
        test.len()
    );
    trace::begin_sweep("attack_eval", test.len(), attack.name());
    let outcomes = parallel_map_with(
        threads,
        test,
        || classifier.session(),
        |session, i, (image, true_class)| {
            let mut oracle = Oracle::with_budget(&**session, budget).with_memo(memo.memo(i));
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            trace::set_image(i);
            let outcome = attack.attack(&mut oracle, image, *true_class, &mut rng);
            trace::record_run(
                outcome.queries(),
                matches!(outcome, AttackOutcome::Success { .. }),
            );
            oppsla_core::telemetry::observe_image_queries(outcome.queries());
            outcome
        },
    );
    AttackEval {
        attack_name: attack.name().to_owned(),
        outcomes,
    }
}

/// [`evaluate_attack_parallel`] with telemetry plumbing: the counters
/// recorded during this evaluation (phase queries, delta-cache traffic,
/// the per-image query histogram) are emitted to `sink` as one
/// `attack_eval` event tagged with the attack's name and the budget. The
/// returned evaluation is identical to the unplumbed call.
pub fn evaluate_attack_parallel_with_sink(
    attack: &(dyn Attack + Sync),
    classifier: &dyn BatchClassifier,
    test: &[(Image, usize)],
    budget: u64,
    seed: u64,
    threads: usize,
    sink: &mut dyn MetricsSink,
) -> AttackEval {
    let labels = [
        ("attack", FieldValue::Str(attack.name().to_owned())),
        ("budget", FieldValue::U64(budget)),
        ("images", FieldValue::U64(test.len() as u64)),
    ];
    crate::obs::with_phase(sink, "attack_eval", &labels, || {
        evaluate_attack_parallel(attack, classifier, test, budget, seed, threads)
    })
}

/// The standard budget grid used by the Figure 3 reproduction.
pub fn default_budget_grid() -> Vec<u64> {
    vec![10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_attacks::SketchProgramAttack;
    use oppsla_core::dsl::Program;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};

    fn trigger_clf(target: Location) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        })
    }

    fn grey_set(n: usize) -> Vec<(Image, usize)> {
        (0..n)
            .map(|i| {
                let v = 0.3 + 0.02 * i as f32;
                (Image::filled(4, 4, Pixel([v, v, v])), 0)
            })
            .collect()
    }

    #[test]
    fn evaluate_attack_runs_per_image_budgets() {
        let clf = trigger_clf(Location::new(1, 1));
        let attack = SketchProgramAttack::new(Program::constant(false));
        let eval = evaluate_attack(&attack, &clf, &grey_set(3), 10_000, 0);
        assert_eq!(eval.outcomes.len(), 3);
        assert_eq!(eval.num_valid(), 3);
        assert_eq!(eval.success_rate(), 1.0);
        assert!(eval.avg_queries() >= 2.0);
    }

    #[test]
    fn parallel_evaluation_matches_sequential_for_any_thread_count() {
        let clf = trigger_clf(Location::new(2, 1));
        let attack = SketchProgramAttack::new(Program::paper_example());
        let reference = evaluate_attack(&attack, &clf, &grey_set(5), 10_000, 3);
        for threads in [1, 2, 4, 8] {
            let parallel =
                evaluate_attack_parallel(&attack, &clf, &grey_set(5), 10_000, 3, threads);
            assert_eq!(parallel, reference, "threads = {threads}");
        }
    }

    #[test]
    fn success_rate_at_respects_budget_cut() {
        let clf = trigger_clf(Location::new(3, 3)); // far from centre → late
        let attack = SketchProgramAttack::new(Program::constant(false));
        let eval = evaluate_attack(&attack, &clf, &grey_set(2), 10_000, 0);
        assert_eq!(eval.success_rate(), 1.0);
        assert_eq!(eval.success_rate_at(1), 0.0, "one query cannot succeed");
        let needed = eval.success_queries()[0];
        assert_eq!(eval.success_rate_at(needed), 1.0);
        assert_eq!(eval.success_rate_at(needed - 1), 0.0);
    }

    #[test]
    fn budget_exhaustion_counts_as_failure() {
        let clf = trigger_clf(Location::new(3, 3));
        let attack = SketchProgramAttack::new(Program::constant(false));
        let eval = evaluate_attack(&attack, &clf, &grey_set(2), 3, 0);
        assert_eq!(eval.success_rate(), 0.0);
        assert!(eval.avg_queries().is_nan());
        assert!(eval.median_queries().is_nan());
    }

    #[test]
    fn misclassified_images_are_excluded_from_the_denominator() {
        // Classifier always answers class 1 → every class-0 image is
        // "already misclassified"; one class-1 image is valid but robust.
        let clf = FnClassifier::new(2, |_: &Image| vec![0.1, 0.9]);
        let attack = SketchProgramAttack::new(Program::constant(false));
        let mut test = grey_set(3); // labels 0 → all discarded
        test.push((Image::filled(4, 4, Pixel([0.5, 0.5, 0.5])), 1));
        let eval = evaluate_attack(&attack, &clf, &test, 10_000, 0);
        assert_eq!(eval.num_valid(), 1);
        assert_eq!(eval.success_rate(), 0.0);
    }

    #[test]
    fn median_averages_central_pair() {
        let eval = AttackEval {
            attack_name: "x".into(),
            outcomes: vec![
                AttackOutcome::Success {
                    location: Location::new(0, 0),
                    pixel: Pixel([0.0; 3]),
                    queries: 2,
                },
                AttackOutcome::Success {
                    location: Location::new(0, 0),
                    pixel: Pixel([0.0; 3]),
                    queries: 10,
                },
                AttackOutcome::Success {
                    location: Location::new(0, 0),
                    pixel: Pixel([0.0; 3]),
                    queries: 4,
                },
                AttackOutcome::Failure { queries: 100 },
            ],
        };
        assert_eq!(eval.median_queries(), 4.0);
        assert!((eval.avg_queries() - 16.0 / 3.0).abs() < 1e-9);
        assert_eq!(eval.success_rate_at(4), 0.5);
    }

    /// Success/failure structure of two evals must agree even when memo
    /// hits change the query counts.
    fn same_shape(a: &AttackEval, b: &AttackEval) {
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            match (x, y) {
                (
                    AttackOutcome::Success {
                        location: l1,
                        pixel: p1,
                        ..
                    },
                    AttackOutcome::Success {
                        location: l2,
                        pixel: p2,
                        ..
                    },
                ) => {
                    assert_eq!(l1, l2);
                    assert_eq!(p1, p2);
                }
                (AttackOutcome::Failure { .. }, AttackOutcome::Failure { .. })
                | (
                    AttackOutcome::AlreadyMisclassified { .. },
                    AttackOutcome::AlreadyMisclassified { .. },
                ) => {}
                other => panic!("outcome shapes diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn memo_eval_is_query_monotone_and_outcome_identical() {
        let clf = trigger_clf(Location::new(3, 2));
        let attack = SketchProgramAttack::new(Program::paper_example());
        let test = grey_set(4);
        let plain = evaluate_attack(&attack, &clf, &test, 10_000, 0);

        let bank = MemoBank::new(test.len(), oppsla_core::oracle::DEFAULT_MEMO_CAPACITY);
        let first = evaluate_attack_with_memo(&attack, &clf, &test, 10_000, 0, &bank);
        // A cold bank changes nothing at all.
        assert_eq!(first, plain);

        // A second restart through the same bank keeps outcomes identical
        // and can only lower per-image query counts.
        let second = evaluate_attack_with_memo(&attack, &clf, &test, 10_000, 0, &bank);
        same_shape(&second, &first);
        for (i, (a, b)) in second.outcomes.iter().zip(&first.outcomes).enumerate() {
            assert!(
                a.queries() <= b.queries(),
                "image {i}: restart spent {} > first run's {}",
                a.queries(),
                b.queries()
            );
            #[cfg(feature = "query-memo")]
            assert!(
                a.queries() < b.queries(),
                "image {i}: a warm memo must repay something"
            );
        }

        // Parallel evaluation through a bank matches sequential exactly,
        // for any thread count (fresh bank per comparison: the banks
        // above are already warm).
        for threads in [1, 2, 4] {
            let bank_a = MemoBank::new(test.len(), oppsla_core::oracle::DEFAULT_MEMO_CAPACITY);
            let bank_b = MemoBank::new(test.len(), oppsla_core::oracle::DEFAULT_MEMO_CAPACITY);
            let seq = evaluate_attack_with_memo(&attack, &clf, &test, 10_000, 0, &bank_a);
            let par = evaluate_attack_parallel_with_memo(
                &attack, &clf, &test, 10_000, 0, threads, &bank_b,
            );
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn fig3_roster_cells_are_query_monotone_under_a_shared_bank() {
        // fig3's memo wiring in miniature: one bank per classifier,
        // shared across the whole attack roster (including the
        // DeepSearch baseline) and a repeat evaluation. Every
        // (attack, image) cell must keep its outcome shape and spend no
        // more queries than its memo-less twin — across attacks too,
        // since the roster probes overlapping candidate spaces.
        let clf = trigger_clf(Location::new(2, 3));
        let attacks: Vec<Box<dyn Attack + Sync>> = vec![
            Box::new(SketchProgramAttack::new(Program::paper_example())),
            Box::new(oppsla_attacks::DeepSearch::default()),
        ];
        let test = grey_set(3);
        let bank = MemoBank::new(test.len(), oppsla_core::oracle::DEFAULT_MEMO_CAPACITY);
        for round in 0..2 {
            for attack in &attacks {
                let plain = evaluate_attack(attack.as_ref(), &clf, &test, 10_000, 0);
                let memoed =
                    evaluate_attack_with_memo(attack.as_ref(), &clf, &test, 10_000, 0, &bank);
                same_shape(&memoed, &plain);
                for (i, (m, p)) in memoed.outcomes.iter().zip(&plain.outcomes).enumerate() {
                    assert!(
                        m.queries() <= p.queries(),
                        "round {round}, {}, image {i}: memo-on spent {} > memo-off's {}",
                        attack.name(),
                        m.queries(),
                        p.queries()
                    );
                }
            }
        }
    }

    #[test]
    fn curve_is_monotone_in_budget() {
        let clf = trigger_clf(Location::new(2, 2));
        let attack = SketchProgramAttack::new(Program::constant(false));
        let eval = evaluate_attack(&attack, &clf, &grey_set(4), 10_000, 0);
        let curve = eval.curve(&default_budget_grid());
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1, "success rate must be monotone");
        }
    }
}
