//! Evaluation harness reproducing every table and figure of the OPPSLA
//! paper.
//!
//! * [`zoo`] — trains/caches the classifier zoo (the paper's pre-trained
//!   CNNs, rebuilt at laptop scale) and generates attack test sets.
//! * [`curves`] — per-image attack evaluation and success-rate-vs-budget
//!   curves (**Figure 3**).
//! * [`suite`] — per-class program synthesis and dispatch.
//! * [`prior`] — mining per-class pixel-saliency priors from trace
//!   corpora (the initial-queue reordering of `oppsla_core::prior`).
//! * [`transfer`] — the transferability matrix (**Table 1**).
//! * [`trajectory`] — synthesis-cost trajectories (**Figure 4**).
//! * [`ablation`] — conditions/search ablation (**Table 2**, Appendix C).
//! * [`plot`] — ASCII line charts for terminal figure rendering.
//! * [`report`] — ASCII tables and CSV export.
//! * [`convert`] — tensor ↔ attack-image conversions.
//! * [`obs`] — telemetry plumbing: phase-scoped metric emission and
//!   summary tables (active when built with the `telemetry` feature).
//!
//! The experiment binaries in `oppsla-bench` are thin CLI wrappers around
//! these modules.

#![warn(missing_docs)]

pub mod ablation;
pub mod convert;
pub mod curves;
pub mod obs;
pub mod plot;
pub mod prior;
pub mod report;
pub mod suite;
pub mod trajectory;
pub mod transfer;
pub mod zoo;
