//! Telemetry plumbing for experiment harnesses: snapshot-delta scopes
//! that attribute recorded counters to a named phase of a run and emit
//! them to a [`MetricsSink`], plus a human-readable summary table.
//!
//! Everything here works in both builds. With the `telemetry` feature off
//! the snapshots are all-zero and [`with_phase`] still emits one event
//! (carrying `telemetry_enabled: false`), so harness code needs no
//! feature gates and the emitted event stream has the same shape either
//! way — only the counter fields disappear.

use crate::report::Table;
use oppsla_core::telemetry::{self, emit_snapshot, FieldValue, MetricsSink, Snapshot};

/// Runs `f`, then emits the telemetry recorded during it (the snapshot
/// delta) as one `event` on `sink`, tagged with `labels`.
///
/// Counter merges are commutative sums flushed at thread joins, so the
/// delta — and therefore the emitted event — is identical for any worker
/// thread count used inside `f`.
pub fn with_phase<T>(
    sink: &mut dyn MetricsSink,
    event: &str,
    labels: &[(&str, FieldValue)],
    f: impl FnOnce() -> T,
) -> T {
    let before = telemetry::snapshot();
    let out = f();
    let delta = telemetry::snapshot().since(&before);
    emit_snapshot(sink, event, labels, &delta);
    out
}

/// Renders a snapshot as a two-column report table: one row per non-zero
/// counter (wire name, value), then the delta-cache hit rate and the
/// per-image query histogram when present. Deterministic: rows follow the
/// fixed counter declaration order.
pub fn telemetry_table(title: &str, snap: &Snapshot) -> Table {
    let mut table = Table::new(title, vec!["metric".into(), "value".into()]);
    for c in telemetry::Counter::ALL {
        if snap.get(c) != 0 {
            table.push_row(vec![c.name().to_owned(), snap.get(c).to_string()]);
        }
    }
    if let Some(rate) = snap.delta_cache_hit_rate() {
        table.push_row(vec!["delta_cache_hit_rate".into(), format!("{:.4}", rate)]);
    }
    for (bucket, &n) in snap.query_hist.iter().enumerate() {
        if n != 0 {
            let (lo, hi) = telemetry::query_hist_bounds(bucket);
            let range = if hi == u64::MAX {
                format!("queries [{lo}, inf)")
            } else {
                format!("queries [{lo}, {hi})")
            };
            table.push_row(vec![range, n.to_string()]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::telemetry::JsonlSink;

    #[test]
    fn with_phase_emits_exactly_one_event_with_labels() {
        let mut sink = JsonlSink::from_writer(Vec::new());
        let value = with_phase(
            &mut sink,
            "unit_phase",
            &[("attack", FieldValue::Str("oppsla".into()))],
            || 42,
        );
        assert_eq!(value, 42);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"event\":\"unit_phase\""), "{text}");
        assert!(text.contains("\"attack\":\"oppsla\""), "{text}");
        assert!(text.contains("\"telemetry_enabled\":"), "{text}");
    }

    #[test]
    fn telemetry_table_is_well_formed_for_zero_and_nonzero_snapshots() {
        let table = telemetry_table("Telemetry", &Snapshot::zero());
        assert!(table.rows.is_empty(), "zero snapshot has no rows");

        let mut snap = Snapshot::zero();
        snap.counters[telemetry::Counter::QueryBaseline as usize] = 7;
        snap.query_hist[3] = 2;
        let table = telemetry_table("Telemetry", &snap);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0], vec!["query_baseline".to_owned(), "7".into()]);
        assert_eq!(table.rows[1][0], "queries [4, 8)");
    }
}
