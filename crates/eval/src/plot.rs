//! Terminal line charts for the figure reproductions.
//!
//! The paper's Figures 3 and 4 are line plots; this module renders their
//! data as fixed-width ASCII charts so the experiment binaries can show
//! the *shape* of a result (who wins, where curves cross) without any
//! plotting dependency. CSV exports remain the precise record.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series, sorting points by x.
    pub fn new(label: impl Into<String>, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Configuration of an ASCII chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartConfig {
    /// Plot-area width in characters.
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plot x on a log₁₀ scale (the paper's Figure 3 x-axis is log).
    pub log_x: bool,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            width: 64,
            height: 16,
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log_x: false,
        }
    }
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 6] = ['o', '*', '+', 'x', '#', '@'];

/// Renders `series` as a multi-line ASCII chart.
///
/// Later series draw over earlier ones where cells collide. Returns an
/// explanatory placeholder when there is nothing to plot.
///
/// # Panics
///
/// Panics if the configured plot area is degenerate (width or height < 2).
pub fn render_chart(series: &[Series], config: &ChartConfig) -> String {
    assert!(
        config.width >= 2 && config.height >= 2,
        "plot area must be at least 2x2"
    );
    let all_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite() && (!config.log_x || *x > 0.0))
        .collect();
    if all_points.is_empty() {
        return format!("{} (no data)\n", config.title);
    }

    let tx = |x: f64| if config.log_x { x.log10() } else { x };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all_points {
        x_min = x_min.min(tx(x));
        x_max = x_max.max(tx(x));
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }

    let (w, h) = (config.width, config.height);
    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() || (config.log_x && x <= 0.0) {
                continue;
            }
            let col = (((tx(x) - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (h - 1) as f64).round() as usize;
            grid[h - 1 - row][col.min(w - 1)] = glyph;
        }
    }

    let mut out = String::new();
    if !config.title.is_empty() {
        let _ = writeln!(out, "{}", config.title);
    }
    let y_top = format!("{y_max:.2}");
    let y_bot = format!("{y_min:.2}");
    let margin = y_top.len().max(y_bot.len());
    for (i, line) in grid.iter().enumerate() {
        let label = if i == 0 {
            &y_top
        } else if i == h - 1 {
            &y_bot
        } else {
            ""
        };
        let _ = writeln!(out, "{label:>margin$} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:margin$} +{}", "", "-".repeat(w));
    let x_lo = if config.log_x {
        format!("10^{x_min:.1}")
    } else {
        format!("{x_min:.0}")
    };
    let x_hi = if config.log_x {
        format!("10^{x_max:.1}")
    } else {
        format!("{x_max:.0}")
    };
    let _ = writeln!(
        out,
        "{:margin$}  {x_lo}{:>pad$}",
        "",
        x_hi,
        pad = w.saturating_sub(x_lo.len())
    );
    if !config.x_label.is_empty() || !config.y_label.is_empty() {
        let _ = writeln!(
            out,
            "{:margin$}  x: {}  y: {}",
            "", config.x_label, config.y_label
        );
    }
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:margin$}  {} {}",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChartConfig {
        ChartConfig {
            width: 20,
            height: 6,
            title: "t".into(),
            x_label: "q".into(),
            y_label: "rate".into(),
            log_x: false,
        }
    }

    #[test]
    fn renders_single_series_with_legend() {
        let s = Series::new("oppsla", vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
        let chart = render_chart(&[s], &cfg());
        assert!(chart.contains("o oppsla"), "{chart}");
        assert!(chart.contains("1.00"), "{chart}");
        assert!(chart.contains("0.00"), "{chart}");
        // Rising series: the top row contains a glyph at the right edge.
        let top = chart.lines().nth(1).unwrap();
        assert!(top.trim_end().ends_with('o'), "{chart}");
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0), (10.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (10.0, 0.0)]);
        let chart = render_chart(&[a, b], &cfg());
        assert!(chart.contains("o a"), "{chart}");
        assert!(chart.contains("* b"), "{chart}");
        assert!(chart.contains('o') && chart.contains('*'));
    }

    #[test]
    fn empty_series_produces_placeholder() {
        let chart = render_chart(&[], &cfg());
        assert!(chart.contains("no data"), "{chart}");
    }

    #[test]
    fn log_axis_skips_nonpositive_and_labels_powers() {
        let s = Series::new("s", vec![(0.0, 0.5), (10.0, 0.5), (1000.0, 1.0)]);
        let mut c = cfg();
        c.log_x = true;
        let chart = render_chart(&[s], &c);
        assert!(chart.contains("10^1.0"), "{chart}");
        assert!(chart.contains("10^3.0"), "{chart}");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::new("flat", vec![(1.0, 0.5), (2.0, 0.5)]);
        let chart = render_chart(&[s], &cfg());
        assert!(chart.contains("flat"), "{chart}");
    }

    #[test]
    fn nan_and_infinite_points_are_skipped() {
        let s = Series::new("s", vec![(1.0, f64::NAN), (2.0, 0.3), (f64::INFINITY, 0.9)]);
        let chart = render_chart(&[s], &cfg());
        assert!(chart.contains("s"), "{chart}");
    }

    #[test]
    fn series_constructor_sorts_points() {
        let s = Series::new("s", vec![(5.0, 1.0), (1.0, 0.0)]);
        assert_eq!(s.points[0].0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_area() {
        let mut c = cfg();
        c.height = 1;
        render_chart(&[], &c);
    }
}
