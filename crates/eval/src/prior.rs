//! Mining per-class pixel-saliency priors from trace corpora.
//!
//! A `--trace` run of the experiment binaries leaves a JSONL stream in
//! which every counted oracle query carries its perturbed pixel and
//! whether it flipped the classifier. This module folds such a corpus
//! into a [`SaliencyPrior`]: for every attack section it reconstructs the
//! section's image set (sections record the scale, set kind, per-class
//! count and seed exactly so consumers can do this), then credits the
//! grid cell of every *flipping* candidate to the attacked image's true
//! class. Per-class tables are normalized to sum to one; classes that
//! never flipped stay all-zero, which [`SaliencyPrior`] treats as the
//! uniform order.
//!
//! Synthesis sections are skipped: their image indexing is narrowed by
//! class/prefilter records, and the training images' flips are already
//! distilled into the synthesized programs themselves.

use crate::zoo::{attack_test_set, Scale};
use oppsla_core::prior::SaliencyPrior;
use oppsla_core::telemetry::trace::{Body, Record};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// Default saliency-grid resolution: 8×8 cells per image.
pub const DEFAULT_PRIOR_GRID: usize = 8;

/// One attack section's reconstruction recipe, keyed by section number.
struct SectionSet {
    images: Vec<(oppsla_core::image::Image, usize)>,
}

fn scale_from_id(id: &str) -> Option<Scale> {
    match id {
        "shapes32" => Some(Scale::Cifar),
        "shapes64" => Some(Scale::ImageNetLike),
        _ => None,
    }
}

/// Mines a [`SaliencyPrior`] with `grid`×`grid` cells from the JSONL
/// lines of a trace corpus (blank lines are skipped, unparseable lines
/// are errors). The number of classes is the highest true class seen
/// plus one.
///
/// # Errors
///
/// Returns an error when a line fails to parse, when no attack section
/// over a reconstructible test set is present, or when `grid` is zero.
pub fn mine_saliency_prior(
    lines: impl IntoIterator<Item = String>,
    grid: usize,
) -> Result<SaliencyPrior, String> {
    let mut records = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        records.push(Record::parse(&line)?);
    }
    mine_saliency_prior_records(&records, grid)
}

/// [`mine_saliency_prior`] over already-parsed trace records.
///
/// # Errors
///
/// Returns an error when no attack section over a reconstructible test
/// set is present, or when `grid` is zero.
pub fn mine_saliency_prior_records(
    records: &[Record],
    grid: usize,
) -> Result<SaliencyPrior, String> {
    if grid == 0 {
        return Err("grid must be positive".into());
    }

    // Pass 1: reconstruct each usable attack section's image set.
    let mut sets: HashMap<u32, SectionSet> = HashMap::new();
    for rec in records {
        if let Body::Section {
            scale,
            set,
            per_class,
            set_seed,
            attack,
            ..
        } = &rec.body
        {
            if attack == "synthesis" || set != "test" {
                continue;
            }
            let Some(scale) = scale_from_id(scale) else {
                continue;
            };
            sets.insert(
                rec.section,
                SectionSet {
                    images: attack_test_set(scale, *per_class as usize, *set_seed),
                },
            );
        }
    }
    if sets.is_empty() {
        return Err("no attack section over a reconstructible test set in corpus".into());
    }

    // Pass 2: credit flipping candidates. Record order does not matter —
    // every query record carries its section number.
    let mut num_classes = 0usize;
    let mut hits: Vec<(usize, usize)> = Vec::new(); // (class, cell)
    for rec in records {
        let Body::Query { row, col, flip, .. } = &rec.body else {
            continue;
        };
        if !flip {
            continue;
        }
        let Some(set) = sets.get(&rec.section) else {
            continue;
        };
        let Some((image, class)) = set.images.get(rec.image as usize) else {
            continue;
        };
        let (h, w) = (image.height(), image.width());
        if (*row as usize) >= h || (*col as usize) >= w {
            continue; // full-image query sentinel or stale record
        }
        let location = oppsla_core::pair::Location::new(*row as u16, *col as u16);
        let probe = SaliencyPrior::new(grid, vec![vec![0.0; grid * grid]]);
        let cell = probe.cell(h, w, location);
        num_classes = num_classes.max(class + 1);
        hits.push((*class, cell));
    }

    let num_classes = num_classes.max(1);
    let mut per_class = vec![vec![0.0f64; grid * grid]; num_classes];
    for (class, cell) in hits {
        per_class[class][cell] += 1.0;
    }
    for table in &mut per_class {
        let sum: f64 = table.iter().sum();
        if sum > 0.0 {
            for w in table.iter_mut() {
                *w /= sum;
            }
        }
    }
    Ok(SaliencyPrior::new(grid, per_class))
}

/// [`mine_saliency_prior`] over a trace JSONL file on disk.
///
/// # Errors
///
/// Returns an error when the file is unreadable or a line fails to parse.
pub fn mine_saliency_prior_file(path: &Path, grid: usize) -> Result<SaliencyPrior, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    mine_saliency_prior(text.lines().map(str::to_owned), grid)
}

/// On-disk form of a mined prior.
#[derive(Serialize, Deserialize)]
struct PriorFile {
    grid: usize,
    per_class: Vec<Vec<f64>>,
}

/// Saves a prior as JSON, creating parent directories.
///
/// # Errors
///
/// Returns an error string on filesystem or serialization failure.
pub fn save_prior(prior: &SaliencyPrior, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    let file = PriorFile {
        grid: prior.grid(),
        per_class: prior.tables().to_vec(),
    };
    let json = serde_json::to_string_pretty(&file).map_err(|e| e.to_string())?;
    fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Loads a prior saved by [`save_prior`].
///
/// # Errors
///
/// Returns an error string when the file is unreadable, malformed, or
/// fails [`SaliencyPrior`]'s validity checks (zero grid, wrong table
/// length, non-finite weights).
pub fn load_prior(path: &Path) -> Result<SaliencyPrior, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let file: PriorFile =
        serde_json::from_str(&json).map_err(|e| format!("parse {}: {e}", path.display()))?;
    if file.grid == 0 {
        return Err(format!("{}: grid must be positive", path.display()));
    }
    for (class, table) in file.per_class.iter().enumerate() {
        if table.len() != file.grid * file.grid {
            return Err(format!(
                "{}: class {class} table has {} weights, expected {}",
                path.display(),
                table.len(),
                file.grid * file.grid
            ));
        }
        if table.iter().any(|w| !w.is_finite()) {
            return Err(format!(
                "{}: class {class} table has non-finite weights",
                path.display()
            ));
        }
    }
    Ok(SaliencyPrior::new(file.grid, file.per_class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::pair::Location;
    use oppsla_core::prior::Prior;

    /// A minimal synthetic corpus: one test-set section on the cifar
    /// scale, one image, with flipping queries clustered at one pixel.
    fn corpus() -> Vec<String> {
        let section = Record {
            section: 1,
            round: 0,
            lane: 0,
            image: 0,
            sub: 0,
            body: Body::Section {
                label: "fig3/shapes32/mlp/oppsla".into(),
                scale: "shapes32".into(),
                arch: "mlp".into(),
                set: "test".into(),
                per_class: 1,
                set_seed: 2,
                budget: 100,
                attack: "oppsla".into(),
                attack_seed: 0,
            },
        };
        let query = |row: u32, col: u32, flip: bool, sub: u64| Record {
            section: 1,
            round: 1,
            lane: 1,
            image: 0,
            sub,
            body: Body::Query {
                phase: "init_scan".into(),
                route: "delta".into(),
                cache: "none".into(),
                seq: sub,
                row,
                col,
                r: 1.0,
                g: 0.0,
                b: 0.0,
                margin: if flip { -0.1 } else { 0.4 },
                pred: if flip { 1 } else { 0 },
                flip,
            },
        };
        vec![
            section.to_jsonl(),
            query(0, 0, true, 1).to_jsonl(),
            query(0, 1, true, 2).to_jsonl(),
            query(31, 31, false, 3).to_jsonl(),
        ]
    }

    #[test]
    fn mining_credits_flip_cells_for_the_images_class() {
        let prior = mine_saliency_prior(corpus(), 8).unwrap();
        let test = attack_test_set(Scale::Cifar, 1, 2);
        let (image, class) = &test[0];
        let hot = prior.location_weight(*class, image, Location::new(0, 0));
        let cold = prior.location_weight(*class, image, Location::new(31, 31));
        assert!(hot > 0.0, "flipping cell must carry weight");
        assert_eq!(cold, 0.0, "non-flipping cell stays zero");
        // Two flips in the same cell → that cell holds all the mass.
        assert!((hot - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mining_rejects_corpora_without_attack_sections() {
        let lines = vec![corpus()[1].clone()]; // queries but no section
        assert!(mine_saliency_prior(lines, 8).is_err());
    }

    #[test]
    fn mined_priors_round_trip_through_json() {
        let prior = mine_saliency_prior(corpus(), 8).unwrap();
        let dir = std::env::temp_dir().join(format!("oppsla-prior-test-{}", std::process::id()));
        let path = dir.join("prior.json");
        save_prior(&prior, &path).unwrap();
        let loaded = load_prior(&path).unwrap();
        assert_eq!(loaded.grid(), prior.grid());
        assert_eq!(loaded.tables(), prior.tables());
    }

    #[test]
    fn load_prior_rejects_malformed_tables() {
        let dir = std::env::temp_dir().join(format!("oppsla-prior-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, r#"{"grid": 2, "per_class": [[1.0, 2.0]]}"#).unwrap();
        assert!(load_prior(&path).is_err(), "2 weights for a 2x2 grid");
        fs::write(&path, "not json").unwrap();
        assert!(load_prior(&path).is_err());
        assert!(load_prior(&dir.join("missing.json")).is_err());
    }
}
