//! ASCII tables and CSV export for experiment results.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title, printed above the grid.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have one cell per header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as CSV (headers first; fields containing commas
    /// or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Formats an `f64` statistic the way the paper prints them: two decimals,
/// or `"-"` for NaN (no successful attacks).
pub fn fmt_stat(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else {
        format!("{v:.2}")
    }
}

/// Formats a rate as a percentage with one decimal.
pub fn fmt_rate(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["Attack".into(), "Avg".into(), "Median".into()]);
        t.push_row(vec!["oppsla".into(), "104.07".into(), "9.0".into()]);
        t.push_row(vec!["sparse-rs".into(), "557.20".into(), "62.0".into()]);
        t
    }

    #[test]
    fn display_is_aligned() {
        let s = sample().to_string();
        assert!(s.contains("| Attack    |"), "{s}");
        assert!(s.contains("| oppsla    |"), "{s}");
        let widths: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{s}"
        );
    }

    #[test]
    fn csv_round_trip_fields() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "Attack,Avg,Median");
        assert_eq!(lines.next().unwrap(), "oppsla,104.07,9.0");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_checks_width() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn stat_formatting() {
        assert_eq!(fmt_stat(104.066), "104.07");
        assert_eq!(fmt_stat(f64::NAN), "-");
        assert_eq!(fmt_rate(0.591), "59.1%");
    }
}
