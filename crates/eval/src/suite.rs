//! Per-class program suites.
//!
//! The paper synthesizes one adversarial program per class (e.g. ten
//! programs for CIFAR-10, one per 50-image class training set) and attacks
//! a test image with the program of its true class. [`ProgramSuite`]
//! bundles those programs; [`SuiteAttack`] dispatches per image.

use oppsla_attacks::{Attack, AttackOutcome, SketchProgramAttack};
use oppsla_core::dsl::Program;
use oppsla_core::image::Image;
use oppsla_core::oracle::{BatchClassifier, Classifier, Oracle};
use oppsla_core::prior::Prior;
use oppsla_core::synth::{synthesize, synthesize_parallel, Labeled, SynthConfig, SynthReport};
use rand::RngCore;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// A set of synthesized programs, one per class (or a single shared one).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSuite {
    programs: Vec<Program>,
}

impl ProgramSuite {
    /// A suite that uses the same program for every class.
    pub fn shared(program: Program) -> Self {
        ProgramSuite {
            programs: vec![program],
        }
    }

    /// A suite with one program per class.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn per_class(programs: Vec<Program>) -> Self {
        assert!(!programs.is_empty(), "a suite needs at least one program");
        ProgramSuite { programs }
    }

    /// The program used for `class`.
    pub fn program_for(&self, class: usize) -> &Program {
        if self.programs.len() == 1 {
            &self.programs[0]
        } else {
            &self.programs[class % self.programs.len()]
        }
    }

    /// All programs in the suite.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }
}

/// Synthesizes a per-class suite: one OPPSLA run per class over that
/// class's slice of `train`. Returns the suite plus each class's
/// [`SynthReport`] (for query accounting).
///
/// Classes with no training images fall back to the fixed-prioritization
/// program.
pub fn synthesize_suite(
    classifier: &dyn Classifier,
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
) -> (ProgramSuite, Vec<Option<SynthReport>>) {
    suite_core(
        train,
        num_classes,
        config,
        &mut |class_train, class_config| synthesize(classifier, class_train, class_config),
    )
}

/// [`synthesize_suite`] with each class's OPPSLA run evaluating candidates
/// on [`SynthConfig::threads`] workers. Per-class seeds and bit-identical
/// parallel evaluation make the resulting suite identical to the
/// sequential one for any thread count.
pub fn synthesize_suite_parallel(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
) -> (ProgramSuite, Vec<Option<SynthReport>>) {
    suite_core(
        train,
        num_classes,
        config,
        &mut |class_train, class_config| synthesize_parallel(classifier, class_train, class_config),
    )
}

/// [`synthesize_suite_parallel`] with telemetry plumbing: counters
/// recorded during the whole per-class synthesis sweep (candidate
/// programs, acceptances, phase queries, delta-cache traffic) are emitted
/// to `sink` as one `suite_synthesis` event. The returned suite is
/// identical to the unplumbed call.
pub fn synthesize_suite_parallel_with_sink(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
    sink: &mut dyn oppsla_core::telemetry::MetricsSink,
) -> (ProgramSuite, Vec<Option<SynthReport>>) {
    use oppsla_core::telemetry::FieldValue;
    let labels = [
        ("classes", FieldValue::U64(num_classes as u64)),
        ("train_images", FieldValue::U64(train.len() as u64)),
    ];
    crate::obs::with_phase(sink, "suite_synthesis", &labels, || {
        synthesize_suite_parallel(classifier, train, num_classes, config)
    })
}

/// The per-class loop shared by the sequential and parallel suite
/// synthesizers; `synth` runs OPPSLA on one class's training slice.
fn suite_core(
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
    synth: &mut dyn FnMut(&[Labeled], &SynthConfig) -> SynthReport,
) -> (ProgramSuite, Vec<Option<SynthReport>>) {
    assert!(num_classes >= 2, "need at least two classes");
    let mut programs = Vec::with_capacity(num_classes);
    let mut reports = Vec::with_capacity(num_classes);
    for class in 0..num_classes {
        oppsla_core::telemetry::trace::begin_class(class as u32);
        let class_train: Vec<Labeled> =
            train.iter().filter(|(_, c)| *c == class).cloned().collect();
        if class_train.is_empty() {
            programs.push(Program::constant(false));
            reports.push(None);
            continue;
        }
        let mut class_config = config.clone();
        class_config.seed = config.seed.wrapping_add(class as u64);
        let report = synth(&class_train, &class_config);
        programs.push(report.program.clone());
        reports.push(Some(report));
    }
    (ProgramSuite::per_class(programs), reports)
}

/// Loads a suite from a JSON cache file.
///
/// # Errors
///
/// Returns an error string when the file is unreadable or malformed.
pub fn load_suite(path: &Path) -> Result<ProgramSuite, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let programs: Vec<Program> =
        serde_json::from_str(&json).map_err(|e| format!("parse {}: {e}", path.display()))?;
    if programs.is_empty() {
        return Err(format!("{}: empty suite", path.display()));
    }
    Ok(ProgramSuite { programs })
}

/// Saves a suite as JSON, creating parent directories.
///
/// # Errors
///
/// Returns an error string on filesystem or serialization failure.
pub fn save_suite(suite: &ProgramSuite, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    let json = serde_json::to_string_pretty(&suite.programs).map_err(|e| e.to_string())?;
    fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Synthesizes a per-class suite with a JSON file cache: a readable cache
/// file short-circuits synthesis (returning no reports); otherwise the
/// suite is synthesized and cached.
pub fn synthesize_suite_cached(
    classifier: &dyn Classifier,
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
    cache_path: Option<&Path>,
) -> (ProgramSuite, Option<Vec<Option<SynthReport>>>) {
    cached_core(cache_path, &mut || {
        synthesize_suite(classifier, train, num_classes, config)
    })
}

/// [`synthesize_suite_cached`] on the parallel synthesis path; cache files
/// are interchangeable between the two (the suites are identical).
pub fn synthesize_suite_cached_parallel(
    classifier: &dyn BatchClassifier,
    train: &[Labeled],
    num_classes: usize,
    config: &SynthConfig,
    cache_path: Option<&Path>,
) -> (ProgramSuite, Option<Vec<Option<SynthReport>>>) {
    cached_core(cache_path, &mut || {
        synthesize_suite_parallel(classifier, train, num_classes, config)
    })
}

fn cached_core(
    cache_path: Option<&Path>,
    synth: &mut dyn FnMut() -> (ProgramSuite, Vec<Option<SynthReport>>),
) -> (ProgramSuite, Option<Vec<Option<SynthReport>>>) {
    if let Some(path) = cache_path {
        if let Ok(suite) = load_suite(path) {
            return (suite, None);
        }
    }
    let (suite, reports) = synth();
    if let Some(path) = cache_path {
        if let Err(e) = save_suite(&suite, path) {
            eprintln!("warning: failed to cache program suite: {e}");
        }
    }
    (suite, Some(reports))
}

/// An [`Attack`] that runs the suite program matching each image's class.
#[derive(Clone)]
pub struct SuiteAttack {
    suite: ProgramSuite,
    name: &'static str,
    /// Initial-queue prior; `None` = the paper's uniform order.
    prior: Option<Arc<dyn Prior>>,
}

impl std::fmt::Debug for SuiteAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteAttack")
            .field("suite", &self.suite)
            .field("name", &self.name)
            .field(
                "prior",
                &self.prior.as_ref().map_or("uniform", |p| p.name()),
            )
            .finish()
    }
}

impl PartialEq for SuiteAttack {
    fn eq(&self, other: &Self) -> bool {
        let same_prior = match (&self.prior, &other.prior) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.suite == other.suite && self.name == other.name && same_prior
    }
}

impl SuiteAttack {
    /// Wraps a suite under the report name `"oppsla"`.
    pub fn new(suite: ProgramSuite) -> Self {
        SuiteAttack {
            suite,
            name: "oppsla",
            prior: None,
        }
    }

    /// Wraps a suite under a custom report name.
    pub fn named(suite: ProgramSuite, name: &'static str) -> Self {
        SuiteAttack {
            suite,
            name,
            prior: None,
        }
    }

    /// Sets the initial-queue prior applied to every dispatched program
    /// (the paper's uniform centre-out order by default). The prior only
    /// permutes the starting order; success guarantees are untouched.
    pub fn with_prior(mut self, prior: Arc<dyn Prior>) -> Self {
        self.prior = Some(prior);
        self
    }

    /// The wrapped suite.
    pub fn suite(&self) -> &ProgramSuite {
        &self.suite
    }
}

impl Attack for SuiteAttack {
    fn name(&self) -> &'static str {
        self.name
    }

    fn attack(
        &self,
        oracle: &mut Oracle<'_>,
        image: &Image,
        true_class: usize,
        rng: &mut dyn RngCore,
    ) -> AttackOutcome {
        let program = self.suite.program_for(true_class).clone();
        let mut attack = SketchProgramAttack::new(program);
        if let Some(prior) = &self.prior {
            attack = attack.with_prior(Arc::clone(prior));
        }
        attack.attack(oracle, image, true_class, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shared_suite_serves_same_program_for_all_classes() {
        let suite = ProgramSuite::shared(Program::paper_example());
        assert_eq!(suite.program_for(0), suite.program_for(7));
    }

    #[test]
    fn per_class_suite_dispatches_by_class() {
        let a = Program::constant(false);
        let b = Program::paper_example();
        let suite = ProgramSuite::per_class(vec![a.clone(), b.clone()]);
        assert_eq!(*suite.program_for(0), a);
        assert_eq!(*suite.program_for(1), b);
    }

    #[test]
    fn synthesize_suite_produces_one_program_per_class() {
        let clf = FnClassifier::new(2, |img: &Image| {
            if img.pixel(Location::new(1, 1)) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let train = vec![
            (Image::filled(3, 3, Pixel([0.4, 0.4, 0.4])), 0),
            (Image::filled(3, 3, Pixel([0.5, 0.5, 0.5])), 0),
        ];
        let config = SynthConfig {
            max_iterations: 2,
            ..SynthConfig::default()
        };
        let (suite, reports) = synthesize_suite(&clf, &train, 2, &config);
        assert_eq!(suite.programs().len(), 2);
        assert!(reports[0].is_some(), "class 0 had training data");
        assert!(reports[1].is_none(), "class 1 had none → fallback");
        assert_eq!(*suite.program_for(1), Program::constant(false));
    }

    #[test]
    fn parallel_suite_matches_sequential_suite() {
        let clf = FnClassifier::new(2, |img: &Image| {
            if img.pixel(Location::new(1, 1)) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let train = vec![
            (Image::filled(3, 3, Pixel([0.4, 0.4, 0.4])), 0),
            (Image::filled(3, 3, Pixel([0.5, 0.5, 0.5])), 0),
            (Image::filled(3, 3, Pixel([0.6, 0.6, 0.6])), 1),
        ];
        let config = SynthConfig {
            max_iterations: 3,
            ..SynthConfig::default()
        };
        let (sequential, seq_reports) = synthesize_suite(&clf, &train, 2, &config);
        for threads in [1, 4] {
            let par_config = SynthConfig {
                threads,
                ..config.clone()
            };
            let (parallel, par_reports) = synthesize_suite_parallel(&clf, &train, 2, &par_config);
            assert_eq!(parallel, sequential, "threads = {threads}");
            // Reports differ only in the recorded thread count's effect on
            // nothing: evaluations, acceptance, and totals are identical.
            assert_eq!(par_reports, seq_reports, "threads = {threads}");
        }
    }

    #[test]
    fn suite_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("oppsla-suite-test-{}", std::process::id()));
        let path = dir.join("suite.json");
        let suite = ProgramSuite::per_class(vec![
            Program::paper_example(),
            Program::constant(false),
            Program::constant(true),
        ]);
        save_suite(&suite, &path).unwrap();
        let loaded = load_suite(&path).unwrap();
        assert_eq!(loaded, suite);
    }

    #[test]
    fn load_suite_rejects_missing_and_malformed_files() {
        assert!(load_suite(std::path::Path::new("/nonexistent/suite.json")).is_err());
        let dir = std::env::temp_dir().join(format!("oppsla-suite-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "[not json").unwrap();
        assert!(load_suite(&path).is_err());
        std::fs::write(&path, "[]").unwrap();
        assert!(load_suite(&path).is_err(), "empty suites are rejected");
    }

    #[test]
    fn synthesize_suite_cached_short_circuits_on_hit() {
        let clf = FnClassifier::new(2, |img: &Image| {
            if img.pixel(Location::new(1, 1)) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let train = vec![(Image::filled(3, 3, Pixel([0.4, 0.4, 0.4])), 0)];
        let config = SynthConfig {
            max_iterations: 1,
            ..SynthConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("oppsla-suite-hit-{}", std::process::id()));
        let path = dir.join("cached.json");
        let (first, first_reports) = synthesize_suite_cached(&clf, &train, 2, &config, Some(&path));
        assert!(first_reports.is_some(), "cold cache synthesizes");
        let (second, second_reports) =
            synthesize_suite_cached(&clf, &train, 2, &config, Some(&path));
        assert!(second_reports.is_none(), "warm cache loads");
        assert_eq!(first, second);
    }

    #[test]
    fn suite_attack_succeeds_like_underlying_program() {
        let clf = FnClassifier::new(2, |img: &Image| {
            if img.pixel(Location::new(0, 0)) == Pixel([0.0, 0.0, 0.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        });
        let suite = ProgramSuite::shared(Program::constant(false));
        let attack = SuiteAttack::new(suite);
        let mut oracle = Oracle::new(&clf);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let img = Image::filled(3, 3, Pixel([0.6, 0.6, 0.6]));
        assert!(attack.attack(&mut oracle, &img, 0, &mut rng).is_success());
    }
}
