//! The synthesis-cost experiment (Figure 4): how the quality of the
//! incumbent program improves with synthesis queries and iterations.
//!
//! OPPSLA runs once per (classifier, training set); the paper records
//! every accepted intermediate program, re-evaluates it on a held-out test
//! set, and plots the resulting average query count against (a) the
//! synthesis queries spent up to its acceptance and (b) the iteration
//! index — with the fixed-prioritization program (conditions = false) as
//! the zero-synthesis-queries comparison line.

use crate::curves::{evaluate_attack, evaluate_attack_parallel};
use crate::report::{fmt_stat, Table};
use oppsla_attacks::SketchProgramAttack;
use oppsla_core::dsl::Program;
use oppsla_core::image::Image;
use oppsla_core::oracle::{BatchClassifier, Classifier};
use oppsla_core::synth::{synthesize, synthesize_parallel, SynthConfig, SynthReport};

/// One point of the Figure 4 series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// MH iteration at which this program became the incumbent (0 = the
    /// initial random program).
    pub iteration: usize,
    /// Synthesis queries spent up to that acceptance.
    pub synthesis_queries: u64,
    /// The accepted program.
    pub program: Program,
    /// Its average query count on the held-out test set.
    pub test_avg_queries: f64,
    /// Its success rate on the held-out test set.
    pub test_success_rate: f64,
}

/// The full Figure 4 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryResult {
    /// One point per accepted program, in acceptance order.
    pub points: Vec<TrajectoryPoint>,
    /// The fixed-prioritization baseline's average queries on the same
    /// test set (the paper's comparison line; costs zero synthesis
    /// queries).
    pub fixed_baseline_avg: f64,
    /// The underlying synthesis report.
    pub report: SynthReport,
}

/// Runs the Figure 4 experiment: synthesizes on `train`, then evaluates
/// every accepted intermediate program and the Sketch+False baseline on
/// `test`.
pub fn run_trajectory(
    classifier: &dyn Classifier,
    train: &[(Image, usize)],
    test: &[(Image, usize)],
    synth_config: &SynthConfig,
    eval_budget: u64,
    eval_seed: u64,
) -> TrajectoryResult {
    let report = synthesize(classifier, train, synth_config);
    trajectory_core(report, &mut |program| {
        let attack = SketchProgramAttack::new(program);
        let eval = evaluate_attack(&attack, classifier, test, eval_budget, eval_seed);
        (eval.avg_queries(), eval.success_rate())
    })
}

/// [`run_trajectory`] with synthesis and the per-point test evaluations
/// fanned out over [`SynthConfig::threads`] workers. The result is
/// identical to the sequential one for any thread count.
pub fn run_trajectory_parallel(
    classifier: &dyn BatchClassifier,
    train: &[(Image, usize)],
    test: &[(Image, usize)],
    synth_config: &SynthConfig,
    eval_budget: u64,
    eval_seed: u64,
) -> TrajectoryResult {
    let threads = synth_config.threads;
    let report = synthesize_parallel(classifier, train, synth_config);
    trajectory_core(report, &mut |program| {
        let attack = SketchProgramAttack::new(program);
        let eval =
            evaluate_attack_parallel(&attack, classifier, test, eval_budget, eval_seed, threads);
        (eval.avg_queries(), eval.success_rate())
    })
}

/// [`run_trajectory_parallel`] with telemetry plumbing: counters recorded
/// across the synthesis run and every per-point test evaluation are
/// emitted to `sink` as one `trajectory` event. The returned result is
/// identical to the unplumbed call.
pub fn run_trajectory_parallel_with_sink(
    classifier: &dyn BatchClassifier,
    train: &[(Image, usize)],
    test: &[(Image, usize)],
    synth_config: &SynthConfig,
    eval_budget: u64,
    eval_seed: u64,
    sink: &mut dyn oppsla_core::telemetry::MetricsSink,
) -> TrajectoryResult {
    use oppsla_core::telemetry::FieldValue;
    let labels = [
        ("train_images", FieldValue::U64(train.len() as u64)),
        ("test_images", FieldValue::U64(test.len() as u64)),
        ("eval_budget", FieldValue::U64(eval_budget)),
    ];
    crate::obs::with_phase(sink, "trajectory", &labels, || {
        run_trajectory_parallel(
            classifier,
            train,
            test,
            synth_config,
            eval_budget,
            eval_seed,
        )
    })
}

/// Re-evaluates every accepted program plus the fixed baseline; `evaluate`
/// returns `(avg queries, success rate)` of a program on the test set.
fn trajectory_core(
    report: SynthReport,
    evaluate: &mut dyn FnMut(Program) -> (f64, f64),
) -> TrajectoryResult {
    let points = report
        .accepted_trajectory()
        .into_iter()
        .map(|(iteration, synthesis_queries, program)| {
            let (test_avg_queries, test_success_rate) = evaluate(program.clone());
            TrajectoryPoint {
                iteration,
                synthesis_queries,
                program,
                test_avg_queries,
                test_success_rate,
            }
        })
        .collect();

    let (fixed_baseline_avg, _) = evaluate(Program::constant(false));

    TrajectoryResult {
        points,
        fixed_baseline_avg,
        report,
    }
}

/// Renders the trajectory as a two-axis table (the data behind both panels
/// of Figure 4).
pub fn trajectory_table(result: &TrajectoryResult) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 4: avg #queries vs synthesis cost (Sketch+False baseline: {})",
            fmt_stat(result.fixed_baseline_avg)
        ),
        vec![
            "Iteration".into(),
            "Synthesis #Queries".into(),
            "Avg #Queries (test)".into(),
            "Success rate".into(),
            "Program".into(),
        ],
    );
    for p in &result.points {
        table.push_row(vec![
            p.iteration.to_string(),
            p.synthesis_queries.to_string(),
            fmt_stat(p.test_avg_queries),
            crate::report::fmt_rate(p.test_success_rate),
            p.program.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};

    fn weak_clf() -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, |img: &Image| {
            for row in 2..5u16 {
                for col in 2..5u16 {
                    if img.pixel(Location::new(row, col)) == Pixel([1.0, 1.0, 1.0]) {
                        return vec![0.2, 0.8];
                    }
                }
            }
            vec![0.8, 0.2]
        })
    }

    #[test]
    fn trajectory_points_are_ordered_and_evaluated() {
        let clf = weak_clf();
        let mk = |v: f32| (Image::filled(7, 7, Pixel([v, v, v])), 0usize);
        let train = vec![mk(0.3), mk(0.4)];
        let test = vec![mk(0.35), mk(0.45)];
        let config = SynthConfig {
            max_iterations: 6,
            seed: 5,
            ..SynthConfig::default()
        };
        let result = run_trajectory(&clf, &train, &test, &config, 10_000, 0);
        assert!(
            !result.points.is_empty(),
            "initial program is always a point"
        );
        assert_eq!(result.points[0].iteration, 0);
        for w in result.points.windows(2) {
            assert!(w[0].iteration < w[1].iteration);
            assert!(w[0].synthesis_queries <= w[1].synthesis_queries);
        }
        for p in &result.points {
            assert_eq!(p.test_success_rate, 1.0, "sketch is exhaustive");
            assert!(p.test_avg_queries.is_finite());
        }
        assert!(result.fixed_baseline_avg.is_finite());
    }

    #[test]
    fn parallel_trajectory_matches_sequential() {
        let clf = weak_clf();
        let mk = |v: f32| (Image::filled(7, 7, Pixel([v, v, v])), 0usize);
        let train = vec![mk(0.3), mk(0.4)];
        let test = vec![mk(0.35)];
        let config = SynthConfig {
            max_iterations: 4,
            seed: 5,
            ..SynthConfig::default()
        };
        let sequential = run_trajectory(&clf, &train, &test, &config, 10_000, 0);
        for threads in [1, 4] {
            let par_config = SynthConfig {
                threads,
                ..config.clone()
            };
            let parallel = run_trajectory_parallel(&clf, &train, &test, &par_config, 10_000, 0);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn table_contains_the_baseline_in_the_title() {
        let clf = weak_clf();
        let mk = |v: f32| (Image::filled(7, 7, Pixel([v, v, v])), 0usize);
        let result = run_trajectory(
            &clf,
            &[mk(0.3)],
            &[mk(0.4)],
            &SynthConfig {
                max_iterations: 2,
                ..SynthConfig::default()
            },
            10_000,
            0,
        );
        let s = trajectory_table(&result).to_string();
        assert!(s.contains("Sketch+False baseline:"), "{s}");
    }
}
