//! Transferability (Table 1): programs synthesized for one classifier are
//! run against the others, measuring the increase in query count.
//!
//! Success rate is unaffected by transfer — any sketch instantiation is
//! exhaustive — so the interesting quantity is the average query count of
//! source-classifier programs on each target classifier. The diagonal is
//! the self-attack baseline.

use crate::curves::{
    evaluate_attack, evaluate_attack_parallel, evaluate_attack_parallel_with_memo, AttackEval,
};
use crate::report::{fmt_stat, Table};
use crate::suite::{ProgramSuite, SuiteAttack};
use oppsla_core::image::Image;
use oppsla_core::oracle::{BatchClassifier, Classifier, MemoBank};
use oppsla_core::telemetry::trace;

/// The transferability matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferResult {
    /// Classifier labels, indexing both axes.
    pub labels: Vec<String>,
    /// `avg_queries[target][source]`: average queries on classifier
    /// `target` using the suite synthesized for classifier `source`
    /// (matching the paper's table orientation: rows = targets,
    /// columns = synthesized-for).
    pub avg_queries: Vec<Vec<f64>>,
    /// `success_rate[target][source]` on valid images.
    pub success_rate: Vec<Vec<f64>>,
}

/// Runs the transferability experiment: for every (source, target) pair,
/// evaluates `suites[source]` on `classifiers[target]` over `test`.
///
/// # Panics
///
/// Panics if the numbers of labels, classifiers and suites disagree or are
/// empty.
pub fn run_transfer(
    labels: &[String],
    classifiers: &[&dyn Classifier],
    suites: &[ProgramSuite],
    test: &[(Image, usize)],
    eval_budget: u64,
    seed: u64,
) -> TransferResult {
    transfer_core(
        labels,
        classifiers.len(),
        suites,
        &mut |_, target, attack| {
            evaluate_attack(attack, classifiers[target], test, eval_budget, seed)
        },
    )
}

/// [`run_transfer`] with each (source, target) evaluation fanned out over
/// `threads` workers. The matrix is identical to the sequential one for
/// any thread count.
pub fn run_transfer_parallel(
    labels: &[String],
    classifiers: &[&dyn BatchClassifier],
    suites: &[ProgramSuite],
    test: &[(Image, usize)],
    eval_budget: u64,
    seed: u64,
    threads: usize,
) -> TransferResult {
    transfer_core(
        labels,
        classifiers.len(),
        suites,
        &mut |_, target, attack| {
            evaluate_attack_parallel(
                attack,
                classifiers[target],
                test,
                eval_budget,
                seed,
                threads,
            )
        },
    )
}

/// [`run_transfer_parallel`] with trace sectioning: each (source, target)
/// cell becomes its own trace section, cloned from `meta` with the label,
/// target architecture, and attack provenance filled per cell (so
/// `trace_replay` can rebuild the target model and image set). The
/// returned matrix is identical to the untraced call.
#[allow(clippy::too_many_arguments)]
pub fn run_transfer_parallel_traced(
    labels: &[String],
    classifiers: &[&dyn BatchClassifier],
    suites: &[ProgramSuite],
    test: &[(Image, usize)],
    eval_budget: u64,
    seed: u64,
    threads: usize,
    meta: &trace::SectionMeta,
) -> TransferResult {
    transfer_core(
        labels,
        classifiers.len(),
        suites,
        &mut |source, target, attack| {
            if trace::armed() {
                let mut m = meta.clone();
                m.label = format!("{}/{}<-{}", meta.label, labels[target], labels[source]);
                m.arch.clone_from(&labels[target]);
                m.attack = format!("oppsla[{}]", labels[source]);
                trace::begin_section(m);
            }
            evaluate_attack_parallel(
                attack,
                classifiers[target],
                test,
                eval_budget,
                seed,
                threads,
            )
        },
    )
}

/// [`run_transfer_parallel_traced`] with one [`MemoBank`] per *target*
/// classifier: every source suite attacking target `t` shares
/// `banks[t]`, so candidate queries one source already paid for are
/// served to the others for free. Banks are strictly per target — memo
/// keys carry no classifier identity, so sharing one bank across
/// classifiers would serve wrong scores. Success rates are identical to
/// the memo-less run; only `avg_queries` can drop (and the drop is the
/// cross-source redundancy Table 1 quantifies).
///
/// # Panics
///
/// Panics like [`run_transfer_parallel_traced`], or if `banks` does not
/// hold exactly one bank per classifier.
#[allow(clippy::too_many_arguments)]
pub fn run_transfer_parallel_with_memo(
    labels: &[String],
    classifiers: &[&dyn BatchClassifier],
    suites: &[ProgramSuite],
    test: &[(Image, usize)],
    eval_budget: u64,
    seed: u64,
    threads: usize,
    meta: &trace::SectionMeta,
    banks: &[MemoBank],
) -> TransferResult {
    assert_eq!(
        banks.len(),
        classifiers.len(),
        "one memo bank per target classifier"
    );
    transfer_core(
        labels,
        classifiers.len(),
        suites,
        &mut |source, target, attack| {
            if trace::armed() {
                let mut m = meta.clone();
                m.label = format!("{}/{}<-{}", meta.label, labels[target], labels[source]);
                m.arch.clone_from(&labels[target]);
                m.attack = format!("oppsla[{}]", labels[source]);
                trace::begin_section(m);
            }
            evaluate_attack_parallel_with_memo(
                attack,
                classifiers[target],
                test,
                eval_budget,
                seed,
                threads,
                &banks[target],
            )
        },
    )
}

/// The (source, target) sweep shared by the sequential and parallel
/// transfer runners; `eval` evaluates one suite attack on one target.
fn transfer_core(
    labels: &[String],
    n: usize,
    suites: &[ProgramSuite],
    eval: &mut dyn FnMut(usize, usize, &SuiteAttack) -> AttackEval,
) -> TransferResult {
    assert!(n > 0, "no classifiers");
    assert_eq!(labels.len(), n, "one label per classifier");
    assert_eq!(suites.len(), n, "one suite per classifier");

    let mut avg_queries = vec![vec![f64::NAN; n]; n];
    let mut success_rate = vec![vec![0.0; n]; n];
    for (source, suite) in suites.iter().enumerate() {
        let attack = SuiteAttack::new(suite.clone());
        for target in 0..n {
            let result = eval(source, target, &attack);
            avg_queries[target][source] = result.avg_queries();
            success_rate[target][source] = result.success_rate();
        }
    }
    TransferResult {
        labels: labels.to_vec(),
        avg_queries,
        success_rate,
    }
}

/// Renders the result as the paper's Table 1.
pub fn transfer_table(result: &TransferResult) -> Table {
    let mut headers = vec!["Target \\ Synthesized for".to_owned()];
    headers.extend(result.labels.iter().cloned());
    let mut table = Table::new(
        "Table 1: transferability — avg #queries of programs synthesized for another classifier",
        headers,
    );
    for (target, label) in result.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        row.extend(result.avg_queries[target].iter().map(|&v| fmt_stat(v)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::dsl::Program;
    use oppsla_core::oracle::FnClassifier;
    use oppsla_core::pair::{Location, Pixel};

    fn clf_at(target: Location) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
        FnClassifier::new(2, move |img: &Image| {
            if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
                vec![0.1, 0.9]
            } else {
                vec![0.9, 0.1]
            }
        })
    }

    #[test]
    fn transfer_matrix_has_expected_shape_and_success() {
        let a = clf_at(Location::new(1, 1));
        let b = clf_at(Location::new(3, 3));
        let classifiers: Vec<&dyn Classifier> = vec![&a, &b];
        let labels = vec!["A".to_owned(), "B".to_owned()];
        let suites = vec![
            ProgramSuite::shared(Program::constant(false)),
            ProgramSuite::shared(Program::paper_example()),
        ];
        let test = vec![
            (Image::filled(5, 5, Pixel([0.4, 0.4, 0.4])), 0),
            (Image::filled(5, 5, Pixel([0.5, 0.5, 0.5])), 0),
        ];
        let result = run_transfer(&labels, &classifiers, &suites, &test, 10_000, 0);
        assert_eq!(result.avg_queries.len(), 2);
        assert_eq!(result.avg_queries[0].len(), 2);
        // Exhaustive sketch: success everywhere within a generous budget.
        for row in &result.success_rate {
            for &s in row {
                assert_eq!(s, 1.0);
            }
        }
        // All averages are finite and at least 2 (baseline + one pair).
        for row in &result.avg_queries {
            for &q in row {
                assert!(q.is_finite() && q >= 2.0);
            }
        }
    }

    #[test]
    fn parallel_transfer_matches_sequential() {
        let a = clf_at(Location::new(1, 1));
        let b = clf_at(Location::new(3, 3));
        let labels = vec!["A".to_owned(), "B".to_owned()];
        let suites = vec![
            ProgramSuite::shared(Program::constant(false)),
            ProgramSuite::shared(Program::paper_example()),
        ];
        let test = vec![
            (Image::filled(5, 5, Pixel([0.4, 0.4, 0.4])), 0),
            (Image::filled(5, 5, Pixel([0.5, 0.5, 0.5])), 0),
        ];
        let sequential = {
            let classifiers: Vec<&dyn Classifier> = vec![&a, &b];
            run_transfer(&labels, &classifiers, &suites, &test, 10_000, 0)
        };
        let classifiers: Vec<&dyn BatchClassifier> = vec![&a, &b];
        for threads in [1, 4] {
            let parallel =
                run_transfer_parallel(&labels, &classifiers, &suites, &test, 10_000, 0, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn memoized_transfer_keeps_success_and_never_raises_queries() {
        let a = clf_at(Location::new(1, 1));
        let b = clf_at(Location::new(3, 3));
        let labels = vec!["A".to_owned(), "B".to_owned()];
        let suites = vec![
            ProgramSuite::shared(Program::constant(false)),
            ProgramSuite::shared(Program::paper_example()),
        ];
        let test = vec![
            (Image::filled(5, 5, Pixel([0.4, 0.4, 0.4])), 0),
            (Image::filled(5, 5, Pixel([0.5, 0.5, 0.5])), 0),
        ];
        let classifiers: Vec<&dyn BatchClassifier> = vec![&a, &b];
        let meta = trace::SectionMeta::default();
        let plain = run_transfer_parallel(&labels, &classifiers, &suites, &test, 10_000, 0, 1);
        let banks: Vec<MemoBank> = (0..2)
            .map(|_| MemoBank::new(test.len(), oppsla_core::oracle::DEFAULT_MEMO_CAPACITY))
            .collect();
        let memoed = run_transfer_parallel_with_memo(
            &labels,
            &classifiers,
            &suites,
            &test,
            10_000,
            0,
            1,
            &meta,
            &banks,
        );
        assert_eq!(memoed.success_rate, plain.success_rate);
        for (mr, pr) in memoed.avg_queries.iter().zip(&plain.avg_queries) {
            for (m, p) in mr.iter().zip(pr) {
                assert!(*m <= *p, "memoized transfer spent more queries: {m} > {p}");
            }
        }
        // The first source to hit each target pays full price: the
        // diagonal-free column for source 0 matches the plain run.
        for target in 0..2 {
            assert_eq!(memoed.avg_queries[target][0], plain.avg_queries[target][0]);
        }
        #[cfg(feature = "query-memo")]
        {
            // The second source reuses the first source's candidates.
            let improved = (0..2).any(|t| memoed.avg_queries[t][1] < plain.avg_queries[t][1]);
            assert!(improved, "a warm target bank must repay something");
        }
    }

    #[test]
    fn table_renders_rows_per_target() {
        let result = TransferResult {
            labels: vec!["X".into(), "Y".into()],
            avg_queries: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            success_rate: vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        };
        let s = transfer_table(&result).to_string();
        assert!(s.contains("| X "), "{s}");
        assert!(s.contains("| 3.00 "), "{s}");
    }
}
