//! The trained classifier zoo: builds, trains, caches and serves the
//! models the experiments attack.
//!
//! Experiment binaries call [`train_or_load`]; weights are cached under a
//! configurable directory (default `target/oppsla-models`) so repeated
//! runs skip training.

use crate::convert::{image_into_tensor, image_to_tensor};
use oppsla_core::image::Image;
use oppsla_core::oracle::{BatchClassifier, Classifier};
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::telemetry::{self, Counter};
use oppsla_data::{Dataset, DatasetSpec};
use oppsla_nn::delta::{BaseActivations, DeltaBatchScratch, DeltaPlan, DeltaWorkspace};
use oppsla_nn::infer::{ForwardWorkspace, InferenceEngine, InferencePlan};
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_nn::serialize::{load_weights, save_weights, WeightError};
use oppsla_nn::trainer::{evaluate_accuracy, fit, TrainConfig};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::fmt;
use std::path::PathBuf;

/// The two evaluation scales of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// CIFAR-10 stand-in: `shapes32` (32×32, 10 classes).
    Cifar,
    /// ImageNet stand-in: `shapes64` (64×64, 20 classes).
    ImageNetLike,
}

impl Scale {
    /// The dataset specification of this scale.
    pub fn dataset_spec(&self) -> DatasetSpec {
        match self {
            Scale::Cifar => DatasetSpec::shapes32(),
            Scale::ImageNetLike => DatasetSpec::shapes64(),
        }
    }

    /// The network input geometry of this scale.
    pub fn input_spec(&self) -> InputSpec {
        match self {
            Scale::Cifar => InputSpec::RGB32,
            Scale::ImageNetLike => InputSpec::RGB64,
        }
    }

    /// A short identifier for cache file names.
    pub fn id(&self) -> &'static str {
        match self {
            Scale::Cifar => "shapes32",
            Scale::ImageNetLike => "shapes64",
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Training/caching configuration for the zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooConfig {
    /// Training images generated per class.
    pub train_per_class: usize,
    /// Epochs of Adam training; `None` picks a per-architecture default
    /// calibrated so every family lands at moderate accuracy with a
    /// realistic one-pixel-vulnerable population (see DESIGN.md).
    pub epochs: Option<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for data generation, weight init and shuffling.
    pub seed: u64,
    /// Weight-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            train_per_class: 40,
            epochs: None,
            learning_rate: 1e-3,
            seed: 0xA77AC4,
            cache_dir: Some(PathBuf::from("target/oppsla-models")),
        }
    }
}

/// Per-architecture default epochs: calibrated (by a margin-sensitivity
/// sweep) so each family trains to moderate accuracy while keeping a
/// sizeable population of one-pixel-vulnerable test images.
fn default_epochs(arch: Arch) -> usize {
    match arch {
        Arch::VggSmall => 2,
        Arch::ResNetSmall => 4,
        Arch::GoogLeNetSmall => 4,
        Arch::DenseNetSmall => 3,
        Arch::Mlp => 4,
    }
}

/// A trained classifier from the zoo.
///
/// Queries are served by a compiled [`InferenceEngine`] (bit-identical to
/// the autograd tape, allocation-free in steady state) built from the
/// weights at construction time. If the wrapped network is trained further
/// through [`ZooModel::network`], call [`ZooModel::recompile`] to refresh
/// the engine.
pub struct ZooModel {
    net: ConvNet,
    engine: InferenceEngine,
    scale: Scale,
    /// Accuracy on a held-out generated test set.
    pub test_accuracy: f32,
}

impl fmt::Debug for ZooModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ZooModel")
            .field("arch", &self.net.arch())
            .field("scale", &self.scale)
            .field("test_accuracy", &self.test_accuracy)
            .finish()
    }
}

impl ZooModel {
    /// The architecture family.
    pub fn arch(&self) -> Arch {
        self.net.arch()
    }

    /// The evaluation scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The wrapped network (e.g. for further training or inspection).
    pub fn network(&self) -> &ConvNet {
        &self.net
    }

    /// Rebuilds the inference engine from the network's current weights
    /// (needed after training the network further).
    pub fn recompile(&mut self) {
        self.engine = InferenceEngine::new(&self.net);
    }

    /// A thread-safe, allocation-free classifier snapshotting the current
    /// weights — the handle to pass to the `*_parallel` evaluation paths.
    pub fn classifier(&self) -> ZooClassifier {
        ZooClassifier {
            engine: InferenceEngine::new(&self.net),
        }
    }
}

impl Classifier for ZooModel {
    fn num_classes(&self) -> usize {
        self.net.num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.engine.scores(&image_to_tensor(image))
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        self.engine.scores_into(&image_to_tensor(image), out);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.engine.scores_pixel_delta_into(
            &image_to_tensor(base),
            location.row as usize,
            location.col as usize,
            pixel.0,
            out,
        );
    }
}

/// A standalone engine-backed classifier: owns a compiled weight snapshot
/// and no tape state, so it is `Sync` and can serve concurrent queries via
/// [`BatchClassifier::session`] handles (one forward workspace each).
pub struct ZooClassifier {
    engine: InferenceEngine,
}

impl ZooClassifier {
    /// Compiles a classifier from a network's current weights.
    pub fn new(net: &ConvNet) -> Self {
        ZooClassifier {
            engine: InferenceEngine::new(net),
        }
    }
}

impl fmt::Debug for ZooClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ZooClassifier({} classes)", self.num_classes())
    }
}

impl Classifier for ZooClassifier {
    fn num_classes(&self) -> usize {
        self.engine.plan().num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.engine.scores(&image_to_tensor(image))
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        self.engine.scores_into(&image_to_tensor(image), out);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.engine.scores_pixel_delta_into(
            &image_to_tensor(base),
            location.row as usize,
            location.col as usize,
            pixel.0,
            out,
        );
    }
}

impl BatchClassifier for ZooClassifier {
    fn session(&self) -> Box<dyn Classifier + '_> {
        self.session_with_cache_capacity(1)
    }
}

impl ZooClassifier {
    /// A session whose delta cache keeps up to `capacity` base images
    /// resident (LRU eviction) instead of the single-slot default — the
    /// handle for callers that interleave queries against several bases
    /// (the attack server's batch scheduler) and would otherwise
    /// rebase-thrash a one-slot cache on every base switch.
    pub fn session_with_cache_capacity(&self, capacity: usize) -> Box<dyn Classifier + '_> {
        Box::new(ZooSession {
            plan: self.engine.plan(),
            delta: self.engine.delta_plan(),
            state: RefCell::new(SessionState::new(self.engine.plan(), capacity)),
        })
    }

    /// An owned session over an `Arc`-shared classifier: the same
    /// incremental machinery as [`BatchClassifier::session`], but with no
    /// borrow of the classifier, so it can move into a long-lived worker
    /// thread. Methods take `&mut self` (a worker owns its session).
    pub fn owned_session(self: &std::sync::Arc<Self>, cache_capacity: usize) -> OwnedZooSession {
        OwnedZooSession {
            state: SessionState::new(self.engine.plan(), cache_capacity),
            classifier: std::sync::Arc::clone(self),
        }
    }
}

/// A per-thread query handle over a shared [`InferencePlan`]: carries its
/// own forward workspace and input scratch tensor, so steady-state queries
/// through [`Classifier::scores_into`] perform zero heap allocations.
///
/// Pixel-delta queries ([`Classifier::scores_pixel_delta_into`]) are
/// served incrementally: the first query against a new base image
/// captures a [`BaseActivations`] snapshot (one full forward), and every
/// further candidate against that base recomputes only its dirty region.
/// The session keeps an LRU of such snapshots (capacity 1 by default; see
/// [`ZooClassifier::session_with_cache_capacity`]), so callers serving
/// several interleaved bases don't pay a full recapture per switch.
pub struct ZooSession<'a> {
    plan: &'a InferencePlan,
    delta: &'a DeltaPlan,
    state: RefCell<SessionState>,
}

/// One candidate group of a cross-tenant grouped delta call: a base image
/// and the one-pixel candidates perturbing it (see
/// [`OwnedZooSession::scores_pixel_delta_grouped_into`]).
#[derive(Debug)]
pub struct DeltaGroup<'a> {
    /// The base image every candidate of this group perturbs.
    pub base: &'a Image,
    /// The group's candidates.
    pub candidates: &'a [(Location, Pixel)],
}

struct SessionState {
    ws: ForwardWorkspace,
    input: Tensor,
    /// Resident base snapshots, most recently used first.
    caches: Vec<SessionDeltaCache>,
    /// Maximum resident snapshots before LRU eviction (≥ 1).
    cache_capacity: usize,
    /// Monotonic id generator for cache contents: bumped whenever a slot
    /// captures or recaptures, so pooled grouped workspaces can tell
    /// whether their buffers still track the snapshot they were seeded
    /// from.
    next_cache_gen: u64,
    /// Lazily sized workspace for batched full forwards.
    bws: Option<oppsla_nn::batched::BatchedWorkspace>,
    /// Reusable tensor conversions for batched full forwards.
    batch_inputs: Vec<Tensor>,
    /// Reusable candidate buffer for batched delta queries.
    batch_candidates: Vec<(usize, usize, [f32; 3])>,
    /// Always-on LRU accounting (see [`SessionCacheStats`]): plain u64
    /// bumps, read by the attack server's live metrics plane. Unlike the
    /// feature-gated telemetry counts these exist in every build, so a
    /// default-build daemon can still report its cache behavior.
    cache_stats: SessionCacheStats,
    /// Workspace pool for grouped (multi-base) delta calls, parallel to
    /// `grouped_tags`.
    grouped_dws: Vec<DeltaWorkspace>,
    /// The cache generation each pooled workspace currently tracks.
    grouped_tags: Vec<u64>,
    /// Shared im2col/GEMM scratch for grouped delta calls.
    grouped_scratch: DeltaBatchScratch,
}

/// Cumulative base-snapshot LRU accounting for one session: how many
/// pixel-delta dispatches found their base resident (`hits`), recaptured
/// the least-recently-used slot for a new base (`rebases` — the eviction
/// path), or populated an empty slot (`colds`). Monotone totals; diff
/// two readings for a per-interval rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCacheStats {
    /// Dispatches whose base snapshot was already resident.
    pub hits: u64,
    /// Dispatches that evicted (recaptured) the LRU slot.
    pub rebases: u64,
    /// Dispatches that filled a previously empty slot.
    pub colds: u64,
}

struct SessionDeltaCache {
    base_image: Image,
    base: BaseActivations,
    /// Content id (see `SessionState::next_cache_gen`).
    gen: u64,
    dws: DeltaWorkspace,
    /// One workspace per in-flight batched candidate, grown on demand.
    batch_dws: Vec<DeltaWorkspace>,
    /// Shared im2col/GEMM scratch for the batched delta route.
    batch_scratch: DeltaBatchScratch,
}

impl SessionState {
    fn new(plan: &InferencePlan, cache_capacity: usize) -> Self {
        let spec = plan.input_spec();
        SessionState {
            ws: plan.workspace(),
            input: Tensor::zeros([spec.channels, spec.height, spec.width]),
            caches: Vec::new(),
            cache_capacity: cache_capacity.max(1),
            next_cache_gen: 0,
            bws: None,
            batch_inputs: Vec::new(),
            batch_candidates: Vec::new(),
            cache_stats: SessionCacheStats::default(),
            grouped_dws: Vec::new(),
            grouped_tags: Vec::new(),
            grouped_scratch: DeltaBatchScratch::new(),
        }
    }

    /// Ensures some resident cache tracks `base` (LRU hit / recapture of
    /// the least recently used slot / cold capture, with telemetry) and
    /// moves it to the front (`caches[0]`). Returns the front cache's
    /// content generation. Batch workspaces are re-seeded on a rebase so
    /// stale activations from the previous base can never leak into a
    /// batched candidate.
    fn ensure_cache(&mut self, plan: &InferencePlan, delta: &DeltaPlan, base: &Image) -> u64 {
        if let Some(i) = self.caches.iter().position(|c| c.base_image == *base) {
            self.cache_stats.hits += 1;
            telemetry::count(Counter::DeltaCacheHit);
            telemetry::trace::tag_cache(telemetry::trace::CacheTag::Hit);
            self.caches[..=i].rotate_right(1);
        } else if self.caches.len() < self.cache_capacity {
            self.cache_stats.colds += 1;
            telemetry::count(Counter::DeltaCacheCold);
            telemetry::trace::tag_cache(telemetry::trace::CacheTag::Cold);
            image_into_tensor(base, &mut self.input);
            let acts = BaseActivations::capture(plan, &mut self.ws, &self.input);
            let dws = delta.workspace(&acts);
            self.next_cache_gen += 1;
            self.caches.insert(
                0,
                SessionDeltaCache {
                    base_image: base.clone(),
                    base: acts,
                    gen: self.next_cache_gen,
                    dws,
                    batch_dws: Vec::new(),
                    batch_scratch: DeltaBatchScratch::new(),
                },
            );
        } else {
            self.cache_stats.rebases += 1;
            telemetry::count(Counter::DeltaCacheRebase);
            telemetry::trace::tag_cache(telemetry::trace::CacheTag::Rebase);
            image_into_tensor(base, &mut self.input);
            let c = self.caches.last_mut().expect("capacity >= 1");
            c.base.recapture(plan, &mut self.ws, &self.input);
            c.dws.reset_from(&c.base);
            for dws in &mut c.batch_dws {
                dws.reset_from(&c.base);
            }
            c.base_image.clone_from(base);
            self.next_cache_gen += 1;
            c.gen = self.next_cache_gen;
            self.caches.rotate_right(1);
        }
        self.caches[0].gen
    }

    fn scores_into(&mut self, plan: &InferencePlan, image: &Image, out: &mut Vec<f32>) {
        image_into_tensor(image, &mut self.input);
        plan.scores_into(&mut self.ws, &self.input, out);
    }

    fn pixel_delta_into(
        &mut self,
        plan: &InferencePlan,
        delta: &DeltaPlan,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.ensure_cache(plan, delta, base);
        let c = &mut self.caches[0];
        delta.scores_pixel_delta_into(
            plan,
            &c.base,
            &mut c.dws,
            location.row as usize,
            location.col as usize,
            pixel.0,
            out,
        );
    }

    fn batch_into(&mut self, plan: &InferencePlan, images: &[Image], out: &mut Vec<f32>) {
        out.clear();
        if images.is_empty() {
            return;
        }
        let batched = plan.batched();
        let spec = plan.input_spec();
        if self
            .bws
            .as_ref()
            .is_none_or(|w| w.max_batch() < images.len())
        {
            self.bws = Some(batched.workspace(images.len()));
        }
        self.batch_inputs.resize_with(images.len(), || {
            Tensor::zeros([spec.channels, spec.height, spec.width])
        });
        for (image, tensor) in images.iter().zip(self.batch_inputs.iter_mut()) {
            image_into_tensor(image, tensor);
        }
        batched.scores_batch_into(
            self.bws.as_mut().expect("sized above"),
            &self.batch_inputs[..images.len()],
            out,
        );
    }

    fn pixel_delta_batch_into(
        &mut self,
        plan: &InferencePlan,
        delta: &DeltaPlan,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if candidates.is_empty() {
            return;
        }
        self.ensure_cache(plan, delta, base);
        let SessionState {
            caches,
            batch_candidates,
            ..
        } = self;
        let c = &mut caches[0];
        while c.batch_dws.len() < candidates.len() {
            c.batch_dws.push(delta.workspace(&c.base));
        }
        batch_candidates.clear();
        batch_candidates.extend(
            candidates
                .iter()
                .map(|&(location, pixel)| (location.row as usize, location.col as usize, pixel.0)),
        );
        delta.scores_pixel_delta_batch_into(
            plan,
            &c.base,
            &mut c.batch_dws[..candidates.len()],
            batch_candidates,
            &mut c.batch_scratch,
            out,
        );
    }

    /// Scores several groups of one-pixel candidates — each group against
    /// its own base image — in **one** multi-base batched call, so
    /// candidates from different groups (different tenants, in the attack
    /// server) share im2col + GEMM work. Appends `num_classes` softmax
    /// scores per candidate to `out` (cleared first), group by group in
    /// order; each candidate's scores are bit-identical to a sequential
    /// [`Classifier::scores_pixel_delta_into`] against its own base.
    fn pixel_delta_grouped_into(
        &mut self,
        plan: &InferencePlan,
        delta: &DeltaPlan,
        groups: &[DeltaGroup<'_>],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if groups.is_empty() {
            return;
        }
        let distinct = {
            let mut n = 0;
            for (i, g) in groups.iter().enumerate() {
                if !groups[..i].iter().any(|h| h.base == g.base) {
                    n += 1;
                }
            }
            n
        };
        assert!(
            distinct <= self.cache_capacity,
            "a grouped call touches {distinct} distinct bases but the session \
             holds at most {} — a larger cache capacity is required so the \
             ensure pass cannot evict a base needed by the same call",
            self.cache_capacity
        );
        // Pass 1: make every group's base resident and record which cache
        // content (generation) each candidate needs.
        let total: usize = groups.iter().map(|g| g.candidates.len()).sum();
        self.batch_candidates.clear();
        let mut gens = Vec::with_capacity(total);
        for g in groups {
            let gen = self.ensure_cache(plan, delta, g.base);
            for &(location, pixel) in g.candidates {
                self.batch_candidates
                    .push((location.row as usize, location.col as usize, pixel.0));
                gens.push(gen);
            }
        }
        // Pass 2: assign pooled workspaces. A workspace whose tag differs
        // from its candidate's generation is reseeded from that snapshot
        // (full copy); matching tags only need the incremental restore
        // `begin_candidate` already performs.
        let SessionState {
            caches,
            grouped_dws,
            grouped_tags,
            grouped_scratch,
            batch_candidates,
            ..
        } = self;
        let find = |gen: u64| -> &SessionDeltaCache {
            caches
                .iter()
                .find(|c| c.gen == gen)
                .expect("resident: ensured above and capacity covers all groups")
        };
        while grouped_dws.len() < total {
            // Seeding from any snapshot is fine — the tag mismatch below
            // reseeds from the right one.
            let c = &caches[0];
            grouped_dws.push(delta.workspace(&c.base));
            grouped_tags.push(c.gen);
        }
        for i in 0..total {
            if grouped_tags[i] != gens[i] {
                grouped_dws[i].reset_from(&find(gens[i]).base);
                grouped_tags[i] = gens[i];
            }
        }
        let bases: Vec<&BaseActivations> = gens.iter().map(|&g| &find(g).base).collect();
        delta.scores_pixel_delta_multi_into(
            plan,
            &bases,
            &mut grouped_dws[..total],
            batch_candidates,
            grouped_scratch,
            out,
        );
    }
}

impl Classifier for ZooSession<'_> {
    fn num_classes(&self) -> usize {
        self.plan.num_classes()
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_classes());
        self.scores_into(image, &mut out);
        out
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        self.state.borrow_mut().scores_into(self.plan, image, out);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.state
            .borrow_mut()
            .pixel_delta_into(self.plan, self.delta, base, location, pixel, out);
    }

    fn scores_batch_into(&self, images: &[Image], out: &mut Vec<f32>) {
        self.state.borrow_mut().batch_into(self.plan, images, out);
    }

    fn scores_pixel_delta_batch_into(
        &self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        self.state
            .borrow_mut()
            .pixel_delta_batch_into(self.plan, self.delta, base, candidates, out);
    }
}

/// An owned per-worker session over an `Arc`-shared [`ZooClassifier`]:
/// the attack server's scheduler workers each hold one per model shard.
/// Same incremental machinery as [`ZooSession`] (LRU of base snapshots,
/// batched delta routes) plus the cross-tenant grouped entry point.
pub struct OwnedZooSession {
    classifier: std::sync::Arc<ZooClassifier>,
    state: SessionState,
}

impl OwnedZooSession {
    /// Class count of the underlying model.
    pub fn num_classes(&self) -> usize {
        self.classifier.num_classes()
    }

    /// Full forward scores for `image` (allocation-free steady state).
    pub fn scores_into(&mut self, image: &Image, out: &mut Vec<f32>) {
        self.state
            .scores_into(self.classifier.engine.plan(), image, out);
    }

    /// Incremental scores for one one-pixel candidate against `base`.
    pub fn scores_pixel_delta_into(
        &mut self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        self.state.pixel_delta_into(
            self.classifier.engine.plan(),
            self.classifier.engine.delta_plan(),
            base,
            location,
            pixel,
            out,
        );
    }

    /// Cumulative LRU accounting for this session's base-snapshot cache
    /// (always compiled; see [`SessionCacheStats`]). The attack server's
    /// scheduler workers diff successive readings to publish per-shard
    /// hit/eviction rates on their live metrics plane.
    #[must_use]
    pub fn cache_stats(&self) -> SessionCacheStats {
        self.state.cache_stats
    }

    /// Scores several candidate groups — each against its own base — in
    /// one multi-base batched call (see [`DeltaGroup`]): the cross-tenant
    /// packing entry of the attack server's batch scheduler. Appends
    /// `num_classes` softmax scores per candidate to `out` (cleared
    /// first), group by group in order; every candidate is bit-identical
    /// to its isolated sequential query.
    ///
    /// # Panics
    ///
    /// Panics if the groups touch more distinct bases than the session's
    /// cache capacity ([`ZooClassifier::owned_session`]).
    pub fn scores_pixel_delta_grouped_into(
        &mut self,
        groups: &[DeltaGroup<'_>],
        out: &mut Vec<f32>,
    ) {
        self.state.pixel_delta_grouped_into(
            self.classifier.engine.plan(),
            self.classifier.engine.delta_plan(),
            groups,
            out,
        );
    }
}

/// Trains (or loads from cache) a zoo model of `arch` at `scale`.
///
/// The model is trained on a freshly generated dataset and its accuracy is
/// measured on a held-out split. A cache hit skips training but still
/// regenerates the held-out split to recompute the accuracy (cheap).
pub fn train_or_load(arch: Arch, scale: Scale, config: &ZooConfig) -> ZooModel {
    let spec = scale.dataset_spec();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ arch_seed(arch));
    let net = ConvNet::build(arch, scale.input_spec(), spec.num_classes(), &mut rng);

    let epochs = config.epochs.unwrap_or_else(|| default_epochs(arch));
    let cache_path = config.cache_dir.as_ref().map(|dir| {
        dir.join(format!(
            "{}-{}-s{}-t{}-e{}.json",
            arch.id(),
            scale.id(),
            config.seed,
            config.train_per_class,
            epochs
        ))
    });

    let test = Dataset::generate(&spec, test_per_class(scale), config.seed.wrapping_add(1));

    if let Some(path) = &cache_path {
        match load_weights(&net, path) {
            Ok(()) => {
                telemetry::count(Counter::WeightCacheHit);
                let test_accuracy = evaluate_accuracy(&net, &test.images, &test.labels);
                let engine = InferenceEngine::new(&net);
                return ZooModel {
                    net,
                    engine,
                    scale,
                    test_accuracy,
                };
            }
            Err(WeightError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // Plain cache miss: first run, nothing to warn about.
                telemetry::count(Counter::WeightCacheMiss);
            }
            Err(e) => {
                // Corrupted or mismatched cache file (truncated write,
                // stale format, wrong architecture). `load_weights`
                // validates before touching the network, so `net` is
                // still the fresh initialization: treat this exactly
                // like a miss — retrain and overwrite the bad file.
                telemetry::count(Counter::WeightCacheCorrupt);
                eprintln!(
                    "warning: ignoring unusable weight cache at {}: {e}; retraining",
                    path.display()
                );
            }
        }
    }

    let train = Dataset::generate(&spec, config.train_per_class, config.seed);
    fit(
        &net,
        &train.images,
        &train.labels,
        &TrainConfig {
            epochs,
            batch_size: 32,
            learning_rate: config.learning_rate,
            seed: config.seed,
        },
    );
    let test_accuracy = evaluate_accuracy(&net, &test.images, &test.labels);

    if let Some(path) = &cache_path {
        // Cache failures are non-fatal: the model is still usable.
        if let Err(e) = save_weights(&net, path) {
            eprintln!(
                "warning: failed to cache weights at {}: {e}",
                path.display()
            );
        }
    }
    let engine = InferenceEngine::new(&net);
    ZooModel {
        net,
        engine,
        scale,
        test_accuracy,
    }
}

/// Generates a labelled test set at `scale` as attack-core images,
/// `per_class` samples per class.
pub fn attack_test_set(scale: Scale, per_class: usize, seed: u64) -> Vec<(Image, usize)> {
    let spec = scale.dataset_spec();
    let data = Dataset::generate(&spec, per_class, seed);
    data.images
        .iter()
        .zip(&data.labels)
        .map(|(t, &l)| (crate::convert::tensor_to_image(t), l))
        .collect()
}

fn test_per_class(scale: Scale) -> usize {
    match scale {
        Scale::Cifar => 20,
        Scale::ImageNetLike => 10,
    }
}

fn arch_seed(arch: Arch) -> u64 {
    match arch {
        Arch::VggSmall => 0x1,
        Arch::ResNetSmall => 0x2,
        Arch::GoogLeNetSmall => 0x3,
        Arch::DenseNetSmall => 0x4,
        Arch::Mlp => 0x5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(cache: bool) -> ZooConfig {
        ZooConfig {
            train_per_class: 8,
            epochs: Some(2),
            learning_rate: 2e-3,
            seed: 1,
            cache_dir: cache.then(|| {
                std::env::temp_dir().join(format!("oppsla-zoo-test-{}", std::process::id()))
            }),
        }
    }

    #[test]
    fn trains_an_mlp_and_serves_scores() {
        let model = train_or_load(Arch::Mlp, Scale::Cifar, &fast_config(false));
        assert_eq!(model.num_classes(), 10);
        let test = attack_test_set(Scale::Cifar, 1, 2);
        let scores = model.scores(&test[0].0);
        assert_eq!(scores.len(), 10);
        let sum: f32 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "scores are a distribution: {sum}");
    }

    #[test]
    fn cache_round_trip_gives_identical_scores() {
        let config = fast_config(true);
        let a = train_or_load(Arch::Mlp, Scale::Cifar, &config);
        let b = train_or_load(Arch::Mlp, Scale::Cifar, &config); // cache hit
        let test = attack_test_set(Scale::Cifar, 1, 3);
        for (img, _) in &test {
            assert_eq!(a.scores(img), b.scores(img));
        }
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }

    #[test]
    fn engine_scores_match_the_tape() {
        let model = train_or_load(Arch::Mlp, Scale::Cifar, &fast_config(false));
        let test = attack_test_set(Scale::Cifar, 1, 4);
        for (img, _) in &test {
            assert_eq!(
                model.scores(img),
                model.network().scores(&image_to_tensor(img)),
                "engine must be bit-identical to the tape"
            );
        }
    }

    #[test]
    fn zoo_classifier_and_sessions_agree_with_the_model() {
        let model = train_or_load(Arch::Mlp, Scale::Cifar, &fast_config(false));
        let classifier = model.classifier();
        let session = classifier.session();
        let test = attack_test_set(Scale::Cifar, 1, 5);
        let mut buf = Vec::new();
        for (img, _) in &test {
            let expected = model.scores(img);
            assert_eq!(classifier.scores(img), expected);
            session.scores_into(img, &mut buf);
            assert_eq!(buf, expected);
        }
    }

    #[test]
    fn session_pixel_delta_matches_full_scores() {
        let model = train_or_load(Arch::VggSmall, Scale::Cifar, &fast_config(false));
        let classifier = model.classifier();
        let session = classifier.session();
        let test = attack_test_set(Scale::Cifar, 1, 6);
        let mut delta_buf = Vec::new();
        let mut full_buf = Vec::new();
        // Interleave two base images so the session's delta cache is
        // exercised across base switches, not just steady-state hits.
        for round in 0..2 {
            for (img, _) in test.iter().take(2) {
                for &(row, col) in &[(0u16, 0u16), (31, 31), (16, 7 + round)] {
                    let location = Location { row, col };
                    let pixel = Pixel([1.0, 0.0, 0.5]);
                    session.scores_pixel_delta_into(img, location, pixel, &mut delta_buf);
                    let poked = img.with_pixel(location, pixel);
                    session.scores_into(&poked, &mut full_buf);
                    assert_eq!(
                        delta_buf, full_buf,
                        "incremental path must be bit-identical to a full forward"
                    );
                }
            }
        }
        // The model- and classifier-level overrides delegate to the shared
        // engine cache; they must agree with the session too.
        let (img, _) = &test[0];
        let location = Location { row: 3, col: 30 };
        let pixel = Pixel([0.0, 0.25, 0.75]);
        session.scores_pixel_delta_into(img, location, pixel, &mut delta_buf);
        model.scores_pixel_delta_into(img, location, pixel, &mut full_buf);
        assert_eq!(delta_buf, full_buf);
        classifier.scores_pixel_delta_into(img, location, pixel, &mut full_buf);
        assert_eq!(delta_buf, full_buf);
    }

    #[test]
    fn session_batch_paths_match_sequential() {
        let model = train_or_load(Arch::VggSmall, Scale::Cifar, &fast_config(false));
        let classifier = model.classifier();
        let session = classifier.session();
        let test = attack_test_set(Scale::Cifar, 1, 8);
        let images: Vec<Image> = test.iter().take(4).map(|(img, _)| img.clone()).collect();

        // Batched full forward: per image bit-identical to scores_into.
        let mut got = Vec::new();
        session.scores_batch_into(&images, &mut got);
        let classes = session.num_classes();
        let mut want = Vec::new();
        for (b, img) in images.iter().enumerate() {
            session.scores_into(img, &mut want);
            assert_eq!(&got[b * classes..(b + 1) * classes], &want[..], "image {b}");
        }

        // Batched pixel-delta: bit-identical to the sequential incremental
        // path, including across a delta-cache rebase (base switch).
        for base in [&images[0], &images[1]] {
            let candidates: Vec<(Location, Pixel)> = (0..6u16)
                .map(|i| {
                    (
                        Location::new(i * 5, 31 - i),
                        Pixel([1.0, 0.1 * i as f32, 0.0]),
                    )
                })
                .collect();
            session.scores_pixel_delta_batch_into(base, &candidates, &mut got);
            for (i, &(location, pixel)) in candidates.iter().enumerate() {
                session.scores_pixel_delta_into(base, location, pixel, &mut want);
                assert_eq!(
                    &got[i * classes..(i + 1) * classes],
                    &want[..],
                    "candidate {i} diverged"
                );
            }
        }
    }

    #[test]
    fn lru_session_avoids_rebase_thrash_and_stays_bit_identical() {
        let model = train_or_load(Arch::VggSmall, Scale::Cifar, &fast_config(false));
        let classifier = model.classifier();
        let test = attack_test_set(Scale::Cifar, 1, 9);
        let images: Vec<Image> = test.iter().take(3).map(|(img, _)| img.clone()).collect();
        let location = Location { row: 11, col: 22 };
        let pixel = Pixel([0.9, 0.2, 0.4]);

        // Reference: per-image expected scores from the single-slot path.
        let single = classifier.session();
        let mut want = Vec::new();
        let mut expected = Vec::new();
        for img in &images {
            single.scores_pixel_delta_into(img, location, pixel, &mut want);
            expected.push(want.clone());
        }

        // A capacity-3 session interleaving three bases: every query after
        // the three cold captures must be a cache hit (no rebases), and
        // every score bit-identical.
        let lru = classifier.session_with_cache_capacity(3);
        let before = telemetry::snapshot();
        for round in 0..3 {
            for (i, img) in images.iter().enumerate() {
                lru.scores_pixel_delta_into(img, location, pixel, &mut want);
                assert_eq!(want, expected[i], "round {round} image {i}");
            }
        }
        let after = telemetry::snapshot();
        let delta =
            |c: Counter| after.counters[c as usize].saturating_sub(before.counters[c as usize]);
        if telemetry::enabled() {
            assert_eq!(
                delta(Counter::DeltaCacheCold),
                3,
                "one cold capture per base"
            );
            assert_eq!(delta(Counter::DeltaCacheRebase), 0, "no rebase thrash");
            assert_eq!(delta(Counter::DeltaCacheHit), 6, "the other rounds all hit");
        }
    }

    #[test]
    fn grouped_scores_match_isolated_sessions() {
        let model = train_or_load(Arch::VggSmall, Scale::Cifar, &fast_config(false));
        let classifier = std::sync::Arc::new(model.classifier());
        let test = attack_test_set(Scale::Cifar, 1, 10);
        let images: Vec<Image> = test.iter().take(3).map(|(img, _)| img.clone()).collect();
        let candidates: Vec<Vec<(Location, Pixel)>> = (0..3u16)
            .map(|g| {
                (0..4u16)
                    .map(|i| {
                        (
                            Location::new(2 + 7 * i, 30 - g * 5),
                            Pixel([0.1 * i as f32, 0.9, 0.5]),
                        )
                    })
                    .collect()
            })
            .collect();

        let mut session = classifier.owned_session(4);
        let groups: Vec<DeltaGroup<'_>> = images
            .iter()
            .zip(&candidates)
            .map(|(base, cands)| DeltaGroup {
                base,
                candidates: cands,
            })
            .collect();
        let mut got = Vec::new();
        // Two rounds: the second exercises pooled-workspace reuse with
        // matching tags (the scheduler's steady state).
        for round in 0..2 {
            session.scores_pixel_delta_grouped_into(&groups, &mut got);
            let classes = session.num_classes();
            let mut flat = 0;
            let mut want = Vec::new();
            for (base, cands) in images.iter().zip(&candidates) {
                // Isolated reference: a fresh single-tenant session per group.
                let isolated = classifier.session();
                for &(location, pixel) in cands {
                    isolated.scores_pixel_delta_into(base, location, pixel, &mut want);
                    assert_eq!(
                        &got[flat * classes..(flat + 1) * classes],
                        &want[..],
                        "round {round} flat candidate {flat} diverged"
                    );
                    flat += 1;
                }
            }
        }
    }

    #[test]
    fn corrupted_weight_cache_falls_back_to_retraining() {
        // Regression: a truncated cache file (killed mid-write, disk
        // full) must behave as a cache miss — warn, retrain, and rewrite
        // the file — not poison every later run.
        let config = ZooConfig {
            cache_dir: fast_config(true).cache_dir.map(|d| d.join("corrupt")),
            ..fast_config(true)
        };
        let reference = train_or_load(Arch::Mlp, Scale::Cifar, &config);
        let dir = config.cache_dir.as_ref().unwrap();
        let path = std::fs::read_dir(dir)
            .expect("cache dir exists after first train")
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("first run wrote a cache file");

        // Truncate mid-byte: cut the JSON in half.
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.len() > 2);
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let recovered = train_or_load(Arch::Mlp, Scale::Cifar, &config);
        let test = attack_test_set(Scale::Cifar, 1, 7);
        for (img, _) in &test {
            assert_eq!(
                recovered.scores(img),
                reference.scores(img),
                "retraining is deterministic, so recovery reproduces the weights"
            );
        }

        // And the bad file was rewritten: a third load is a clean cache
        // hit byte-identical to the original.
        let rewritten = std::fs::read(&path).unwrap();
        assert_eq!(rewritten, bytes, "cache file restored by the retrain");
    }

    #[test]
    fn attack_test_set_is_labeled_and_sized() {
        let set = attack_test_set(Scale::Cifar, 2, 0);
        assert_eq!(set.len(), 20);
        assert!(set.iter().all(|(img, _)| img.height() == 32));
        assert!(set.iter().all(|(_, l)| *l < 10));
    }

    #[test]
    fn scales_expose_consistent_specs() {
        assert_eq!(Scale::Cifar.dataset_spec().size, 32);
        assert_eq!(Scale::Cifar.input_spec().height, 32);
        assert_eq!(Scale::ImageNetLike.dataset_spec().size, 64);
        assert_eq!(Scale::ImageNetLike.dataset_spec().num_classes(), 20);
    }
}
