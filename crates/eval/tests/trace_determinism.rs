//! Thread-count invariance of the observability streams through the real
//! parallel code paths: synthesis and attack evaluation must leave the
//! telemetry counters *and* the canonical-sorted trace byte-identical for
//! any worker count.

#![cfg(feature = "trace")]

use oppsla_attacks::SketchProgramAttack;
use oppsla_core::dsl::{GrammarConfig, Program};
use oppsla_core::image::Image;
use oppsla_core::oracle::FnClassifier;
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::synth::{synthesize_parallel, SynthConfig};
use oppsla_core::telemetry::{self, trace};
use oppsla_eval::curves::evaluate_attack_parallel;

fn trigger_clf(target: Location) -> FnClassifier<impl Fn(&Image) -> Vec<f32> + Sync> {
    FnClassifier::new(2, move |img: &Image| {
        if img.pixel(target) == Pixel([1.0, 1.0, 1.0]) {
            vec![0.1, 0.9]
        } else {
            vec![0.9, 0.1]
        }
    })
}

fn grey_set(n: usize) -> Vec<(Image, usize)> {
    (0..n)
        .map(|i| {
            let v = 0.3 + 0.02 * i as f32;
            (Image::filled(6, 6, Pixel([v, v, v])), 0)
        })
        .collect()
}

/// Runs a synthesis plus an attack evaluation on `threads` workers inside
/// a fresh in-memory trace, returning the canonical-sorted record stream
/// and the telemetry delta of the workload.
fn workload(threads: usize) -> (Vec<trace::Record>, telemetry::Snapshot) {
    let clf = trigger_clf(Location::new(2, 3));
    let train = grey_set(4);
    let test = grey_set(6);
    let config = SynthConfig {
        max_iterations: 4,
        beta: 0.01,
        seed: 7,
        per_image_budget: Some(200),
        prefilter: true,
        grammar: GrammarConfig::paper(),
        threads,
    };

    trace::start(trace::TraceConfig {
        path: None,
        mem_cap: 0,
    })
    .expect("in-memory trace");
    let before = telemetry::snapshot();
    trace::begin_section(trace::SectionMeta {
        label: "determinism/synthesis".to_owned(),
        ..trace::SectionMeta::default()
    });
    synthesize_parallel(&clf, &train, &config);
    trace::begin_section(trace::SectionMeta {
        label: "determinism/attack".to_owned(),
        ..trace::SectionMeta::default()
    });
    let attack = SketchProgramAttack::new(Program::paper_example());
    evaluate_attack_parallel(&attack, &clf, &test, 10_000, 3, threads);
    let delta = telemetry::snapshot().since(&before);
    let mut records = trace::drain_records();
    trace::finish();
    trace::canonical_sort(&mut records);
    (records, delta)
}

// One test (not several) because the trace recorder and telemetry
// counters are process-global.
#[test]
fn parallel_observability_is_thread_count_invariant() {
    let (reference_trace, reference_delta) = workload(1);
    assert!(
        reference_trace.iter().any(|r| r.kind() == "query"),
        "the workload must actually record queries"
    );
    assert!(
        reference_trace.iter().any(|r| r.kind() == "synth"),
        "the workload must actually record synthesis steps"
    );
    for threads in [2, 4] {
        let (trace, delta) = workload(threads);
        assert_eq!(
            trace, reference_trace,
            "canonical trace diverged at {threads} threads"
        );
        assert_eq!(
            delta.counters, reference_delta.counters,
            "telemetry counters diverged at {threads} threads"
        );
        assert_eq!(
            delta.query_hist, reference_delta.query_hist,
            "query histogram diverged at {threads} threads"
        );
        assert_eq!(
            delta.op_calls, reference_delta.op_calls,
            "op call counts diverged at {threads} threads"
        );
    }
}
