//! Define-by-run tape autograd over [`oppsla_tensor::Tensor`].
//!
//! Each training step builds a fresh [`Tape`]; operations eagerly compute
//! values and record the state needed for the reverse sweep. Parameters live
//! outside the tape in shared [`Param`] cells so gradients accumulate across
//! batch items and the optimizer can update them in place.
//!
//! For inference (the classifier queries issued by the attacks), a tape can
//! be opened with [`Tape::no_grad`], which skips recording backward state.

use oppsla_tensor::ops::{self, Conv2dGeometry};
use oppsla_tensor::{Shape, Tensor};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A trainable parameter: a value tensor plus an accumulated gradient,
/// shared between the layer that owns it and the tapes that use it.
///
/// Cloning a `Param` clones the handle, not the storage.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamData>>,
}

struct ParamData {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a named parameter with zero gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            inner: Rc::new(RefCell::new(ParamData {
                name: name.into(),
                value,
                grad,
            })),
        }
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// A snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// A snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.borrow().grad.clone()
    }

    /// Replaces the value tensor.
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Tensor) {
        let mut d = self.inner.borrow_mut();
        assert_eq!(
            d.value.shape(),
            value.shape(),
            "parameter {} value shape changed",
            d.name
        );
        d.value = value;
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut d = self.inner.borrow_mut();
        let shape = d.value.shape().clone();
        d.grad = Tensor::zeros(shape);
    }

    /// Applies `value += grad * scale` (used by optimizers) without exposing
    /// the cell borrow to callers.
    pub fn apply_update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let mut d = self.inner.borrow_mut();
        let ParamData { value, grad, .. } = &mut *d;
        f(value, grad);
    }

    /// The number of scalar weights in this parameter.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    fn accumulate_grad(&self, g: &Tensor) {
        self.inner.borrow_mut().grad.add_scaled_inplace(g, 1.0);
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.borrow();
        write!(f, "Param({:?}, {})", d.name, d.value.shape())
    }
}

/// A handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    id: usize,
}

enum Step {
    /// Input or (in no-grad mode) any node: no backward propagation.
    Leaf,
    /// A parameter leaf: gradient is routed into the shared cell.
    ParamLeaf {
        param: Param,
    },
    Relu {
        x: usize,
    },
    Conv2d {
        x: usize,
        w: usize,
        b: usize,
        geom: Conv2dGeometry,
        /// im2col matrices, one per batch item, saved from the forward pass.
        cols: Vec<Tensor>,
    },
    Linear {
        x: usize,
        w: usize,
        b: usize,
    },
    MaxPool {
        x: usize,
        argmax: Vec<usize>,
    },
    GlobalAvgPool {
        x: usize,
    },
    Add {
        x: usize,
        y: usize,
    },
    ConcatChannels {
        inputs: Vec<usize>,
        channels: Vec<usize>,
    },
    Reshape {
        x: usize,
    },
    SoftmaxCrossEntropy {
        logits: usize,
        probs: Tensor,
        labels: Vec<usize>,
    },
}

struct Node {
    value: Tensor,
    step: Step,
}

/// A define-by-run computation tape.
///
/// # Examples
///
/// ```
/// use oppsla_nn::autograd::{Param, Tape};
/// use oppsla_tensor::Tensor;
///
/// let w = Param::new("w", Tensor::from_vec([1, 2], vec![1.0, -1.0]));
/// let b = Param::new("b", Tensor::zeros([1]));
/// let mut tape = Tape::new();
/// let x = tape.input(Tensor::from_vec([1, 2], vec![3.0, 2.0]));
/// let wv = tape.param(&w);
/// let bv = tape.param(&b);
/// let y = tape.linear(x, wv, bv);
/// assert_eq!(tape.value(y).data(), &[1.0]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    grad_enabled: bool,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates a tape that records backward state.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            grad_enabled: true,
        }
    }

    /// Creates an inference-only tape: forward values are computed but no
    /// backward state is saved, and [`Tape::backward`] will panic.
    pub fn no_grad() -> Self {
        Tape {
            nodes: Vec::new(),
            grad_enabled: false,
        }
    }

    /// The value computed at `var`.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.id].value
    }

    /// The number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, step: Step) -> Var {
        let step = if self.grad_enabled { step } else { Step::Leaf };
        self.nodes.push(Node { value, step });
        Var {
            id: self.nodes.len() - 1,
        }
    }

    /// Records a constant input (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Step::Leaf)
    }

    /// Records a parameter leaf; its gradient accumulates into `param`.
    pub fn param(&mut self, param: &Param) -> Var {
        let value = param.value();
        self.push(
            value,
            Step::ParamLeaf {
                param: param.clone(),
            },
        )
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        self.push(value, Step::Relu { x: x.id })
    }

    /// Elementwise sum of two same-shaped vars (residual connections).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, x: Var, y: Var) -> Var {
        let value = self.value(x).add(self.value(y));
        self.push(value, Step::Add { x: x.id, y: y.id })
    }

    /// Batched 2-D convolution.
    ///
    /// `x` is `[n, c, h, w]`, `w` is the flattened kernel bank
    /// `[out_c, c·kh·kw]`, `b` is `[out_c]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with `geom`.
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, geom: Conv2dGeometry) -> Var {
        let xt = self.value(x).clone();
        let wt = self.value(w).clone();
        let bt = self.value(b).clone();
        assert_eq!(xt.shape().rank(), 4, "conv2d input must be [n,c,h,w]");
        let n = xt.shape().dim(0);
        let out_c = wt.shape().dim(0);
        assert_eq!(
            wt.shape().dim(1),
            geom.in_channels * geom.kernel_h * geom.kernel_w,
            "conv2d weight columns disagree with geometry"
        );
        assert_eq!(bt.shape().dims(), &[out_c], "conv2d bias must be [out_c]");
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let chw = geom.in_channels * geom.in_h * geom.in_w;
        let mut out = Vec::with_capacity(n * out_c * oh * ow);
        let mut cols_saved = Vec::with_capacity(if self.grad_enabled { n } else { 0 });
        for img in 0..n {
            let slice = Tensor::from_vec(
                [geom.in_channels, geom.in_h, geom.in_w],
                xt.data()[img * chw..(img + 1) * chw].to_vec(),
            );
            let cols = ops::im2col(&slice, &geom);
            let mut prod = ops::matmul(&wt, &cols);
            // Broadcast-add the per-channel bias across spatial positions.
            {
                let area = oh * ow;
                let pd = prod.data_mut();
                for oc in 0..out_c {
                    let bias = bt.data()[oc];
                    for v in &mut pd[oc * area..(oc + 1) * area] {
                        *v += bias;
                    }
                }
            }
            out.extend_from_slice(prod.data());
            if self.grad_enabled {
                cols_saved.push(cols);
            }
        }
        let value = Tensor::from_vec([n, out_c, oh, ow], out);
        self.push(
            value,
            Step::Conv2d {
                x: x.id,
                w: w.id,
                b: b.id,
                geom,
                cols: cols_saved,
            },
        )
    }

    /// Fully connected layer: `x · wᵀ + b` for `x: [n, in]`, `w: [out, in]`,
    /// `b: [out]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let xt = self.value(x);
        let wt = self.value(w);
        let bt = self.value(b);
        let n = xt.shape().dim(0);
        let out = wt.shape().dim(0);
        assert_eq!(
            xt.shape().dim(1),
            wt.shape().dim(1),
            "linear input width disagrees with weight"
        );
        assert_eq!(bt.shape().dims(), &[out], "linear bias must be [out]");
        let mut value = ops::matmul_nt(xt, wt);
        {
            let vd = value.data_mut();
            for row in 0..n {
                for (o, &bv) in vd[row * out..(row + 1) * out].iter_mut().zip(bt.data()) {
                    *o += bv;
                }
            }
        }
        self.push(
            value,
            Step::Linear {
                x: x.id,
                w: w.id,
                b: b.id,
            },
        )
    }

    /// Square max pooling with stride equal to the window.
    ///
    /// # Panics
    ///
    /// Panics if the window does not divide the spatial extents.
    pub fn max_pool2d(&mut self, x: Var, window: usize) -> Var {
        let pooled = ops::max_pool2d(self.value(x), window);
        self.push(
            pooled.output,
            Step::MaxPool {
                x: x.id,
                argmax: pooled.argmax,
            },
        )
    }

    /// Global average pooling `[n, c, h, w] → [n, c]`.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let value = ops::global_avg_pool(self.value(x));
        self.push(value, Step::GlobalAvgPool { x: x.id })
    }

    /// Concatenates vars along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics if inputs are not rank 4 with matching batch and spatial dims,
    /// or if `inputs` is empty.
    pub fn concat_channels(&mut self, inputs: &[Var]) -> Var {
        assert!(
            !inputs.is_empty(),
            "concat_channels needs at least one input"
        );
        let first = self.value(inputs[0]).shape().clone();
        assert_eq!(first.rank(), 4, "concat_channels expects [n,c,h,w] inputs");
        let (n, h, w) = (first.dim(0), first.dim(2), first.dim(3));
        let mut channels = Vec::with_capacity(inputs.len());
        for &v in inputs {
            let s = self.value(v).shape();
            assert_eq!(
                (s.dim(0), s.dim(2), s.dim(3)),
                (n, h, w),
                "concat_channels inputs disagree on batch/spatial dims"
            );
            channels.push(s.dim(1));
        }
        let total_c: usize = channels.iter().sum();
        let mut out = vec![0.0f32; n * total_c * h * w];
        let area = h * w;
        for img in 0..n {
            let mut c_off = 0;
            for (&v, &c) in inputs.iter().zip(channels.iter()) {
                let src = self.value(v).data();
                let src_base = img * c * area;
                let dst_base = (img * total_c + c_off) * area;
                out[dst_base..dst_base + c * area]
                    .copy_from_slice(&src[src_base..src_base + c * area]);
                c_off += c;
            }
        }
        let value = Tensor::from_vec([n, total_c, h, w], out);
        self.push(
            value,
            Step::ConcatChannels {
                inputs: inputs.iter().map(|v| v.id).collect(),
                channels,
            },
        )
    }

    /// Reshapes a var (e.g. flatten `[n,c,h,w] → [n, c·h·w]`).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Shape>) -> Var {
        let value = self.value(x).reshape(shape.into());
        self.push(value, Step::Reshape { x: x.id })
    }

    /// Flattens all non-batch dimensions: `[n, …] → [n, rest]`.
    pub fn flatten(&mut self, x: Var) -> Var {
        let s = self.value(x).shape();
        let n = s.dim(0);
        let rest = s.numel() / n;
        self.reshape(x, [n, rest])
    }

    /// Fused softmax + mean cross-entropy loss over a batch of logits.
    ///
    /// Returns a scalar var. Probabilities are computed with the max-shift
    /// trick for stability.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[n, classes]`, a label is out of range, or
    /// `labels.len() != n`.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lt = self.value(logits);
        assert_eq!(lt.shape().rank(), 2, "loss expects [n, classes] logits");
        let n = lt.shape().dim(0);
        let classes = lt.shape().dim(1);
        assert_eq!(labels.len(), n, "one label per batch row required");
        let probs = softmax_rows(lt);
        let mut loss = 0.0f32;
        for (row, &label) in labels.iter().enumerate() {
            assert!(
                label < classes,
                "label {label} out of range ({classes} classes)"
            );
            let p = probs.data()[row * classes + label].max(1e-12);
            loss -= p.ln();
        }
        loss /= n as f32;
        self.push(
            Tensor::scalar(loss),
            Step::SoftmaxCrossEntropy {
                logits: logits.id,
                probs,
                labels: labels.to_vec(),
            },
        )
    }

    /// Runs the reverse sweep from scalar `loss`, accumulating parameter
    /// gradients into their shared [`Param`] cells.
    ///
    /// # Panics
    ///
    /// Panics if the tape was opened with [`Tape::no_grad`] or `loss` is not
    /// a scalar.
    pub fn backward(&mut self, loss: Var) {
        assert!(self.grad_enabled, "backward() on a no-grad tape");
        assert_eq!(
            self.nodes[loss.id].value.numel(),
            1,
            "backward() must start from a scalar"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.id] = Some(Tensor::scalar(1.0));
        for id in (0..=loss.id).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            match &self.nodes[id].step {
                Step::Leaf => {}
                Step::ParamLeaf { param } => param.accumulate_grad(&grad),
                Step::Relu { x } => {
                    let gi = self.nodes[*x]
                        .value
                        .zip(&grad, |xv, g| if xv > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, *x, gi);
                }
                Step::Add { x, y } => {
                    let (x, y) = (*x, *y);
                    accumulate(&mut grads, x, grad.clone());
                    accumulate(&mut grads, y, grad);
                }
                Step::Conv2d {
                    x,
                    w,
                    b,
                    geom,
                    cols,
                } => {
                    let (x, w, b, geom) = (*x, *w, *b, *geom);
                    let cols = cols.clone();
                    let (gx, gw, gb) = self.conv2d_backward(&grad, x, w, &geom, &cols);
                    accumulate(&mut grads, x, gx);
                    accumulate(&mut grads, w, gw);
                    accumulate(&mut grads, b, gb);
                }
                Step::Linear { x, w, b } => {
                    let (x, w, b) = (*x, *w, *b);
                    // grad: [n, out]; x: [n, in]; w: [out, in]
                    let gx = ops::matmul(&grad, &self.nodes[w].value);
                    let gw = ops::matmul_tn(&grad, &self.nodes[x].value);
                    let out = grad.shape().dim(1);
                    let n = grad.shape().dim(0);
                    let mut gb = vec![0.0f32; out];
                    for row in 0..n {
                        for (s, &g) in gb.iter_mut().zip(&grad.data()[row * out..(row + 1) * out]) {
                            *s += g;
                        }
                    }
                    accumulate(&mut grads, x, gx);
                    accumulate(&mut grads, w, gw);
                    accumulate(&mut grads, b, Tensor::from_vec([out], gb));
                }
                Step::MaxPool { x, argmax } => {
                    let x = *x;
                    let gi = ops::max_pool2d_backward(&grad, argmax, self.nodes[x].value.shape());
                    accumulate(&mut grads, x, gi);
                }
                Step::GlobalAvgPool { x } => {
                    let x = *x;
                    let gi = ops::global_avg_pool_backward(&grad, self.nodes[x].value.shape());
                    accumulate(&mut grads, x, gi);
                }
                Step::ConcatChannels { inputs, channels } => {
                    let inputs = inputs.clone();
                    let channels = channels.clone();
                    let s = grad.shape();
                    let (n, total_c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
                    let area = h * w;
                    let mut c_off = 0;
                    for (inp, c) in inputs.iter().zip(channels.iter()) {
                        let mut gi = vec![0.0f32; n * c * area];
                        for img in 0..n {
                            let src_base = (img * total_c + c_off) * area;
                            let dst_base = img * c * area;
                            gi[dst_base..dst_base + c * area]
                                .copy_from_slice(&grad.data()[src_base..src_base + c * area]);
                        }
                        accumulate(&mut grads, *inp, Tensor::from_vec([n, *c, h, w], gi));
                        c_off += c;
                    }
                }
                Step::Reshape { x } => {
                    let x = *x;
                    let gi = grad.reshape(self.nodes[x].value.shape().clone());
                    accumulate(&mut grads, x, gi);
                }
                Step::SoftmaxCrossEntropy {
                    logits,
                    probs,
                    labels,
                } => {
                    let logits = *logits;
                    let n = labels.len();
                    let classes = probs.shape().dim(1);
                    let scale = grad.item() / n as f32;
                    let mut gi = probs.clone();
                    {
                        let gd = gi.data_mut();
                        for (row, &label) in labels.iter().enumerate() {
                            gd[row * classes + label] -= 1.0;
                        }
                        for v in gd.iter_mut() {
                            *v *= scale;
                        }
                    }
                    accumulate(&mut grads, logits, gi);
                }
            }
        }
    }

    fn conv2d_backward(
        &self,
        grad: &Tensor,
        x: usize,
        w: usize,
        geom: &Conv2dGeometry,
        cols: &[Tensor],
    ) -> (Tensor, Tensor, Tensor) {
        let xt = &self.nodes[x].value;
        let wt = &self.nodes[w].value;
        let n = xt.shape().dim(0);
        let out_c = wt.shape().dim(0);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let area = oh * ow;
        let chw = geom.in_channels * geom.in_h * geom.in_w;
        let mut gx = vec![0.0f32; xt.numel()];
        let mut gw = Tensor::zeros(wt.shape().clone());
        let mut gb = vec![0.0f32; out_c];
        for img in 0..n {
            let gout = Tensor::from_vec(
                [out_c, area],
                grad.data()[img * out_c * area..(img + 1) * out_c * area].to_vec(),
            );
            // dW += gout · colsᵀ
            gw.add_scaled_inplace(&ops::matmul_nt(&gout, &cols[img]), 1.0);
            // db += row sums of gout
            for (oc, slot) in gb.iter_mut().enumerate() {
                *slot += gout.data()[oc * area..(oc + 1) * area].iter().sum::<f32>();
            }
            // dx = col2im(wᵀ · gout)
            let gcols = ops::matmul_tn(wt, &gout);
            let gimg = ops::col2im(&gcols, geom);
            gx[img * chw..(img + 1) * chw].copy_from_slice(gimg.data());
        }
        (
            Tensor::from_vec(xt.shape().clone(), gx),
            gw,
            Tensor::from_vec([out_c], gb),
        )
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, g: Tensor) {
    match &mut grads[id] {
        Some(existing) => existing.add_scaled_inplace(&g, 1.0),
        slot @ None => *slot = Some(g),
    }
}

/// Row-wise softmax of a `[n, classes]` tensor with max-shift stabilization.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(
        logits.shape().rank(),
        2,
        "softmax_rows expects [n, classes]"
    );
    let n = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    let mut out = vec![0.0f32; n * classes];
    for row in 0..n {
        let src = &logits.data()[row * classes..(row + 1) * classes];
        let m = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in out[row * classes..(row + 1) * classes].iter_mut().zip(src) {
            *o = (v - m).exp();
            sum += *o;
        }
        for o in &mut out[row * classes..(row + 1) * classes] {
            *o /= sum;
        }
    }
    Tensor::from_vec([n, classes], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        params: &[Param],
        mut f: impl FnMut() -> f32,
        mut run_backward: impl FnMut(),
        tol: f32,
    ) {
        for p in params {
            p.zero_grad();
        }
        run_backward();
        for p in params {
            let analytic = p.grad();
            let base = p.value();
            for i in 0..base.numel() {
                let eps = 1e-2;
                let mut plus = base.clone();
                plus.data_mut()[i] += eps;
                p.set_value(plus);
                let fp = f();
                let mut minus = base.clone();
                minus.data_mut()[i] -= eps;
                p.set_value(minus);
                let fm = f();
                p.set_value(base.clone());
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.data()[i];
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "param {} index {i}: analytic {a} vs numeric {numeric}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let w = Param::new(
            "w",
            Tensor::from_vec([2, 3], vec![0.1, -0.2, 0.3, 0.5, 0.4, -0.1]),
        );
        let b = Param::new("b", Tensor::from_vec([2], vec![0.05, -0.07]));
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, -1.0, 0.5, -0.5, 2.0]);
        let labels = [0usize, 1];
        let eval = |w: &Param, b: &Param| {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let (wv, bv) = (tape.param(w), tape.param(b));
            let y = tape.linear(xv, wv, bv);
            let loss = tape.softmax_cross_entropy(y, &labels);
            (tape, loss)
        };
        let (wc, bc) = (w.clone(), b.clone());
        finite_diff_check(
            &[w.clone(), b.clone()],
            move || {
                let (tape, loss) = eval(&wc, &bc);
                tape.value(loss).item()
            },
            || {
                let (mut tape, loss) = eval(&w, &b);
                tape.backward(loss);
            },
            2e-2,
        );
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let geom = Conv2dGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let w = Param::new(
            "w",
            Tensor::from_fn([2, 2 * 9], |i| ((i as f32) * 0.7).sin() * 0.3),
        );
        let b = Param::new("b", Tensor::from_vec([2], vec![0.1, -0.1]));
        let x = Tensor::from_fn([1, 2, 4, 4], |i| ((i as f32) * 0.3).cos());
        let labels = [1usize];
        let eval = |w: &Param, b: &Param| {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let (wv, bv) = (tape.param(w), tape.param(b));
            let y = tape.conv2d(xv, wv, bv, geom);
            let y = tape.relu(y);
            let y = tape.global_avg_pool(y);
            let loss = tape.softmax_cross_entropy(y, &labels);
            (tape, loss)
        };
        let (wc, bc) = (w.clone(), b.clone());
        finite_diff_check(
            &[w.clone(), b.clone()],
            move || {
                let (tape, loss) = eval(&wc, &bc);
                tape.value(loss).item()
            },
            || {
                let (mut tape, loss) = eval(&w, &b);
                tape.backward(loss);
            },
            3e-2,
        );
    }

    #[test]
    fn residual_add_and_concat_gradients_flow() {
        let w = Param::new("w", Tensor::from_vec([2, 2], vec![0.3, -0.1, 0.2, 0.4]));
        let b = Param::new("b", Tensor::zeros([2]));
        let x = Tensor::from_vec([1, 2], vec![1.0, -2.0]);
        let labels = [0usize];
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let (wv, bv) = (tape.param(&w), tape.param(&b));
        let y = tape.linear(xv, wv, bv);
        let z = tape.add(y, xv); // residual
        let loss = tape.softmax_cross_entropy(z, &labels);
        tape.backward(loss);
        assert!(w.grad().data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn concat_channels_forward_and_backward_round_trip() {
        let a = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        let bt = Tensor::from_fn([1, 2, 2, 2], |i| 10.0 + i as f32);
        let mut tape = Tape::new();
        let av = tape.input(a.clone());
        let bv = tape.input(bt.clone());
        let c = tape.concat_channels(&[av, bv]);
        let v = tape.value(c);
        assert_eq!(v.shape().dims(), &[1, 3, 2, 2]);
        assert_eq!(&v.data()[0..4], a.data());
        assert_eq!(&v.data()[4..12], bt.data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&t);
        for row in 0..2 {
            let s: f32 = p.data()[row * 3..(row + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn max_pool_backward_through_tape() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 4.0, 3.0]);
        let w = Param::new("w", Tensor::from_vec([2, 1], vec![1.0, -1.0]));
        let b = Param::new("b", Tensor::zeros([2]));
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let p = tape.max_pool2d(xv, 2);
        let f = tape.flatten(p);
        let (wv, bv) = (tape.param(&w), tape.param(&b));
        let y = tape.linear(f, wv, bv);
        let loss = tape.softmax_cross_entropy(y, &[0]);
        tape.backward(loss);
        // Max value is 4.0 → gradient flows; w grad is ±4·(p-1)/… but nonzero.
        assert!(w.grad().data().iter().any(|&g| g.abs() > 1e-6));
    }

    #[test]
    #[should_panic(expected = "no-grad tape")]
    fn backward_panics_without_grad() {
        let mut tape = Tape::no_grad();
        let x = tape.input(Tensor::scalar(1.0));
        tape.backward(x);
    }

    #[test]
    fn no_grad_tape_computes_same_forward_values() {
        let w = Param::new("w", Tensor::from_vec([2, 2], vec![0.3, -0.1, 0.2, 0.4]));
        let b = Param::new("b", Tensor::from_vec([2], vec![0.5, -0.5]));
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
        let run = |mut tape: Tape| {
            let xv = tape.input(x.clone());
            let (wv, bv) = (tape.param(&w), tape.param(&b));
            let y = tape.linear(xv, wv, bv);
            let y = tape.relu(y);
            tape.value(y).clone()
        };
        assert_eq!(run(Tape::new()).data(), run(Tape::no_grad()).data());
    }
}
