//! Batched full-image inference: K images through one forward sweep.
//!
//! The sequential hot path ([`InferencePlan::scores_into`]) streams every
//! layer's weights from memory once *per image*. When K images are
//! available at once — distinct test images, or K one-pixel variants that
//! fell off the incremental fast path — running them **layer-major**
//! amortizes that weight traffic: each op executes over the whole batch
//! before the next op starts, with the conv GEMMs reusing the plan's
//! pre-packed weight panels ([`oppsla_tensor::gemm::PackedA`]) and the
//! elementwise / pooling / linear kernels operating on the contiguous
//! `[K, …]` batch buffers in a single call.
//!
//! # Determinism contract
//!
//! Per image, the arithmetic is **bit-identical** to the sequential plan:
//! the batch buffers are plain NCHW concatenations, every batched kernel
//! call decomposes into the same per-image (per-row, per-channel) scalar
//! op sequences the sequential path runs — the batched GEMM-path conv
//! runs per-image im2col + packed GEMM (itself bit-identical to the naive
//! multiply), [`ops::matmul_nt_into`] with `m = K` computes row `i`
//! exactly as `m = 1` does, and pooling over `K·c` channels equals K
//! independent `c`-channel calls. Verified exactly in
//! `tests/batched_matches_sequential.rs`.

use crate::infer::{InferOp, InferencePlan};
use oppsla_tensor::gemm;
use oppsla_tensor::ops::{self, Rect};
use oppsla_tensor::Tensor;

/// A thin batched view over a compiled [`InferencePlan`]: the plan
/// already owns the packed conv weights, so batching adds no per-model
/// state — only the batch-sized workspace. Obtain via
/// [`InferencePlan::batched`].
#[derive(Debug, Clone, Copy)]
pub struct BatchedInferencePlan<'a> {
    plan: &'a InferencePlan,
}

/// Pre-allocated `[max_batch, …]` activation buffers for one
/// [`BatchedInferencePlan`]. Steady-state forwards are allocation-free;
/// smaller batches run on a prefix of each buffer.
#[derive(Debug)]
pub struct BatchedWorkspace {
    max_batch: usize,
    bufs: Vec<Vec<f32>>,
    /// Per-image im2col scratch for the largest GEMM-path conv.
    cols: Vec<f32>,
    /// B-panel packing scratch for the blocked GEMM.
    pack_buf: Vec<f32>,
}

impl BatchedWorkspace {
    /// The largest batch this workspace can hold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

impl InferencePlan {
    /// The batched view of this plan (shares its packed weights).
    pub fn batched(&self) -> BatchedInferencePlan<'_> {
        BatchedInferencePlan { plan: self }
    }
}

impl BatchedInferencePlan<'_> {
    /// Allocates buffers for forwards of up to `max_batch` images.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn workspace(&self, max_batch: usize) -> BatchedWorkspace {
        assert!(max_batch > 0, "batched workspace needs a non-zero batch");
        let scratch = self
            .plan
            .ops
            .iter()
            .map(|op| match op {
                InferOp::Conv2d {
                    cols_len,
                    direct: false,
                    ..
                } => *cols_len,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        BatchedWorkspace {
            max_batch,
            bufs: self
                .plan
                .buf_lens
                .iter()
                .map(|&l| vec![0.0; max_batch * l])
                .collect(),
            cols: vec![0.0; scratch],
            pack_buf: vec![0.0; if scratch > 0 { gemm::KC * gemm::NC } else { 0 }],
        }
    }

    /// Runs `images.len()` forwards in one layer-major sweep and appends
    /// each image's `num_classes` softmax scores to `out` (cleared
    /// first), in image order. Bit-identical per image to
    /// [`InferencePlan::scores_into`].
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or exceeds the workspace's
    /// `max_batch`, or any image disagrees with the plan's input spec.
    pub fn scores_batch_into(
        &self,
        ws: &mut BatchedWorkspace,
        images: &[Tensor],
        out: &mut Vec<f32>,
    ) {
        let plan = self.plan;
        let k = images.len();
        assert!(k > 0, "scores_batch_into needs at least one image");
        assert!(
            k <= ws.max_batch,
            "batch of {k} exceeds workspace capacity {}",
            ws.max_batch
        );
        assert_eq!(
            ws.bufs.len(),
            plan.buf_lens.len(),
            "workspace does not belong to this plan"
        );
        let spec = plan.input_spec();
        let chw = spec.channels * spec.height * spec.width;
        for (b, image) in images.iter().enumerate() {
            assert_eq!(
                image.shape().dims(),
                &[spec.channels, spec.height, spec.width],
                "image geometry disagrees with the plan's input spec"
            );
            ws.bufs[0][b * chw..(b + 1) * chw].copy_from_slice(image.data());
        }
        oppsla_obs::count_n(oppsla_obs::Counter::BatchedForwardImages, k as u64);
        for op in &plan.ops {
            self.run_op_batch(ws, op, k);
        }
        out.clear();
        let classes = plan.num_classes();
        for b in 0..k {
            let logits = &ws.bufs[plan.output_buf][b * classes..(b + 1) * classes];
            softmax_append(logits, out);
        }
    }

    /// Executes one op over the first `k` images of the batch buffers.
    fn run_op_batch(&self, ws: &mut BatchedWorkspace, op: &InferOp, k: usize) {
        let plan = self.plan;
        let BatchedWorkspace {
            bufs,
            cols,
            pack_buf,
            ..
        } = ws;
        let _op_timing = oppsla_obs::op_timer(match op {
            InferOp::Conv2d { .. } => oppsla_obs::OpKind::Conv,
            InferOp::Linear { .. } => oppsla_obs::OpKind::Linear,
            InferOp::Relu { .. } => oppsla_obs::OpKind::Relu,
            InferOp::MaxPool { .. } => oppsla_obs::OpKind::MaxPool,
            InferOp::GlobalAvgPool { .. } => oppsla_obs::OpKind::Gap,
            InferOp::Add { .. } => oppsla_obs::OpKind::Add,
            InferOp::CopySeg { .. } => oppsla_obs::OpKind::CopySeg,
        });
        match op {
            InferOp::Conv2d {
                x,
                out,
                packed,
                weight,
                bias,
                geom,
                out_c,
                cols_len,
                direct,
            } => {
                let in_len = plan.buf_lens[*x];
                let out_len = plan.buf_lens[*out];
                let (xb, ob) = buf_pair(bufs, *x, *out);
                if *direct {
                    let full = Rect::full(geom.out_h(), geom.out_w());
                    for (image, oimg) in xb
                        .chunks_exact(in_len)
                        .zip(ob.chunks_exact_mut(out_len))
                        .take(k)
                    {
                        ops::conv2d_region_into(image, weight, bias, geom, *out_c, full, oimg);
                    }
                } else {
                    gemm::conv2d_batch_into(
                        &xb[..k * in_len],
                        k,
                        packed,
                        bias,
                        geom,
                        *out_c,
                        &mut cols[..*cols_len],
                        pack_buf,
                        &mut ob[..k * out_len],
                    );
                }
            }
            InferOp::Linear {
                x,
                out,
                weight_t,
                bias,
                in_f,
                out_f,
            } => {
                let (xb, ob) = buf_pair(bufs, *x, *out);
                // Row b runs the same SIMD vector-matrix kernel the
                // sequential m = 1 call runs — identical per-row bits.
                for (xrow, orow) in xb[..k * in_f]
                    .chunks_exact(*in_f)
                    .zip(ob[..k * out_f].chunks_exact_mut(*out_f))
                {
                    gemm::linear_nt_into(xrow, weight_t, *in_f, *out_f, orow);
                    for (o, &bv) in orow.iter_mut().zip(bias) {
                        *o += bv;
                    }
                }
            }
            InferOp::Relu { x, out } => {
                let len = k * plan.buf_lens[*x];
                let (xb, ob) = buf_pair(bufs, *x, *out);
                for (o, &v) in ob[..len].iter_mut().zip(&xb[..len]) {
                    *o = v.max(0.0);
                }
            }
            InferOp::MaxPool {
                x,
                out,
                channels,
                h,
                w,
                window,
            } => {
                let in_len = k * plan.buf_lens[*x];
                let out_len = k * plan.buf_lens[*out];
                let (xb, ob) = buf_pair(bufs, *x, *out);
                // The batch dim folds into channels: [k, c, h, w] pools as
                // k·c independent planes.
                ops::max_pool2d_into(
                    &xb[..in_len],
                    k * channels,
                    *h,
                    *w,
                    *window,
                    &mut ob[..out_len],
                    None,
                );
            }
            InferOp::GlobalAvgPool {
                x,
                out,
                channels,
                h,
                w,
            } => {
                let in_len = k * plan.buf_lens[*x];
                let (xb, ob) = buf_pair(bufs, *x, *out);
                ops::global_avg_pool_into(
                    &xb[..in_len],
                    k * channels,
                    *h,
                    *w,
                    &mut ob[..k * channels],
                );
            }
            InferOp::Add { x, y, out } => {
                let len = k * plan.buf_lens[*out];
                {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    ob[..len].copy_from_slice(&xb[..len]);
                }
                let (yb, ob) = buf_pair(bufs, *y, *out);
                for (o, &v) in ob[..len].iter_mut().zip(&yb[..len]) {
                    *o += v;
                }
            }
            InferOp::CopySeg {
                x,
                out,
                offset,
                len,
            } => {
                let in_len = plan.buf_lens[*x];
                let out_len = plan.buf_lens[*out];
                let (xb, ob) = buf_pair(bufs, *x, *out);
                for (src, dst) in xb
                    .chunks_exact(in_len)
                    .zip(ob.chunks_exact_mut(out_len))
                    .take(k)
                {
                    dst[*offset..*offset + *len].copy_from_slice(src);
                }
            }
        }
    }
}

/// Appends the max-shift softmax of `logits` to `out`, mirroring
/// [`InferencePlan::scores_into`] exactly.
fn softmax_append(logits: &[f32], out: &mut Vec<f32>) {
    let start = out.len();
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for &v in logits {
        let e = (v - m).exp();
        sum += e;
        out.push(e);
    }
    for o in out[start..].iter_mut() {
        *o /= sum;
    }
}

/// Splits simultaneous shared/exclusive borrows of two distinct buffers.
fn buf_pair(bufs: &mut [Vec<f32>], x: usize, out: usize) -> (&[f32], &mut [f32]) {
    assert_ne!(x, out, "an op cannot read and write the same buffer");
    if x < out {
        let (lo, hi) = bufs.split_at_mut(out);
        (&lo[x], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(x);
        (&hi[0], &mut lo[out])
    }
}
