//! Incremental one-pixel inference: cached base activations plus
//! dirty-region delta propagation.
//!
//! Every query of the attack sketch is the *same base image with exactly
//! one pixel changed*. A one-pixel edit only perturbs a receptive-field
//! cone that grows by the kernel radius per convolution layer — on a
//! 32×32 input most activation cells are untouched. This module exploits
//! that structure:
//!
//! * [`BaseActivations`] snapshots every intermediate buffer of one full
//!   forward pass through an [`InferencePlan`] (captured once per
//!   attacked image).
//! * [`DeltaPlan`] compiles the plan's op list into delta steps that,
//!   given a (pixel, channel-perturbation) candidate, recompute only the
//!   dirty spatial rectangle of each layer via the region-restricted
//!   kernels in [`oppsla_tensor::ops`].
//! * [`DeltaWorkspace`] holds a mutable copy of the base activations plus
//!   per-buffer dirty state; after a query, the dirty rectangles are
//!   lazily restored from the base at the start of the next one, so a
//!   query touches (and re-copies) only what it recomputed.
//!
//! # Dirty-region algebra
//!
//! Per layer kind, an input rectangle `[y0, y1) × [x0, x1)` maps to:
//!
//! * **Conv (k×k, stride s, padding p)** — the output cells whose window
//!   overlaps the rectangle: rows `[⌈(y0+p−k+1)/s⌉, ⌊(y1−1+p)/s⌋]`
//!   clamped to the output, i.e. the rectangle dilated by the kernel
//!   radius (the receptive-field cone's growth step).
//! * **MaxPool (window v)** — rows `[y0/v, ⌊(y1−1)/v⌋]` (coordinates
//!   shrink by the window).
//! * **ReLU** — the same rectangle (elementwise).
//! * **Residual add** — the bounding box of the two input rectangles
//!   (elementwise over the union).
//! * **Concat segment** — the input rectangle, surfacing at the segment's
//!   channel offset; multiple dirty segments merge by bounding box.
//! * **GlobalAvgPool / Linear** — any dirty input makes the (cheap,
//!   spatially unstructured) output fully dirty: full recompute.
//!
//! **Fallback rule:** a rectangle that covers the full spatial extent is
//! promoted to a full-buffer recompute ([`Region::Full`]), which is
//! exactly what the full engine would do — so results are bit-identical
//! to [`InferencePlan::scores_into`] by construction: every recomputed
//! cell is produced by the same kernel arithmetic, and every untouched
//! cell is the base value (verified strictly in
//! `tests/delta_matches_full.rs`).

use crate::infer::{ForwardWorkspace, InferOp, InferencePlan};
use crate::tune::{self, BatchRouteDecision, TunePolicy};
use oppsla_tensor::gemm;
use oppsla_tensor::ops::{self, Rect};
use oppsla_tensor::Tensor;

/// Column-count ceiling for one shared-GEMM group in the batched conv
/// route: groups larger than this are split so the concatenated column
/// matrix stays a few MiB even for full-extent 64×64 recomputes.
const MAX_GEMM_COLS: usize = 4096;

/// Dirty state of one activation buffer during a delta pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    /// Untouched: every cell holds the base activation.
    Clean,
    /// The cells inside the rectangle were recomputed (spatial `[c, h, w]`
    /// buffers only).
    Dirty(Rect),
    /// The whole buffer was recomputed.
    Full,
}

impl Region {
    fn is_clean(&self) -> bool {
        matches!(self, Region::Clean)
    }
}

/// One delta step, mirroring an op of the source [`InferencePlan`].
/// Weight-carrying steps reference the plan's op by index instead of
/// duplicating the weight snapshot.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Region-restricted convolution (op index into the plan).
    /// The booleans and span cut are this conv's tuned batched-route
    /// regime winners ([`BatchRouteDecision::use_direct`]).
    Conv {
        op: usize,
        direct_small: bool,
        direct_large: bool,
        span_cut: usize,
    },
    /// Elementwise ReLU over the dirty region.
    Relu { x: usize, out: usize },
    /// Region-restricted max pool (op index into the plan).
    Pool { op: usize },
    /// Full recompute of the (cheap) global average pool.
    Gap { op: usize },
    /// Elementwise sum over the merged dirty region.
    Add { x: usize, y: usize, out: usize },
    /// One concat segment: copies the input's dirty region to the
    /// segment's channel offset in the output.
    CopySeg {
        x: usize,
        out: usize,
        ch_offset: usize,
    },
    /// Full recompute of the (cheap) fully connected head.
    Linear { op: usize },
}

/// Every intermediate activation of one full forward pass, snapshotted so
/// delta queries can restore exactly the cells they dirtied.
#[derive(Debug, Clone)]
pub struct BaseActivations {
    bufs: Vec<Vec<f32>>,
}

impl BaseActivations {
    /// Runs one full forward pass for `image` and snapshots every buffer.
    ///
    /// # Panics
    ///
    /// Panics if the image geometry disagrees with the plan's input spec
    /// or the workspace belongs to a different plan.
    pub fn capture(plan: &InferencePlan, ws: &mut ForwardWorkspace, image: &Tensor) -> Self {
        plan.run(ws, image);
        BaseActivations {
            bufs: ws.bufs.clone(),
        }
    }

    /// Re-runs the full forward pass for a new base image, reusing this
    /// snapshot's buffers (no allocation).
    pub fn recapture(&mut self, plan: &InferencePlan, ws: &mut ForwardWorkspace, image: &Tensor) {
        plan.run(ws, image);
        for (snap, buf) in self.bufs.iter_mut().zip(&ws.bufs) {
            snap.copy_from_slice(buf);
        }
    }
}

/// Per-query mutable state of the incremental engine: a copy of the base
/// activations plus dirty-region bookkeeping. Build one per thread with
/// [`DeltaPlan::workspace`]; steady-state queries are allocation-free.
#[derive(Debug)]
pub struct DeltaWorkspace {
    bufs: Vec<Vec<f32>>,
    /// Dirty state per buffer, reset at the start of each query.
    dirty: Vec<Region>,
    /// Buffers (with their regions) that must be restored from the base
    /// before the next query runs. Drained lazily so each query pays only
    /// for what the previous one touched.
    pending: Vec<(usize, Region)>,
}

impl DeltaWorkspace {
    /// Re-seeds this workspace from a (new) base snapshot, restoring every
    /// pending dirty region. Reuses all buffers.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's buffer geometry disagrees.
    pub fn reset_from(&mut self, base: &BaseActivations) {
        assert_eq!(
            self.bufs.len(),
            base.bufs.len(),
            "base snapshot does not belong to this workspace's plan"
        );
        for (buf, snap) in self.bufs.iter_mut().zip(&base.bufs) {
            buf.copy_from_slice(snap);
        }
        self.pending.clear();
        self.dirty.fill(Region::Clean);
    }
}

/// Reusable scratch for the shared-GEMM convolution route of
/// [`DeltaPlan::scores_pixel_delta_batch_into`]: the column matrix that
/// concatenates every candidate's dirty columns, the GEMM output panel,
/// the GEMM's B-panel packing buffer, and the per-step work list. One
/// scratch serves any batch size; after it has grown to the largest
/// group the batched path is allocation-free.
#[derive(Debug, Default)]
pub struct DeltaBatchScratch {
    cols: Vec<f32>,
    gemm_out: Vec<f32>,
    pack_buf: Vec<f32>,
    work: Vec<(usize, Rect, Region)>,
}

impl DeltaBatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The incremental counterpart of an [`InferencePlan`]: delta steps plus
/// the per-buffer spatial metadata needed to propagate dirty rectangles.
///
/// The plan itself stays the owner of the weights; a `DeltaPlan` only
/// stores op indices, so it is cheap and can be rebuilt freely.
#[derive(Debug)]
pub struct DeltaPlan {
    steps: Vec<Step>,
    /// `Some([c, h, w])` for spatial buffers, `None` for flat ones.
    buf_chw: Vec<Option<[usize; 3]>>,
    num_bufs: usize,
    num_ops: usize,
    output_buf: usize,
    /// Per-conv batched-route decisions (step order), from the tuner.
    tuned: Vec<BatchRouteDecision>,
}

impl DeltaPlan {
    /// Compiles the delta steps for `plan`, tuning each conv's batched
    /// route threshold (per unique shape) unless tuning is off.
    pub fn compile(plan: &InferencePlan) -> Self {
        let buf_chw: Vec<Option<[usize; 3]>> = plan
            .buf_dims
            .iter()
            .map(|d| match d[..] {
                [c, h, w] => Some([c, h, w]),
                _ => None,
            })
            .collect();
        let mut steps = Vec::with_capacity(plan.ops.len());
        let mut tuned = Vec::new();
        let mut cache: Vec<((ops::Conv2dGeometry, usize), BatchRouteDecision)> = Vec::new();
        for (i, op) in plan.ops.iter().enumerate() {
            steps.push(match *op {
                InferOp::Conv2d {
                    ref weight,
                    ref packed,
                    ref bias,
                    ref geom,
                    out_c,
                    ..
                } => {
                    let decision = match cache.iter().find(|((g, oc), _)| g == geom && *oc == out_c)
                    {
                        Some((_, d)) => d.clone(),
                        None => {
                            let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
                            let d = match tune::policy() {
                                TunePolicy::Off => BatchRouteDecision::unmeasured(
                                    out_c,
                                    k,
                                    geom.out_h() * geom.out_w(),
                                ),
                                TunePolicy::Measure => {
                                    tune::tune_batch_route(weight, bias, packed, geom, out_c)
                                }
                            };
                            cache.push(((*geom, out_c), d.clone()));
                            d
                        }
                    };
                    let (direct_small, direct_large, span_cut) = (
                        decision.direct_small,
                        decision.direct_large,
                        decision.span_cut,
                    );
                    tuned.push(decision);
                    Step::Conv {
                        op: i,
                        direct_small,
                        direct_large,
                        span_cut,
                    }
                }
                InferOp::Linear { .. } => Step::Linear { op: i },
                InferOp::Relu { x, out } => Step::Relu { x, out },
                InferOp::MaxPool { .. } => Step::Pool { op: i },
                InferOp::GlobalAvgPool { .. } => Step::Gap { op: i },
                InferOp::Add { x, y, out } => Step::Add { x, y, out },
                InferOp::CopySeg { x, out, offset, .. } => {
                    let [_, h, w] =
                        buf_chw[out].expect("concat output must be a spatial [c, h, w] buffer");
                    Step::CopySeg {
                        x,
                        out,
                        ch_offset: offset / (h * w),
                    }
                }
            });
        }
        DeltaPlan {
            steps,
            buf_chw,
            num_bufs: plan.buf_lens.len(),
            num_ops: plan.ops.len(),
            output_buf: plan.output_buf,
            tuned,
        }
    }

    /// The tuner's per-conv batched-route decisions, in step order — one
    /// entry per convolution. Empty for conv-free plans (the MLP).
    pub fn tuner_report(&self) -> &[BatchRouteDecision] {
        &self.tuned
    }

    /// Allocates a delta workspace seeded with `base`'s activations.
    pub fn workspace(&self, base: &BaseActivations) -> DeltaWorkspace {
        assert_eq!(
            base.bufs.len(),
            self.num_bufs,
            "base snapshot does not belong to this plan"
        );
        DeltaWorkspace {
            bufs: base.bufs.clone(),
            dirty: vec![Region::Clean; self.num_bufs],
            pending: Vec::with_capacity(self.num_bufs),
        }
    }

    /// Scores the base image with the pixel at `(row, col)` replaced by
    /// `rgb`, recomputing only dirty regions. Writes the softmax score
    /// vector into `out` (cleared first); bit-identical to running
    /// [`InferencePlan::scores_into`] on the perturbed image.
    ///
    /// `plan` must be the plan this `DeltaPlan` was compiled from, `base`
    /// the snapshot `ws` was seeded with (both asserted cheaply).
    ///
    /// # Panics
    ///
    /// Panics if `plan`/`base`/`ws` disagree with this delta plan, or the
    /// pixel coordinates are out of range.
    #[allow(clippy::too_many_arguments)] // (plan, base, ws) + the candidate + out
    pub fn scores_pixel_delta_into(
        &self,
        plan: &InferencePlan,
        base: &BaseActivations,
        ws: &mut DeltaWorkspace,
        row: usize,
        col: usize,
        rgb: [f32; 3],
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            plan.ops.len(),
            self.num_ops,
            "plan does not match delta plan"
        );
        assert_eq!(ws.bufs.len(), self.num_bufs, "workspace does not match");
        assert_eq!(base.bufs.len(), self.num_bufs, "base does not match");
        oppsla_obs::count(oppsla_obs::Counter::DeltaQueries);
        self.begin_candidate(base, ws, row, col, rgb);
        for &step in &self.steps {
            self.run_step(plan, ws, step);
        }
        out.clear();
        softmax_append(&ws.bufs[self.output_buf], out);
    }

    /// Scores `candidates.len()` one-pixel variants of the same base image
    /// in one pass: each candidate gets its own [`DeltaWorkspace`] (all
    /// seeded from `base`), and the delta steps run **layer-major** —
    /// every workspace advances through step `i` before any touches step
    /// `i + 1` — so a layer's weights stay cache-resident across the whole
    /// batch instead of being re-streamed per candidate. Convolution
    /// steps additionally concatenate every candidate's dirty columns
    /// into one shared im2col matrix and run a single blocked GEMM
    /// against the layer's pre-packed kernel bank (see
    /// [`run_conv_batch`](DeltaPlan::scores_pixel_delta_batch_into)),
    /// which is where the batched path's throughput win comes from.
    /// Both the direct region kernel and the GEMM accumulate taps in the
    /// same `(ch, ky, kx)` order with the bias added last, so each
    /// candidate's result stays bit-identical to its sequential run
    /// (asserted exactly in `tests/batched_matches_sequential.rs`). The
    /// per-conv direct-vs-GEMM group threshold is the tuned
    /// `min_gemm_cols` from [`DeltaPlan::compile`].
    ///
    /// Appends `num_classes` softmax scores per candidate to `out`
    /// (cleared first), in candidate order.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer workspaces than candidates, or any
    /// plan/base/workspace disagrees with this delta plan, or a pixel is
    /// out of range.
    pub fn scores_pixel_delta_batch_into(
        &self,
        plan: &InferencePlan,
        base: &BaseActivations,
        workspaces: &mut [DeltaWorkspace],
        candidates: &[(usize, usize, [f32; 3])],
        scratch: &mut DeltaBatchScratch,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            plan.ops.len(),
            self.num_ops,
            "plan does not match delta plan"
        );
        assert_eq!(base.bufs.len(), self.num_bufs, "base does not match");
        assert!(
            candidates.len() <= workspaces.len(),
            "{} candidates need at least as many delta workspaces, got {}",
            candidates.len(),
            workspaces.len()
        );
        let workspaces = &mut workspaces[..candidates.len()];
        for (ws, &(row, col, rgb)) in workspaces.iter_mut().zip(candidates) {
            assert_eq!(ws.bufs.len(), self.num_bufs, "workspace does not match");
            oppsla_obs::count(oppsla_obs::Counter::DeltaQueries);
            self.begin_candidate(base, ws, row, col, rgb);
        }
        self.run_batch_steps(plan, workspaces, scratch, out);
    }

    /// Scores a batch of one-pixel candidates that may each perturb a
    /// **different base image**: `bases[i]` is the snapshot candidate `i`
    /// perturbs, and `workspaces[i]` must currently track `bases[i]` (its
    /// buffers were seeded from that snapshot via [`DeltaPlan::workspace`]
    /// / [`DeltaWorkspace::reset_from`], or by earlier queries against the
    /// same base — [`begin_candidate`](Self::scores_pixel_delta_into)
    /// restores only the regions the *previous* candidate dirtied, so
    /// buffers seeded from a different base would leak stale activations).
    ///
    /// This is the cross-session packing entry point of the attack
    /// server's batch scheduler: candidates from different tenants
    /// (different bases, same model) concatenate into the same shared
    /// im2col + GEMM groups as the single-base batch. Candidate results
    /// are bit-identical to their isolated sequential runs for any group
    /// composition, because each candidate's dirty columns occupy their
    /// own slice of the GEMM's column matrix and both kernel routes
    /// accumulate taps in the same order (the same argument as
    /// [`DeltaPlan::scores_pixel_delta_batch_into`], which this entry
    /// generalizes — that entry is exactly this one with all `bases[i]`
    /// equal).
    ///
    /// Appends `num_classes` softmax scores per candidate to `out`
    /// (cleared first), in candidate order.
    ///
    /// # Panics
    ///
    /// Panics if `bases`/`workspaces` are shorter than `candidates`, or
    /// any plan/base/workspace disagrees with this delta plan, or a pixel
    /// is out of range.
    pub fn scores_pixel_delta_multi_into(
        &self,
        plan: &InferencePlan,
        bases: &[&BaseActivations],
        workspaces: &mut [DeltaWorkspace],
        candidates: &[(usize, usize, [f32; 3])],
        scratch: &mut DeltaBatchScratch,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            plan.ops.len(),
            self.num_ops,
            "plan does not match delta plan"
        );
        assert_eq!(
            bases.len(),
            candidates.len(),
            "one base snapshot per candidate"
        );
        assert!(
            candidates.len() <= workspaces.len(),
            "{} candidates need at least as many delta workspaces, got {}",
            candidates.len(),
            workspaces.len()
        );
        let workspaces = &mut workspaces[..candidates.len()];
        for ((ws, &base), &(row, col, rgb)) in workspaces.iter_mut().zip(bases).zip(candidates) {
            assert_eq!(base.bufs.len(), self.num_bufs, "base does not match");
            assert_eq!(ws.bufs.len(), self.num_bufs, "workspace does not match");
            oppsla_obs::count(oppsla_obs::Counter::DeltaQueries);
            self.begin_candidate(base, ws, row, col, rgb);
        }
        self.run_batch_steps(plan, workspaces, scratch, out);
    }

    /// The layer-major step loop shared by the batched entry points:
    /// every workspace advances through step `i` before any touches step
    /// `i + 1`, convs route through [`run_conv_batch`](Self::scores_pixel_delta_batch_into),
    /// and each candidate's softmax is appended to `out` in order.
    fn run_batch_steps(
        &self,
        plan: &InferencePlan,
        workspaces: &mut [DeltaWorkspace],
        scratch: &mut DeltaBatchScratch,
        out: &mut Vec<f32>,
    ) {
        for &step in &self.steps {
            if let Step::Conv {
                op,
                direct_small,
                direct_large,
                span_cut,
            } = step
            {
                self.run_conv_batch(
                    plan,
                    workspaces,
                    op,
                    (direct_small, direct_large, span_cut),
                    scratch,
                );
            } else {
                for ws in workspaces.iter_mut() {
                    self.run_step(plan, ws, step);
                }
            }
        }
        out.clear();
        for ws in workspaces.iter() {
            softmax_append(&ws.bufs[self.output_buf], out);
        }
    }

    /// Runs one convolution step for every candidate in the batch through
    /// a shared im2col + blocked-GEMM pipeline: each candidate's dirty
    /// output columns are packed side by side into one `[k, n_total]`
    /// matrix (candidates' rectangles are independent, so their columns
    /// simply concatenate), multiplied against the op's pre-packed kernel
    /// bank in a single [`gemm::matmul_packed_into`] call, and scattered
    /// back (plus bias) into each workspace's output rectangle. Groups
    /// are capped at [`MAX_GEMM_COLS`] columns to bound scratch memory,
    /// and each group consults the conv's tuned regime winners
    /// ([`BatchRouteDecision::use_direct`], keyed by the group's mean
    /// per-candidate rect width) to run the per-candidate direct kernel
    /// instead where it measured faster. Either kernel accumulates taps
    /// in `(ch, ky, kx)` order with bias last, so the route chosen never
    /// changes a single output bit.
    fn run_conv_batch(
        &self,
        plan: &InferencePlan,
        workspaces: &mut [DeltaWorkspace],
        op: usize,
        (direct_small, direct_large, span_cut): (bool, bool, usize),
        scratch: &mut DeltaBatchScratch,
    ) {
        let InferOp::Conv2d {
            x,
            out,
            ref weight,
            ref packed,
            ref bias,
            ref geom,
            out_c,
            ..
        } = plan.ops[op]
        else {
            unreachable!("Step::Conv points at a non-conv op");
        };
        let _op_timing = oppsla_obs::op_timer(oppsla_obs::OpKind::Conv);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
        let area = |r: &Rect| (r.y1 - r.y0) * (r.x1 - r.x0);
        let DeltaBatchScratch {
            cols,
            gemm_out,
            pack_buf,
            work,
        } = scratch;

        work.clear();
        for (i, ws) in workspaces.iter().enumerate() {
            let region = conv_out_region(ws.dirty[x], geom);
            let rect = match region {
                Region::Clean => continue,
                Region::Full => Rect::full(oh, ow),
                Region::Dirty(r) => r,
            };
            work.push((i, rect, region));
        }

        let mut g0 = 0;
        while g0 < work.len() {
            let mut g1 = g0 + 1;
            let mut total = area(&work[g0].1);
            while g1 < work.len() && total + area(&work[g1].1) <= MAX_GEMM_COLS {
                total += area(&work[g1].1);
                g1 += 1;
            }
            let mean_span = work[g0..g1]
                .iter()
                .map(|(_, r, _)| r.x1 - r.x0)
                .sum::<usize>()
                / (g1 - g0);
            let use_direct = if mean_span <= span_cut {
                direct_small
            } else {
                direct_large
            };
            if use_direct {
                for &(i, rect, _) in &work[g0..g1] {
                    let (xb, ob) = buf_pair(&mut workspaces[i].bufs, x, out);
                    ops::conv2d_region_into(xb, weight, bias, geom, out_c, rect, ob);
                }
            } else {
                // Grow-only scratch: the gather overwrites every cell of
                // its `[k, total]` window and the GEMM every output cell,
                // so shrinking between differently-sized convs (and
                // re-zero-filling on the next growth, a memset per conv
                // per sweep) would buy nothing.
                if cols.len() < k * total {
                    cols.resize(k * total, 0.0);
                }
                if gemm_out.len() < out_c * total {
                    gemm_out.resize(out_c * total, 0.0);
                }
                let (cols, gemm_out) = (&mut cols[..k * total], &mut gemm_out[..out_c * total]);
                let mut col0 = 0;
                for &(i, rect, _) in &work[g0..g1] {
                    ops::im2col_region_into(&workspaces[i].bufs[x], geom, rect, col0, total, cols);
                    col0 += area(&rect);
                }
                gemm::matmul_packed_into(packed, cols, total, pack_buf, gemm_out);
                let mut col0 = 0;
                for &(i, rect, _) in &work[g0..g1] {
                    let ob = &mut workspaces[i].bufs[out];
                    let rw = rect.x1 - rect.x0;
                    let ra = area(&rect);
                    for oc in 0..out_c {
                        let g = &gemm_out[oc * total + col0..oc * total + col0 + ra];
                        let b = bias[oc];
                        let mut src = 0;
                        for oy in rect.y0..rect.y1 {
                            let obase = (oc * oh + oy) * ow;
                            for (o, &v) in ob[obase + rect.x0..obase + rect.x1]
                                .iter_mut()
                                .zip(&g[src..src + rw])
                            {
                                *o = v + b;
                            }
                            src += rw;
                        }
                    }
                    col0 += ra;
                }
            }
            g0 = g1;
        }

        for &(i, _, region) in work.iter() {
            self.mark(&mut workspaces[i], out, region);
        }
    }

    /// Restores the previous candidate's dirty regions from the base,
    /// pokes the new candidate pixel, and seeds its 1×1 dirty rectangle.
    fn begin_candidate(
        &self,
        base: &BaseActivations,
        ws: &mut DeltaWorkspace,
        row: usize,
        col: usize,
        rgb: [f32; 3],
    ) {
        let [in_c, in_h, in_w] = self.buf_chw[0].expect("input buffer must be [c, h, w]");
        assert_eq!(in_c, 3, "pixel-delta queries need a 3-channel input");
        assert!(
            row < in_h && col < in_w,
            "pixel ({row}, {col}) out of range for {in_h}x{in_w} input"
        );

        // Lazily undo the previous query: restore exactly the regions it
        // dirtied from the base snapshot.
        for (buf, region) in ws.pending.drain(..) {
            match region {
                Region::Clean => {}
                Region::Full => ws.bufs[buf].copy_from_slice(&base.bufs[buf]),
                Region::Dirty(r) => {
                    let [c, h, w] = self.buf_chw[buf].expect("rect region on flat buffer");
                    let (src, dst) = (&base.bufs[buf], &mut ws.bufs[buf]);
                    for ch in 0..c {
                        for y in r.y0..r.y1 {
                            let o = (ch * h + y) * w;
                            dst[o + r.x0..o + r.x1].copy_from_slice(&src[o + r.x0..o + r.x1]);
                        }
                    }
                }
            }
        }
        ws.dirty.fill(Region::Clean);

        // Poke the candidate pixel into the input buffer (CHW layout).
        for (ch, v) in rgb.into_iter().enumerate() {
            ws.bufs[0][ch * in_h * in_w + row * in_w + col] = v;
        }
        let seed = Rect {
            y0: row,
            y1: row + 1,
            x0: col,
            x1: col + 1,
        };
        self.mark(ws, 0, Region::Dirty(seed));
    }

    /// Advances one workspace through one delta step (dirty-region
    /// propagation plus the region-restricted kernel call). All candidate
    /// state lives in `ws`, so steps can be interleaved across workspaces
    /// in any order — the batched path runs them layer-major.
    fn run_step(&self, plan: &InferencePlan, ws: &mut DeltaWorkspace, step: Step) {
        let _op_timing = oppsla_obs::op_timer(match step {
            Step::Conv { .. } => oppsla_obs::OpKind::Conv,
            Step::Linear { .. } => oppsla_obs::OpKind::Linear,
            Step::Relu { .. } => oppsla_obs::OpKind::Relu,
            Step::Pool { .. } => oppsla_obs::OpKind::MaxPool,
            Step::Gap { .. } => oppsla_obs::OpKind::Gap,
            Step::Add { .. } => oppsla_obs::OpKind::Add,
            Step::CopySeg { .. } => oppsla_obs::OpKind::CopySeg,
        });
        {
            match step {
                Step::Conv { op, .. } => {
                    let InferOp::Conv2d {
                        x,
                        out,
                        ref weight,
                        ref bias,
                        ref geom,
                        out_c,
                        ..
                    } = plan.ops[op]
                    else {
                        unreachable!("Step::Conv points at a non-conv op");
                    };
                    let region = conv_out_region(ws.dirty[x], geom);
                    let rect = match region {
                        Region::Clean => return,
                        Region::Full => Rect::full(geom.out_h(), geom.out_w()),
                        Region::Dirty(r) => r,
                    };
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    ops::conv2d_region_into(xb, weight, bias, geom, out_c, rect, ob);
                    self.mark(ws, out, region);
                }
                Step::Relu { x, out } => {
                    let region = ws.dirty[x];
                    if region.is_clean() {
                        return;
                    }
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    for (lo, hi) in RegionRows::new(region, self.buf_chw[out], ob.len()) {
                        for (o, &v) in ob[lo..hi].iter_mut().zip(&xb[lo..hi]) {
                            *o = v.max(0.0);
                        }
                    }
                    self.mark(ws, out, region);
                }
                Step::Pool { op } => {
                    let InferOp::MaxPool {
                        x,
                        out,
                        channels,
                        h,
                        w,
                        window,
                    } = plan.ops[op]
                    else {
                        unreachable!("Step::Pool points at a non-pool op");
                    };
                    let (oh, ow) = (h / window, w / window);
                    let region = match ws.dirty[x] {
                        Region::Clean => return,
                        Region::Full => Region::Full,
                        Region::Dirty(r) => {
                            let o = Rect {
                                y0: r.y0 / window,
                                y1: (r.y1 - 1) / window + 1,
                                x0: r.x0 / window,
                                x1: (r.x1 - 1) / window + 1,
                            };
                            if o.covers(oh, ow) {
                                oppsla_obs::count(oppsla_obs::Counter::DeltaFullPromotions);
                                Region::Full
                            } else {
                                Region::Dirty(o)
                            }
                        }
                    };
                    let rect = match region {
                        Region::Full => Rect::full(oh, ow),
                        Region::Dirty(r) => r,
                        Region::Clean => unreachable!(),
                    };
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    ops::max_pool2d_region_into(xb, channels, h, w, window, rect, ob);
                    self.mark(ws, out, region);
                }
                Step::Gap { op } => {
                    let InferOp::GlobalAvgPool {
                        x,
                        out,
                        channels,
                        h,
                        w,
                    } = plan.ops[op]
                    else {
                        unreachable!("Step::Gap points at a non-gap op");
                    };
                    if ws.dirty[x].is_clean() {
                        return;
                    }
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    ops::global_avg_pool_into(xb, channels, h, w, ob);
                    self.mark(ws, out, Region::Full);
                }
                Step::Add { x, y, out } => {
                    let region = union_region(ws.dirty[x], ws.dirty[y]);
                    if region.is_clean() {
                        return;
                    }
                    // Elementwise over the merged region: both inputs are
                    // valid everywhere (clean cells hold base values).
                    for (lo, hi) in RegionRows::new(region, self.buf_chw[out], ws.bufs[out].len()) {
                        let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                        ob[lo..hi].copy_from_slice(&xb[lo..hi]);
                        let (yb, ob) = buf_pair(&mut ws.bufs, y, out);
                        for (o, &v) in ob[lo..hi].iter_mut().zip(&yb[lo..hi]) {
                            *o += v;
                        }
                    }
                    self.mark(ws, out, region);
                }
                Step::CopySeg { x, out, ch_offset } => {
                    let region = ws.dirty[x];
                    if region.is_clean() {
                        return;
                    }
                    let [xc, xh, xw] = self.buf_chw[x].expect("concat input must be [c, h, w]");
                    let [_, oh, ow] = self.buf_chw[out].expect("concat out must be [c, h, w]");
                    debug_assert_eq!((xh, xw), (oh, ow), "concat spatial dims");
                    let rect = match region {
                        Region::Full => Rect::full(xh, xw),
                        Region::Dirty(r) => r,
                        Region::Clean => unreachable!(),
                    };
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    for ch in 0..xc {
                        for y in rect.y0..rect.y1 {
                            let src = (ch * xh + y) * xw;
                            let dst = ((ch_offset + ch) * oh + y) * ow;
                            ob[dst + rect.x0..dst + rect.x1]
                                .copy_from_slice(&xb[src + rect.x0..src + rect.x1]);
                        }
                    }
                    // The segment dirties the same spatial window of the
                    // (taller) output; merge with other dirty segments.
                    let out_region = match region {
                        Region::Full => {
                            if self.buf_chw[out].map(|[c, _, _]| c) == Some(xc) {
                                Region::Full
                            } else {
                                Region::Dirty(Rect::full(xh, xw))
                            }
                        }
                        other => other,
                    };
                    let merged = union_region(ws.dirty[out], out_region);
                    self.mark(ws, out, merged);
                }
                Step::Linear { op } => {
                    let InferOp::Linear {
                        x,
                        out,
                        ref weight_t,
                        ref bias,
                        in_f,
                        out_f,
                    } = plan.ops[op]
                    else {
                        unreachable!("Step::Linear points at a non-linear op");
                    };
                    if ws.dirty[x].is_clean() {
                        return;
                    }
                    let (xb, ob) = buf_pair(&mut ws.bufs, x, out);
                    gemm::linear_nt_into(xb, weight_t, in_f, out_f, ob);
                    for (o, &bv) in ob.iter_mut().zip(bias) {
                        *o += bv;
                    }
                    self.mark(ws, out, Region::Full);
                }
            }
        }
    }

    /// Records `region` as buffer `buf`'s dirty state and queues it for
    /// restoration before the next query. Spatial rectangles on flat
    /// buffers are promoted to [`Region::Full`].
    fn mark(&self, ws: &mut DeltaWorkspace, buf: usize, mut region: Region) {
        if matches!(region, Region::Dirty(_)) && self.buf_chw[buf].is_none() {
            region = Region::Full;
        }
        let prev = ws.dirty[buf];
        ws.dirty[buf] = region;
        // One pending entry per buffer per query: replace, don't stack.
        // (Only concat outputs are marked twice within a query.)
        if prev.is_clean() {
            ws.pending.push((buf, region));
        } else if let Some(entry) = ws.pending.iter_mut().rev().find(|(b, _)| *b == buf) {
            entry.1 = region;
        }
    }
}

/// Appends the max-shift softmax of `logits` to `out`, mirroring
/// `autograd::softmax_rows` (and [`InferencePlan::scores_into`]) exactly.
/// Propagates a convolution input region to its output region: the
/// dirty-region algebra's kernel-radius dilation step, with full-extent
/// rectangles promoted to [`Region::Full`] (counted as a promotion).
fn conv_out_region(dirty: Region, geom: &ops::Conv2dGeometry) -> Region {
    match dirty {
        Region::Clean => Region::Clean,
        Region::Full => Region::Full,
        Region::Dirty(r) => {
            let (s, p) = (geom.stride, geom.padding);
            let (oh, ow) = (geom.out_h(), geom.out_w());
            let o = Rect {
                y0: (r.y0 + p).saturating_sub(geom.kernel_h - 1).div_ceil(s),
                y1: ((r.y1 - 1 + p) / s + 1).min(oh),
                x0: (r.x0 + p).saturating_sub(geom.kernel_w - 1).div_ceil(s),
                x1: ((r.x1 - 1 + p) / s + 1).min(ow),
            };
            if o.covers(oh, ow) {
                oppsla_obs::count(oppsla_obs::Counter::DeltaFullPromotions);
                Region::Full
            } else {
                Region::Dirty(o)
            }
        }
    }
}

fn softmax_append(logits: &[f32], out: &mut Vec<f32>) {
    let start = out.len();
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for &v in logits {
        let e = (v - m).exp();
        sum += e;
        out.push(e);
    }
    for o in out[start..].iter_mut() {
        *o /= sum;
    }
}

/// Merged dirty state of two buffers feeding one elementwise op.
fn union_region(a: Region, b: Region) -> Region {
    match (a, b) {
        (Region::Clean, r) | (r, Region::Clean) => r,
        (Region::Full, _) | (_, Region::Full) => Region::Full,
        (Region::Dirty(ra), Region::Dirty(rb)) => Region::Dirty(ra.union(&rb)),
    }
}

/// Iterates the flat `[lo, hi)` index ranges covered by a region: one
/// range per (channel, row) for rectangles, a single full range for
/// [`Region::Full`].
struct RegionRows {
    region: Region,
    chw: Option<[usize; 3]>,
    len: usize,
    ch: usize,
    y: usize,
    done: bool,
}

impl RegionRows {
    fn new(region: Region, chw: Option<[usize; 3]>, len: usize) -> Self {
        let (y, done) = match region {
            Region::Dirty(r) => (r.y0, r.is_empty()),
            _ => (0, false),
        };
        RegionRows {
            region,
            chw,
            len,
            ch: 0,
            y,
            done,
        }
    }
}

impl Iterator for RegionRows {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        match self.region {
            Region::Clean => {
                self.done = true;
                None
            }
            Region::Full => {
                self.done = true;
                Some((0, self.len))
            }
            Region::Dirty(r) => {
                let [c, h, w] = self.chw.expect("rect region on flat buffer");
                if self.ch >= c {
                    self.done = true;
                    return None;
                }
                let o = (self.ch * h + self.y) * w;
                let item = (o + r.x0, o + r.x1);
                self.y += 1;
                if self.y >= r.y1 {
                    self.y = r.y0;
                    self.ch += 1;
                }
                Some(item)
            }
        }
    }
}

/// Splits simultaneous shared/exclusive borrows of two distinct buffers.
fn buf_pair(bufs: &mut [Vec<f32>], x: usize, out: usize) -> (&[f32], &mut [f32]) {
    assert_ne!(x, out, "an op cannot read and write the same buffer");
    if x < out {
        let (lo, hi) = bufs.split_at_mut(out);
        (&lo[x], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(x);
        (&hi[0], &mut lo[out])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Arch, ConvNet, InputSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_image(spec: InputSpec) -> Tensor {
        Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
            ((i as f32) * 0.137).sin().abs()
        })
    }

    /// Full harness: delta scores for a pixel poke must equal a full
    /// forward pass on the poked image, bit for bit.
    fn check(arch: Arch, spec: InputSpec, pixels: &[(usize, usize)]) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let net = ConvNet::build(arch, spec, 6, &mut rng);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        let mut ws = plan.workspace();
        let image = test_image(spec);
        let base = BaseActivations::capture(&plan, &mut ws, &image);
        let mut dws = delta.workspace(&base);
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for (i, &(row, col)) in pixels.iter().enumerate() {
            let rgb = [0.9, (i % 2) as f32, 0.05 * i as f32];
            delta.scores_pixel_delta_into(&plan, &base, &mut dws, row, col, rgb, &mut got);
            let mut poked = image.clone();
            for (ch, v) in rgb.into_iter().enumerate() {
                *poked.at_mut(&[ch, row, col]) = v;
            }
            plan.scores_into(&mut ws, &poked, &mut want);
            assert_eq!(got, want, "{arch} pixel ({row}, {col}) diverged");
        }
    }

    #[test]
    fn multi_base_batch_matches_per_base_batches() {
        // The cross-session packing entry: candidates against two
        // different base images share one grouped call, and every
        // candidate must stay bit-identical to a single-base batched
        // call against its own base — for a conv family (exercises the
        // shared-GEMM route) with interleaved bases (exercises the
        // per-candidate base restore).
        let spec = InputSpec::RGB32;
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let net = ConvNet::build(Arch::VggSmall, spec, 6, &mut rng);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        let mut ws = plan.workspace();
        let image_a = test_image(spec);
        let image_b = Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
            ((i as f32) * 0.311).cos().abs()
        });
        let base_a = BaseActivations::capture(&plan, &mut ws, &image_a);
        let base_b = BaseActivations::capture(&plan, &mut ws, &image_b);

        let candidates: Vec<(usize, usize, [f32; 3])> = (0..6)
            .map(|i| (5 * i, 31 - 3 * i, [0.9, 0.1 * i as f32, 0.3]))
            .collect();
        // Interleave: even candidates perturb A, odd perturb B.
        let bases: Vec<&BaseActivations> = (0..6)
            .map(|i| if i % 2 == 0 { &base_a } else { &base_b })
            .collect();
        let mut workspaces: Vec<DeltaWorkspace> =
            bases.iter().map(|b| delta.workspace(b)).collect();
        let mut scratch = DeltaBatchScratch::new();
        let mut got = Vec::new();
        delta.scores_pixel_delta_multi_into(
            &plan,
            &bases,
            &mut workspaces,
            &candidates,
            &mut scratch,
            &mut got,
        );

        let classes = plan.num_classes();
        for (which, base) in [(0usize, &base_a), (1, &base_b)] {
            let subset: Vec<_> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == which)
                .collect();
            let cands: Vec<_> = subset.iter().map(|(_, &c)| c).collect();
            let mut dws: Vec<DeltaWorkspace> =
                cands.iter().map(|_| delta.workspace(base)).collect();
            let mut want = Vec::new();
            delta.scores_pixel_delta_batch_into(
                &plan,
                base,
                &mut dws,
                &cands,
                &mut scratch,
                &mut want,
            );
            for (j, (i, _)) in subset.iter().enumerate() {
                assert_eq!(
                    &got[i * classes..(i + 1) * classes],
                    &want[j * classes..(j + 1) * classes],
                    "candidate {i} diverged from its single-base batch"
                );
            }
        }

        // A second grouped call through the *same* workspaces (pending
        // dirty regions restored per candidate from its own base) must
        // also agree — the steady state of the server's scheduler.
        let candidates2: Vec<(usize, usize, [f32; 3])> = (0..6)
            .map(|i| (3 * i + 1, 2 + 4 * i, [0.2, 0.8, 0.05 * i as f32]))
            .collect();
        let mut got2 = Vec::new();
        delta.scores_pixel_delta_multi_into(
            &plan,
            &bases,
            &mut workspaces,
            &candidates2,
            &mut scratch,
            &mut got2,
        );
        let mut want = Vec::new();
        for (i, &(row, col, rgb)) in candidates2.iter().enumerate() {
            let image = if i % 2 == 0 { &image_a } else { &image_b };
            let mut poked = image.clone();
            for (ch, v) in rgb.into_iter().enumerate() {
                *poked.at_mut(&[ch, row, col]) = v;
            }
            plan.scores_into(&mut ws, &poked, &mut want);
            assert_eq!(
                &got2[i * classes..(i + 1) * classes],
                &want[..],
                "steady-state candidate {i} diverged from a full forward"
            );
        }
    }

    #[test]
    fn delta_matches_full_on_conv_families() {
        let pixels = [(0, 0), (31, 31), (16, 16), (0, 16), (15, 0), (1, 30)];
        for arch in [
            Arch::VggSmall,
            Arch::ResNetSmall,
            Arch::GoogLeNetSmall,
            Arch::DenseNetSmall,
        ] {
            check(arch, InputSpec::RGB32, &pixels);
        }
    }

    #[test]
    fn delta_matches_full_on_the_mlp() {
        // The MLP flattens immediately: everything funnels through the
        // Linear full-recompute fallback.
        check(Arch::Mlp, InputSpec::RGB32, &[(0, 0), (16, 16), (31, 31)]);
    }

    #[test]
    fn repeated_queries_restore_the_base() {
        // Querying the same pixel twice with different values must not
        // leak state from the first query into the second.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = ConvNet::build(Arch::ResNetSmall, InputSpec::RGB32, 5, &mut rng);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        let mut ws = plan.workspace();
        let image = test_image(InputSpec::RGB32);
        let base = BaseActivations::capture(&plan, &mut ws, &image);
        let mut dws = delta.workspace(&base);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, 7, 9, [1.0, 0.0, 1.0], &mut a);
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, 20, 3, [0.0, 0.0, 0.0], &mut b);
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, 7, 9, [1.0, 0.0, 1.0], &mut c);
        assert_eq!(a, c, "state leaked across queries");
        assert_ne!(a, b, "different pokes should (generically) differ");
    }

    #[test]
    fn recapture_and_reset_track_a_new_base() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let net = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 4, &mut rng);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        let mut ws = plan.workspace();
        let img1 = test_image(InputSpec::RGB32);
        let img2 = Tensor::from_fn([3, 32, 32], |i| ((i as f32) * 0.271).cos().abs());
        let mut base = BaseActivations::capture(&plan, &mut ws, &img1);
        let mut dws = delta.workspace(&base);
        let mut out = Vec::new();
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, 3, 3, [1.0; 3], &mut out);

        base.recapture(&plan, &mut ws, &img2);
        dws.reset_from(&base);
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, 3, 3, [1.0; 3], &mut out);
        let mut poked = img2.clone();
        for ch in 0..3 {
            *poked.at_mut(&[ch, 3, 3]) = 1.0;
        }
        let mut want = Vec::new();
        plan.scores_into(&mut ws, &poked, &mut want);
        assert_eq!(out, want);
    }
}
