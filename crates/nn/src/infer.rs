//! Allocation-free single-image inference.
//!
//! The attack loop treats a classifier as a black box and queries it
//! millions of times with single `[c, h, w]` images. The tape in
//! [`crate::autograd`] rebuilds its node list — and re-clones every weight
//! tensor — per forward pass, which is the right trade for training but
//! pure overhead for inference. This module compiles a [`ConvNet`] once
//! into an [`InferencePlan`]: a flat list of kernel calls with weights
//! snapshotted into plain buffers, plus the exact size of every
//! intermediate activation. A [`ForwardWorkspace`] pre-allocates those
//! buffers, so steady-state queries perform **zero heap allocations**
//! (verified by `tests/alloc_free.rs`).
//!
//! The plan mirrors the tape's arithmetic operation-for-operation — the
//! same per-element accumulation order (convolution is fused rather than
//! lowered through im2col, which skips only exact-zero padding taps; see
//! [`oppsla_tensor::ops::conv2d_region_into`] for why that is bit-exact),
//! same bias broadcast, same max-shift softmax — so scores are
//! bit-identical to [`ConvNet::scores`] (verified by
//! `tests/infer_matches_tape.rs`).
//!
//! Weights are snapshotted at compile time: rebuild the plan after
//! training or loading weights.
//!
//! # Examples
//!
//! ```
//! use oppsla_nn::infer::InferenceEngine;
//! use oppsla_nn::models::{Arch, ConvNet, InputSpec};
//! use oppsla_tensor::Tensor;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
//! let engine = InferenceEngine::new(&net);
//! let image = Tensor::zeros([3, 32, 32]);
//! assert_eq!(engine.scores(&image), net.scores(&image));
//! ```

use crate::layers::Layer;
use crate::models::{ConvNet, InputSpec};
use crate::tune::{self, ConvRouteDecision, TunePolicy};
use oppsla_tensor::gemm::{self, PackedA};
use oppsla_tensor::ops::{self, Conv2dGeometry, Rect};
use oppsla_tensor::Tensor;
use std::sync::Mutex;

/// Handle to an activation produced while planning (a buffer plus its
/// logical shape). Reshapes alias the same buffer under a new shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(usize);

#[derive(Debug)]
struct Slot {
    buf: usize,
    dims: Vec<usize>,
}

/// One step of a compiled forward pass. Buffer indices refer to
/// [`ForwardWorkspace::bufs`]; every op writes a buffer no earlier op
/// reads, so execution is a straight-line sweep.
///
/// `pub(crate)` so the incremental engine in [`crate::delta`] can walk
/// the same op list with region-restricted kernels.
#[derive(Debug)]
pub(crate) enum InferOp {
    /// Convolution plus bias. Full forwards run either the tape's
    /// im2col + matmul + bias pipeline (`direct == false`, small feature
    /// maps, where the GEMM wins) or the fused direct kernel
    /// [`oppsla_tensor::ops::conv2d_region_into`] (`direct == true`,
    /// large feature maps, where the im2col scratch spills cache). The
    /// two are bit-identical — same per-element accumulation order, bias
    /// last — so the choice never changes the scores, and the incremental
    /// engine can always patch with the region kernel.
    Conv2d {
        x: usize,
        out: usize,
        weight: Vec<f32>,
        /// The same kernel bank repacked once at plan-compile time into
        /// [`PackedA`] row panels for the blocked GEMM (GEMM-path convs
        /// only; the direct kernel reads the row-major `weight`).
        packed: PackedA,
        bias: Vec<f32>,
        geom: Conv2dGeometry,
        out_c: usize,
        cols_len: usize,
        direct: bool,
    },
    /// `x · weightᵀ + bias` for a single row. The weight is stored
    /// pre-transposed (`[in, out]`) so the hot path runs the
    /// column-lane SIMD kernel [`gemm::linear_nt_into`], which is
    /// bit-identical to `matmul_nt_into` against the `[out, in]`
    /// original.
    Linear {
        x: usize,
        out: usize,
        weight_t: Vec<f32>,
        bias: Vec<f32>,
        in_f: usize,
        out_f: usize,
    },
    Relu {
        x: usize,
        out: usize,
    },
    MaxPool {
        x: usize,
        out: usize,
        channels: usize,
        h: usize,
        w: usize,
        window: usize,
    },
    GlobalAvgPool {
        x: usize,
        out: usize,
        channels: usize,
        h: usize,
        w: usize,
    },
    /// Elementwise `out = x + y` (residual join).
    Add {
        x: usize,
        y: usize,
        out: usize,
    },
    /// Copies buffer `x` into `out[offset..offset + len]` (one concat
    /// segment; a channel concatenation lowers to one copy per input).
    CopySeg {
        x: usize,
        out: usize,
        offset: usize,
        len: usize,
    },
}

/// Records the ops and buffer sizes of a forward pass as the layer stack
/// is walked. Layers call the planner methods mirroring the [`Tape`]
/// (`crate::autograd::Tape`) API; the result is an [`InferencePlan`].
#[derive(Debug)]
pub struct InferencePlanner {
    slots: Vec<Slot>,
    buf_lens: Vec<usize>,
    buf_dims: Vec<Vec<usize>>,
    scratch_len: usize,
    ops: Vec<InferOp>,
    /// One route decision per planned conv, in op order.
    tuned: Vec<ConvRouteDecision>,
    /// Decisions already measured this compile, keyed by conv shape, so
    /// repeated layers (DenseNet blocks) are timed once.
    tune_cache: Vec<((Conv2dGeometry, usize), ConvRouteDecision)>,
}

/// Static spatial-extent crossover for the per-conv kernel choice when
/// tuning is off ([`TunePolicy::Off`]): outputs of at least this many
/// pixels run the fused direct kernel, smaller ones the im2col GEMM.
/// Measured once on the zoo (forward_bench) with the scalar GEMM; the
/// default [`TunePolicy::Measure`] re-measures per machine and per conv
/// shape instead, because the crossover moves with the SIMD level and
/// cache sizes (it is what mis-routed densenet-small at 64x64).
const DIRECT_CONV_MIN_PIXELS: usize = 4096;

impl InferencePlanner {
    /// Starts a plan whose input slot is a `[c, h, w]` image buffer.
    pub fn new(input: InputSpec) -> Self {
        let mut p = InferencePlanner {
            slots: Vec::new(),
            buf_lens: Vec::new(),
            buf_dims: Vec::new(),
            scratch_len: 0,
            ops: Vec::new(),
            tuned: Vec::new(),
            tune_cache: Vec::new(),
        };
        p.new_slot(vec![input.channels, input.height, input.width]);
        p
    }

    /// The slot the input image is copied into.
    pub fn input_slot(&self) -> SlotId {
        SlotId(0)
    }

    /// The logical shape of a slot.
    pub fn dims(&self, slot: SlotId) -> &[usize] {
        &self.slots[slot.0].dims
    }

    fn new_slot(&mut self, dims: Vec<usize>) -> SlotId {
        let len = dims.iter().product();
        self.buf_lens.push(len);
        self.buf_dims.push(dims.clone());
        self.slots.push(Slot {
            buf: self.buf_lens.len() - 1,
            dims,
        });
        SlotId(self.slots.len() - 1)
    }

    fn buf(&self, slot: SlotId) -> usize {
        self.slots[slot.0].buf
    }

    /// Plans a stride-1 convolution with square kernels; `weight` is the
    /// flattened kernel bank `[out_c, in_c·k·k]`, `bias` is `[out_c]`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not `[c, h, w]` with `c == in_channels` or the
    /// weight shape disagrees with the geometry.
    #[allow(clippy::too_many_arguments)] // mirrors the tape's conv2d signature
    pub fn conv2d(
        &mut self,
        x: SlotId,
        weight: &Tensor,
        bias: &Tensor,
        in_channels: usize,
        kernel: usize,
        padding: usize,
        stride: usize,
    ) -> SlotId {
        let dims = self.dims(x).to_vec();
        assert_eq!(dims.len(), 3, "conv2d input slot must be [c, h, w]");
        assert_eq!(dims[0], in_channels, "conv2d input channel mismatch");
        let geom = Conv2dGeometry {
            in_channels,
            in_h: dims[1],
            in_w: dims[2],
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        };
        let out_c = weight.shape().dim(0);
        assert_eq!(
            weight.shape().dim(1),
            in_channels * kernel * kernel,
            "conv2d weight columns disagree with geometry"
        );
        assert_eq!(bias.numel(), out_c, "conv2d bias must be [out_c]");
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let out = self.new_slot(vec![out_c, oh, ow]);
        let cols_len = in_channels * kernel * kernel * oh * ow;
        let k = in_channels * kernel * kernel;
        let packed = gemm::pack_a(weight.data(), out_c, k);
        // Route choice: measured per unique conv shape (cached within
        // this compile), or the static pixel-count heuristic when tuning
        // is off. Both routes are bit-identical, so this only moves time.
        let decision = match self
            .tune_cache
            .iter()
            .find(|((g, oc), _)| *g == geom && *oc == out_c)
        {
            Some((_, d)) => d.clone(),
            None => {
                let d = match tune::policy() {
                    TunePolicy::Off => ConvRouteDecision::unmeasured(
                        out_c,
                        k,
                        oh * ow,
                        oh * ow >= DIRECT_CONV_MIN_PIXELS,
                    ),
                    TunePolicy::Measure => {
                        tune::tune_conv_route(weight.data(), bias.data(), &packed, &geom, out_c)
                    }
                };
                self.tune_cache.push(((geom, out_c), d.clone()));
                d
            }
        };
        let direct = decision.direct;
        self.tuned.push(decision);
        if !direct {
            self.scratch_len = self.scratch_len.max(cols_len);
        }
        self.ops.push(InferOp::Conv2d {
            x: self.buf(x),
            out: self.buf(out),
            packed,
            weight: weight.data().to_vec(),
            bias: bias.data().to_vec(),
            geom,
            out_c,
            cols_len,
            direct,
        });
        out
    }

    /// Plans a fully connected layer; `weight` is `[out, in]`, `bias` `[out]`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a rank-1 feature vector matching `weight`.
    pub fn linear(&mut self, x: SlotId, weight: &Tensor, bias: &Tensor) -> SlotId {
        let dims = self.dims(x).to_vec();
        assert_eq!(dims.len(), 1, "linear input slot must be flat features");
        let (out_f, in_f) = (weight.shape().dim(0), weight.shape().dim(1));
        assert_eq!(dims[0], in_f, "linear input width disagrees with weight");
        assert_eq!(bias.numel(), out_f, "linear bias must be [out]");
        let out = self.new_slot(vec![out_f]);
        let w = weight.data();
        let mut weight_t = vec![0.0f32; in_f * out_f];
        for (j, wrow) in w.chunks_exact(in_f).enumerate() {
            for (kk, &v) in wrow.iter().enumerate() {
                weight_t[kk * out_f + j] = v;
            }
        }
        self.ops.push(InferOp::Linear {
            x: self.buf(x),
            out: self.buf(out),
            weight_t,
            bias: bias.data().to_vec(),
            in_f,
            out_f,
        });
        out
    }

    /// Plans an elementwise ReLU.
    pub fn relu(&mut self, x: SlotId) -> SlotId {
        let dims = self.dims(x).to_vec();
        let out = self.new_slot(dims);
        self.ops.push(InferOp::Relu {
            x: self.buf(x),
            out: self.buf(out),
        });
        out
    }

    /// Plans square max pooling with stride equal to the window.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not `[c, h, w]` or the window does not divide
    /// the spatial extents.
    pub fn max_pool2d(&mut self, x: SlotId, window: usize) -> SlotId {
        let dims = self.dims(x).to_vec();
        assert_eq!(dims.len(), 3, "max_pool2d input slot must be [c, h, w]");
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        assert!(
            h % window == 0 && w % window == 0,
            "pool window {window} does not divide spatial extent {h}x{w}"
        );
        let out = self.new_slot(vec![c, h / window, w / window]);
        self.ops.push(InferOp::MaxPool {
            x: self.buf(x),
            out: self.buf(out),
            channels: c,
            h,
            w,
            window,
        });
        out
    }

    /// Plans global average pooling `[c, h, w] → [c]`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not `[c, h, w]`.
    pub fn global_avg_pool(&mut self, x: SlotId) -> SlotId {
        let dims = self.dims(x).to_vec();
        assert_eq!(
            dims.len(),
            3,
            "global_avg_pool input slot must be [c, h, w]"
        );
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        let out = self.new_slot(vec![c]);
        self.ops.push(InferOp::GlobalAvgPool {
            x: self.buf(x),
            out: self.buf(out),
            channels: c,
            h,
            w,
        });
        out
    }

    /// Plans an elementwise sum of two same-shaped slots.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, x: SlotId, y: SlotId) -> SlotId {
        assert_eq!(self.dims(x), self.dims(y), "add slot shapes differ");
        let dims = self.dims(x).to_vec();
        let out = self.new_slot(dims);
        self.ops.push(InferOp::Add {
            x: self.buf(x),
            y: self.buf(y),
            out: self.buf(out),
        });
        out
    }

    /// Plans a channel concatenation of `[c_i, h, w]` slots.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or spatial extents disagree.
    pub fn concat_channels(&mut self, inputs: &[SlotId]) -> SlotId {
        assert!(
            !inputs.is_empty(),
            "concat_channels needs at least one input"
        );
        let first = self.dims(inputs[0]).to_vec();
        assert_eq!(first.len(), 3, "concat_channels expects [c, h, w] inputs");
        let (h, w) = (first[1], first[2]);
        let mut total_c = 0;
        for &s in inputs {
            let d = self.dims(s);
            assert_eq!(
                (d[1], d[2]),
                (h, w),
                "concat_channels inputs disagree on spatial dims"
            );
            total_c += d[0];
        }
        let out = self.new_slot(vec![total_c, h, w]);
        let out_buf = self.buf(out);
        let area = h * w;
        let mut offset = 0;
        for &s in inputs {
            let len = self.dims(s)[0] * area;
            self.ops.push(InferOp::CopySeg {
                x: self.buf(s),
                out: out_buf,
                offset,
                len,
            });
            offset += len;
        }
        out
    }

    /// Plans a flatten: the slot's buffer aliased under a rank-1 shape.
    pub fn flatten(&mut self, x: SlotId) -> SlotId {
        let numel: usize = self.dims(x).iter().product();
        let buf = self.buf(x);
        self.slots.push(Slot {
            buf,
            dims: vec![numel],
        });
        SlotId(self.slots.len() - 1)
    }
}

/// A compiled forward pass: straight-line kernel calls with snapshotted
/// weights and pre-computed buffer sizes. Build one with
/// [`InferencePlan::compile`]; it is immutable, `Send + Sync`, and shared
/// freely across threads, each running its own [`ForwardWorkspace`].
#[derive(Debug)]
pub struct InferencePlan {
    input: InputSpec,
    num_classes: usize,
    pub(crate) ops: Vec<InferOp>,
    pub(crate) buf_lens: Vec<usize>,
    /// Logical `[c, h, w]` (or flat `[n]`) dims of every buffer, used by
    /// the incremental engine's dirty-region bookkeeping.
    pub(crate) buf_dims: Vec<Vec<usize>>,
    /// im2col scratch floats needed by the largest non-direct conv.
    scratch_len: usize,
    pub(crate) output_buf: usize,
    /// Per-conv route decisions (op order), recorded by the tuner.
    tuned: Vec<ConvRouteDecision>,
}

impl InferencePlan {
    /// Compiles `net` into a flat plan, snapshotting its current weights.
    pub fn compile(net: &ConvNet) -> Self {
        let mut p = InferencePlanner::new(net.input_spec());
        let input = p.input_slot();
        let out = net.stack().plan(&mut p, input);
        assert_eq!(
            p.dims(out),
            &[net.num_classes()],
            "network output slot is not a [num_classes] logit vector"
        );
        InferencePlan {
            input: net.input_spec(),
            num_classes: net.num_classes(),
            output_buf: p.buf(out),
            ops: p.ops,
            buf_lens: p.buf_lens,
            buf_dims: p.buf_dims,
            scratch_len: p.scratch_len,
            tuned: p.tuned,
        }
    }

    /// Expected input geometry.
    pub fn input_spec(&self) -> InputSpec {
        self.input
    }

    /// The tuner's per-conv route decisions, in op order — one entry per
    /// planned convolution. Empty for conv-free plans (the MLP).
    pub fn tuner_report(&self) -> &[ConvRouteDecision] {
        &self.tuned
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Allocates a workspace holding every intermediate activation this
    /// plan needs. Reuse it across queries for allocation-free inference.
    pub fn workspace(&self) -> ForwardWorkspace {
        ForwardWorkspace {
            bufs: self.buf_lens.iter().map(|&l| vec![0.0; l]).collect(),
            scratch: vec![0.0; self.scratch_len],
            // Pre-grown to the blocked GEMM's fixed panel capacity so the
            // first query is as allocation-free as the rest.
            pack_buf: vec![
                0.0;
                if self.scratch_len > 0 {
                    gemm::KC * gemm::NC
                } else {
                    0
                }
            ],
        }
    }

    /// Runs the forward pass for one `[c, h, w]` image and writes the
    /// softmax score vector into `out` (cleared first). With a warmed
    /// workspace and an `out` of sufficient capacity this performs no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the image geometry disagrees with the input spec or the
    /// workspace was built from a different plan.
    pub fn scores_into(&self, ws: &mut ForwardWorkspace, image: &Tensor, out: &mut Vec<f32>) {
        let logits_buf = self.run(ws, image);
        let logits = &ws.bufs[logits_buf];
        // Mirror `autograd::softmax_rows` exactly: max-shift, exp, then a
        // second pass dividing by the sum.
        out.clear();
        let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for &v in logits {
            let e = (v - m).exp();
            sum += e;
            out.push(e);
        }
        for o in out.iter_mut() {
            *o /= sum;
        }
    }

    /// Runs the forward pass and returns the index of the logits buffer.
    pub(crate) fn run(&self, ws: &mut ForwardWorkspace, image: &Tensor) -> usize {
        assert_eq!(
            image.shape().dims(),
            &[self.input.channels, self.input.height, self.input.width],
            "image geometry disagrees with the plan's input spec"
        );
        assert_eq!(
            ws.bufs.len(),
            self.buf_lens.len(),
            "workspace does not belong to this plan"
        );
        let ForwardWorkspace {
            bufs,
            scratch,
            pack_buf,
        } = ws;
        bufs[0].copy_from_slice(image.data());
        for op in &self.ops {
            // Per-layer timing hook: the guard records call count and
            // elapsed nanoseconds on drop. With telemetry off both the
            // guard and this call compile to nothing.
            let _op_timing = oppsla_obs::op_timer(match op {
                InferOp::Conv2d { .. } => oppsla_obs::OpKind::Conv,
                InferOp::Linear { .. } => oppsla_obs::OpKind::Linear,
                InferOp::Relu { .. } => oppsla_obs::OpKind::Relu,
                InferOp::MaxPool { .. } => oppsla_obs::OpKind::MaxPool,
                InferOp::GlobalAvgPool { .. } => oppsla_obs::OpKind::Gap,
                InferOp::Add { .. } => oppsla_obs::OpKind::Add,
                InferOp::CopySeg { .. } => oppsla_obs::OpKind::CopySeg,
            });
            match op {
                InferOp::Conv2d {
                    x,
                    out,
                    packed,
                    weight,
                    bias,
                    geom,
                    out_c,
                    cols_len,
                    direct,
                } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    if *direct {
                        let full = Rect::full(geom.out_h(), geom.out_w());
                        ops::conv2d_region_into(xb, weight, bias, geom, *out_c, full, ob);
                    } else {
                        let cols = &mut scratch[..*cols_len];
                        ops::im2col_into(xb, geom, cols);
                        let area = geom.out_h() * geom.out_w();
                        // Blocked, panel-packed GEMM — bit-identical to
                        // the naive `matmul_into` it replaced (see
                        // `oppsla_tensor::gemm`).
                        gemm::matmul_packed_into(packed, cols, area, pack_buf, ob);
                        for oc in 0..*out_c {
                            let b = bias[oc];
                            for v in &mut ob[oc * area..(oc + 1) * area] {
                                *v += b;
                            }
                        }
                    }
                }
                InferOp::Linear {
                    x,
                    out,
                    weight_t,
                    bias,
                    in_f,
                    out_f,
                } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    gemm::linear_nt_into(xb, weight_t, *in_f, *out_f, ob);
                    for (o, &bv) in ob.iter_mut().zip(bias) {
                        *o += bv;
                    }
                }
                InferOp::Relu { x, out } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    for (o, &v) in ob.iter_mut().zip(xb) {
                        *o = v.max(0.0);
                    }
                }
                InferOp::MaxPool {
                    x,
                    out,
                    channels,
                    h,
                    w,
                    window,
                } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    ops::max_pool2d_into(xb, *channels, *h, *w, *window, ob, None);
                }
                InferOp::GlobalAvgPool {
                    x,
                    out,
                    channels,
                    h,
                    w,
                } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    ops::global_avg_pool_into(xb, *channels, *h, *w, ob);
                }
                InferOp::Add { x, y, out } => {
                    {
                        let (xb, ob) = buf_pair(bufs, *x, *out);
                        ob.copy_from_slice(xb);
                    }
                    let (yb, ob) = buf_pair(bufs, *y, *out);
                    for (o, &v) in ob.iter_mut().zip(yb) {
                        *o += v;
                    }
                }
                InferOp::CopySeg {
                    x,
                    out,
                    offset,
                    len,
                } => {
                    let (xb, ob) = buf_pair(bufs, *x, *out);
                    ob[*offset..*offset + *len].copy_from_slice(xb);
                }
            }
        }
        self.output_buf
    }
}

/// Splits simultaneous shared/exclusive borrows of two distinct buffers.
fn buf_pair(bufs: &mut [Vec<f32>], x: usize, out: usize) -> (&[f32], &mut [f32]) {
    assert_ne!(x, out, "an op cannot read and write the same buffer");
    if x < out {
        let (lo, hi) = bufs.split_at_mut(out);
        (&lo[x], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(x);
        (&hi[0], &mut lo[out])
    }
}

/// Pre-allocated storage for every intermediate activation of one
/// [`InferencePlan`]. One workspace serves one thread; clone-free reuse
/// across queries is the point. `scratch` holds the im2col buffer for the
/// largest GEMM-path conv — empty when every conv runs the fused direct
/// kernel (e.g. none, or all large feature maps).
#[derive(Debug)]
pub struct ForwardWorkspace {
    pub(crate) bufs: Vec<Vec<f32>>,
    scratch: Vec<f32>,
    /// B-panel packing scratch for the blocked GEMM (fixed `KC·NC`
    /// capacity; empty when every conv runs the direct kernel).
    pack_buf: Vec<f32>,
}

/// An [`InferencePlan`] bundled with a mutex-guarded workspace: a drop-in,
/// thread-safe query engine. Parallel callers that want zero contention
/// should instead share the [`plan`](InferenceEngine::plan) (and
/// [`delta_plan`](InferenceEngine::delta_plan)) and give each thread its
/// own workspace.
#[derive(Debug)]
pub struct InferenceEngine {
    plan: InferencePlan,
    delta: crate::delta::DeltaPlan,
    state: Mutex<EngineState>,
}

/// The engine's per-query mutable state: the forward workspace plus the
/// incremental path's cached base (populated on first pixel-delta query).
#[derive(Debug)]
struct EngineState {
    ws: ForwardWorkspace,
    cache: Option<EngineDeltaCache>,
}

#[derive(Debug)]
struct EngineDeltaCache {
    base_image: Tensor,
    base: crate::delta::BaseActivations,
    dws: crate::delta::DeltaWorkspace,
}

impl InferenceEngine {
    /// Compiles `net` and allocates one workspace.
    pub fn new(net: &ConvNet) -> Self {
        let plan = InferencePlan::compile(net);
        let delta = crate::delta::DeltaPlan::compile(&plan);
        let ws = plan.workspace();
        InferenceEngine {
            plan,
            delta,
            state: Mutex::new(EngineState { ws, cache: None }),
        }
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The incremental (dirty-region) counterpart of the plan, for callers
    /// managing their own per-thread delta workspaces.
    pub fn delta_plan(&self) -> &crate::delta::DeltaPlan {
        &self.delta
    }

    /// Softmax scores for one `[c, h, w]` image (allocates the result).
    pub fn scores(&self, image: &Tensor) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.plan.num_classes);
        self.scores_into(image, &mut out);
        out
    }

    /// Writes softmax scores into `out`, reusing the shared workspace.
    /// Allocation-free once warm.
    pub fn scores_into(&self, image: &Tensor, out: &mut Vec<f32>) {
        let mut state = self.state.lock().expect("inference workspace poisoned");
        self.plan.scores_into(&mut state.ws, image, out);
    }

    /// Writes softmax scores for `base` with the pixel at `(row, col)`
    /// replaced by `rgb`, serving repeated queries against the same base
    /// from cached activations via the incremental engine. Bit-identical
    /// to perturbing the image and calling
    /// [`scores_into`](InferenceEngine::scores_into). The base snapshot is
    /// (re)captured whenever `base` differs from the previous call's.
    pub fn scores_pixel_delta_into(
        &self,
        base: &Tensor,
        row: usize,
        col: usize,
        rgb: [f32; 3],
        out: &mut Vec<f32>,
    ) {
        let mut guard = self.state.lock().expect("inference workspace poisoned");
        let EngineState { ws, cache } = &mut *guard;
        match cache {
            Some(c) if c.base_image == *base => {
                oppsla_obs::count(oppsla_obs::Counter::DeltaCacheHit);
                oppsla_obs::trace::tag_cache(oppsla_obs::trace::CacheTag::Hit);
            }
            Some(c) => {
                oppsla_obs::count(oppsla_obs::Counter::DeltaCacheRebase);
                oppsla_obs::trace::tag_cache(oppsla_obs::trace::CacheTag::Rebase);
                c.base.recapture(&self.plan, ws, base);
                c.dws.reset_from(&c.base);
                c.base_image.data_mut().copy_from_slice(base.data());
            }
            None => {
                oppsla_obs::count(oppsla_obs::Counter::DeltaCacheCold);
                oppsla_obs::trace::tag_cache(oppsla_obs::trace::CacheTag::Cold);
                let acts = crate::delta::BaseActivations::capture(&self.plan, ws, base);
                let dws = self.delta.workspace(&acts);
                *cache = Some(EngineDeltaCache {
                    base_image: base.clone(),
                    base: acts,
                    dws,
                });
            }
        }
        let c = cache.as_mut().expect("delta cache populated above");
        self.delta
            .scores_pixel_delta_into(&self.plan, &c.base, &mut c.dws, row, col, rgb, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Arch;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_image(spec: InputSpec) -> Tensor {
        Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
            ((i as f32) * 0.137).sin().abs()
        })
    }

    #[test]
    fn every_family_matches_tape_scores_exactly() {
        for arch in [
            Arch::VggSmall,
            Arch::ResNetSmall,
            Arch::GoogLeNetSmall,
            Arch::DenseNetSmall,
            Arch::Mlp,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let net = ConvNet::build(arch, InputSpec::RGB32, 10, &mut rng);
            let engine = InferenceEngine::new(&net);
            let img = test_image(InputSpec::RGB32);
            assert_eq!(engine.scores(&img), net.scores(&img), "{arch} diverged");
        }
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = ConvNet::build(Arch::ResNetSmall, InputSpec::RGB32, 4, &mut rng);
        let plan = InferencePlan::compile(&net);
        let mut ws = plan.workspace();
        let img = test_image(InputSpec::RGB32);
        let mut a = Vec::new();
        let mut b = Vec::new();
        plan.scores_into(&mut ws, &img, &mut a);
        // A second query through the same (now dirty) workspace must not
        // see stale state.
        plan.scores_into(&mut ws, &img, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn plan_runs_at_64x64() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = ConvNet::build(Arch::DenseNetSmall, InputSpec::RGB64, 7, &mut rng);
        let engine = InferenceEngine::new(&net);
        let img = test_image(InputSpec::RGB64);
        assert_eq!(engine.scores(&img), net.scores(&img));
    }

    #[test]
    fn stale_weights_detected_by_recompile() {
        // The plan snapshots weights: after mutating a parameter the old
        // plan keeps the old scores and a recompile picks up the new ones.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 3, &mut rng);
        let before = InferencePlan::compile(&net);
        for p in net.params() {
            let mut v = p.value();
            for x in v.data_mut() {
                *x += 0.25;
            }
            p.set_value(v);
        }
        let after = InferencePlan::compile(&net);
        let img = test_image(InputSpec::RGB32);
        let (mut wa, mut wb) = (before.workspace(), after.workspace());
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        before.scores_into(&mut wa, &img, &mut sa);
        after.scores_into(&mut wb, &img, &mut sb);
        assert_ne!(sa, sb, "recompile did not pick up the new weights");
        assert_eq!(sb, net.scores(&img));
    }

    #[test]
    fn engine_pixel_delta_matches_full_scores_across_base_switches() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let net = ConvNet::build(Arch::GoogLeNetSmall, InputSpec::RGB32, 5, &mut rng);
        let engine = InferenceEngine::new(&net);
        let base_a = test_image(InputSpec::RGB32);
        let base_b = Tensor::from_fn([3, 32, 32], |i| ((i as f32) * 0.219).cos().abs());
        let mut got = Vec::new();
        // Interleave bases to exercise capture, recapture and cache hits.
        for (base, row, col) in [
            (&base_a, 0usize, 0usize),
            (&base_a, 31, 31),
            (&base_b, 16, 2),
            (&base_a, 16, 2),
        ] {
            let rgb = [1.0, 0.0, 0.5];
            engine.scores_pixel_delta_into(base, row, col, rgb, &mut got);
            let mut poked = base.clone();
            for (ch, v) in rgb.into_iter().enumerate() {
                *poked.at_mut(&[ch, row, col]) = v;
            }
            assert_eq!(got, engine.scores(&poked), "({row}, {col}) diverged");
        }
    }

    #[test]
    #[should_panic(expected = "geometry disagrees")]
    fn rejects_wrong_image_geometry() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
        let engine = InferenceEngine::new(&net);
        engine.scores(&Tensor::zeros([3, 16, 16]));
    }
}
