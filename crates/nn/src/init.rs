//! Weight initialization schemes.

use oppsla_tensor::{Shape, Tensor};
use rand::Rng;

/// Kaiming/He uniform initialization for a weight tensor whose rows each see
/// `fan_in` inputs: samples from `U(-√(6/fan_in), √(6/fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform(rng: &mut impl Rng, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0f32 / fan_in as f32).sqrt();
    let shape = shape.into();
    Tensor::from_fn(shape, |_| rng.gen_range(-bound..bound))
}

/// Uniform initialization in `[-bound, bound]` (used for biases).
pub fn uniform(rng: &mut impl Rng, shape: impl Into<Shape>, bound: f32) -> Tensor {
    if bound == 0.0 {
        return Tensor::zeros(shape);
    }
    Tensor::from_fn(shape.into(), |_| rng.gen_range(-bound..bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = kaiming_uniform(&mut rng, [16, 27], 27);
        let bound = (6.0f32 / 27.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not all identical (sanity).
        assert!(t.max() != t.min());
    }

    #[test]
    fn uniform_zero_bound_is_zeros() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = uniform(&mut rng, [4], 0.0);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = kaiming_uniform(&mut ChaCha8Rng::seed_from_u64(7), [3, 3], 3);
        let b = kaiming_uniform(&mut ChaCha8Rng::seed_from_u64(7), [3, 3], 3);
        assert_eq!(a.data(), b.data());
    }
}
