//! Composable network layers over the autograd [`Tape`].
//!
//! Layers own [`Param`] cells and know how to extend a tape; containers
//! ([`Sequential`], [`Residual`], [`ParallelConcat`]) give the branching
//! structure needed for the ResNet-, GoogLeNet- and DenseNet-style members
//! of the model zoo.

use crate::autograd::{Param, Tape, Var};
use crate::infer::{InferencePlanner, SlotId};
use crate::init;
use oppsla_tensor::ops::Conv2dGeometry;
use rand::Rng;
use std::fmt;

/// A network layer: extends a [`Tape`] with its computation and exposes its
/// trainable parameters.
///
/// The trait is object-safe so heterogeneous stacks can be boxed into a
/// [`Sequential`].
pub trait Layer: fmt::Debug {
    /// Appends this layer's computation to the tape.
    fn forward(&self, tape: &mut Tape, x: Var) -> Var;

    /// Appends this layer's computation to an inference plan, mirroring
    /// [`forward`](Layer::forward) bit-for-bit for a single image.
    ///
    /// Required (no default) so a new layer cannot silently fall out of
    /// the compiled inference path.
    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId;

    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Param>;
}

/// 2-D convolution with square kernels, symmetric padding and stride 1.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    stride: usize,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform weights.
    pub fn new(
        rng: &mut impl Rng,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_uniform(rng, [out_channels, fan_in], fan_in),
        );
        let bias = Param::new(
            format!("{name}.bias"),
            init::uniform(rng, [out_channels], 1.0 / (fan_in as f32).sqrt()),
        );
        Conv2d {
            weight,
            bias,
            in_channels,
            out_channels,
            kernel,
            padding,
            stride: 1,
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for Conv2d {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let s = tape.value(x).shape();
        assert_eq!(
            s.dim(1),
            self.in_channels,
            "conv {} expected {} input channels, got {}",
            self.weight.name(),
            self.in_channels,
            s.dim(1)
        );
        let geom = Conv2dGeometry {
            in_channels: self.in_channels,
            in_h: s.dim(2),
            in_w: s.dim(3),
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        };
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        tape.conv2d(x, w, b, geom)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.conv2d(
            x,
            &self.weight.value(),
            &self.bias.value(),
            self.in_channels,
            self.kernel,
            self.padding,
            self.stride,
        )
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Fully connected layer.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    pub fn new(rng: &mut impl Rng, name: &str, in_features: usize, out_features: usize) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_uniform(rng, [out_features, in_features], in_features),
            ),
            bias: Param::new(
                format!("{name}.bias"),
                init::uniform(rng, [out_features], 1.0 / (in_features as f32).sqrt()),
            ),
        }
    }
}

impl Layer for Linear {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        tape.linear(x, w, b)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.linear(x, &self.weight.value(), &self.bias.value())
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Elementwise ReLU activation.
#[derive(Debug, Default, Clone, Copy)]
pub struct Relu;

impl Layer for Relu {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        tape.relu(x)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.relu(x)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Square max pooling with stride equal to the window size.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool {
    window: usize,
}

impl MaxPool {
    /// Creates a pooling layer with the given square window.
    pub fn new(window: usize) -> Self {
        MaxPool { window }
    }
}

impl Layer for MaxPool {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        tape.max_pool2d(x, self.window)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.max_pool2d(x, self.window)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Global average pooling `[n,c,h,w] → [n,c]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        tape.global_avg_pool(x)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.global_avg_pool(x)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Flattens all non-batch dimensions.
#[derive(Debug, Default, Clone, Copy)]
pub struct Flatten;

impl Layer for Flatten {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        tape.flatten(x)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        p.flatten(x)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// An ordered stack of layers.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// The number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        self.layers
            .iter()
            .fold(x, |v, layer| layer.forward(tape, v))
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        self.layers.iter().fold(x, |s, layer| layer.plan(p, s))
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// A residual block: `relu(body(x) + shortcut(x))` where the shortcut is the
/// identity or a 1×1 projection when channel counts differ.
#[derive(Debug)]
pub struct Residual {
    body: Sequential,
    projection: Option<Conv2d>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(body: Sequential) -> Self {
        Residual {
            body,
            projection: None,
        }
    }

    /// Creates a residual block whose shortcut is a 1×1 projection.
    pub fn projected(body: Sequential, projection: Conv2d) -> Self {
        Residual {
            body,
            projection: Some(projection),
        }
    }
}

impl Layer for Residual {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let branch = self.body.forward(tape, x);
        let shortcut = match &self.projection {
            Some(p) => p.forward(tape, x),
            None => x,
        };
        let sum = tape.add(branch, shortcut);
        tape.relu(sum)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        let branch = self.body.plan(p, x);
        let shortcut = match &self.projection {
            Some(proj) => proj.plan(p, x),
            None => x,
        };
        let sum = p.add(branch, shortcut);
        p.relu(sum)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.body.params();
        if let Some(proj) = &self.projection {
            p.extend(proj.params());
        }
        p
    }
}

/// Runs branches in parallel on the same input and concatenates their
/// outputs along the channel axis (GoogLeNet-style inception blocks,
/// DenseNet-style growth).
#[derive(Debug)]
pub struct ParallelConcat {
    branches: Vec<Sequential>,
    /// When true, the input itself is concatenated alongside the branch
    /// outputs (DenseNet-style dense connectivity).
    include_input: bool,
}

impl ParallelConcat {
    /// Creates an inception-style block (branch outputs only).
    pub fn new(branches: Vec<Sequential>) -> Self {
        assert!(
            !branches.is_empty(),
            "ParallelConcat needs at least one branch"
        );
        ParallelConcat {
            branches,
            include_input: false,
        }
    }

    /// Creates a dense-connectivity block that also passes the input
    /// through to the concatenation.
    pub fn with_input(branches: Vec<Sequential>) -> Self {
        assert!(
            !branches.is_empty(),
            "ParallelConcat needs at least one branch"
        );
        ParallelConcat {
            branches,
            include_input: true,
        }
    }
}

impl Layer for ParallelConcat {
    fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let mut outs = Vec::with_capacity(self.branches.len() + 1);
        if self.include_input {
            outs.push(x);
        }
        for branch in &self.branches {
            outs.push(branch.forward(tape, x));
        }
        tape.concat_channels(&outs)
    }

    fn plan(&self, p: &mut InferencePlanner, x: SlotId) -> SlotId {
        let mut outs = Vec::with_capacity(self.branches.len() + 1);
        if self.include_input {
            outs.push(x);
        }
        for branch in &self.branches {
            outs.push(branch.plan(p, x));
        }
        p.concat_channels(&outs)
    }

    fn params(&self) -> Vec<Param> {
        self.branches.iter().flat_map(|b| b.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(layer: &dyn Layer, input: Tensor) -> Tensor {
        let mut tape = Tape::no_grad();
        let x = tape.input(input);
        let y = layer.forward(&mut tape, x);
        tape.value(y).clone()
    }

    #[test]
    fn conv_preserves_spatial_dims_with_same_padding() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conv = Conv2d::new(&mut rng, "c", 3, 8, 3, 1);
        let out = run(&conv, Tensor::zeros([2, 3, 8, 8]));
        assert_eq!(out.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn sequential_chains_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Sequential::new()
            .push(Conv2d::new(&mut rng, "c1", 3, 4, 3, 1))
            .push(Relu)
            .push(MaxPool::new(2))
            .push(Flatten)
            .push(Linear::new(&mut rng, "fc", 4 * 4 * 4, 10));
        let out = run(&net, Tensor::zeros([1, 3, 8, 8]));
        assert_eq!(out.shape().dims(), &[1, 10]);
        assert_eq!(net.params().len(), 4);
    }

    #[test]
    fn residual_identity_requires_matching_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let body = Sequential::new()
            .push(Conv2d::new(&mut rng, "b1", 4, 4, 3, 1))
            .push(Relu)
            .push(Conv2d::new(&mut rng, "b2", 4, 4, 3, 1));
        let block = Residual::identity(body);
        let out = run(&block, Tensor::zeros([1, 4, 6, 6]));
        assert_eq!(out.shape().dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn residual_projection_changes_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let body = Sequential::new().push(Conv2d::new(&mut rng, "b", 4, 8, 3, 1));
        let proj = Conv2d::new(&mut rng, "p", 4, 8, 1, 0);
        let block = Residual::projected(body, proj);
        let out = run(&block, Tensor::zeros([1, 4, 6, 6]));
        assert_eq!(out.shape().dims(), &[1, 8, 6, 6]);
    }

    #[test]
    fn parallel_concat_sums_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b1 = Sequential::new().push(Conv2d::new(&mut rng, "b1", 3, 4, 1, 0));
        let b2 = Sequential::new().push(Conv2d::new(&mut rng, "b2", 3, 6, 3, 1));
        let block = ParallelConcat::new(vec![b1, b2]);
        let out = run(&block, Tensor::zeros([1, 3, 5, 5]));
        assert_eq!(out.shape().dims(), &[1, 10, 5, 5]);
    }

    #[test]
    fn dense_concat_includes_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b = Sequential::new().push(Conv2d::new(&mut rng, "g", 3, 2, 3, 1));
        let block = ParallelConcat::with_input(vec![b]);
        let out = run(&block, Tensor::zeros([1, 3, 5, 5]));
        assert_eq!(out.shape().dims(), &[1, 5, 5, 5]);
    }

    #[test]
    fn relu_clamps_negative() {
        let out = run(&Relu, Tensor::from_vec([1, 2], vec![-3.0, 2.0]));
        assert_eq!(out.data(), &[0.0, 2.0]);
    }
}
