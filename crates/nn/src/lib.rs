//! Neural-network substrate for the OPPSLA reproduction.
//!
//! The paper attacks pre-trained PyTorch CNNs in a black-box setting. This
//! crate rebuilds that substrate from scratch on top of
//! [`oppsla_tensor`]: a define-by-run [`autograd`] tape, composable
//! [`layers`], first-order [`optim`]izers, a minibatch [`trainer`], a
//! small-model [`models`] zoo covering the paper's four architectural
//! families (VGG, ResNet, GoogLeNet, DenseNet — plus an MLP test double),
//! and weight [`serialize`] support for caching trained classifiers.
//!
//! # Examples
//!
//! Train a tiny classifier and query it like the attacks do:
//!
//! ```
//! use oppsla_nn::models::{Arch, ConvNet, InputSpec};
//! use oppsla_nn::trainer::{fit, TrainConfig};
//! use oppsla_tensor::Tensor;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
//! let images = vec![Tensor::full([3, 32, 32], 0.9), Tensor::full([3, 32, 32], 0.1)];
//! let labels = vec![0, 1];
//! let config = TrainConfig { epochs: 3, batch_size: 2, learning_rate: 1e-2, seed: 0 };
//! let report = fit(&net, &images, &labels, &config);
//! assert_eq!(report.epochs.len(), 3);
//! let scores = net.scores(&images[0]);
//! assert_eq!(scores.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod autograd;
pub mod batched;
pub mod delta;
pub mod infer;
pub mod init;
pub mod layers;
pub mod models;
pub mod optim;
pub mod serialize;
pub mod trainer;
pub mod tune;
