//! The model zoo: small CNN architectures standing in for the paper's
//! pre-trained classifiers.
//!
//! The paper attacks VGG-16-BN, ResNet18 and GoogLeNet on CIFAR-10 and
//! DenseNet121 / ResNet50 on ImageNet. We reproduce each architectural
//! *family* at laptop scale: plain convolutional stacks with fully
//! connected heads (VGG-style), residual blocks with projections
//! (ResNet-style), multi-branch concatenations (GoogLeNet-style) and dense
//! connectivity (DenseNet-style). The one-pixel attack is black-box, so
//! only the learned decision surface matters, not parameter counts.

use crate::autograd::{softmax_rows, Param, Tape, Var};
use crate::layers::{
    Conv2d, Flatten, Layer, Linear, MaxPool, ParallelConcat, Relu, Residual, Sequential,
};
use oppsla_tensor::Tensor;
use rand::Rng;
use std::fmt;

/// Architectural family of a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Arch {
    /// Plain convolutional stack with a fully connected head (VGG-style).
    VggSmall,
    /// Residual blocks with projection shortcuts (ResNet-style).
    ResNetSmall,
    /// Multi-branch inception blocks (GoogLeNet-style).
    GoogLeNetSmall,
    /// Densely connected growth blocks (DenseNet-style).
    DenseNetSmall,
    /// A multilayer perceptron, used as a cheap test double.
    Mlp,
}

impl Arch {
    /// All convolutional members of the zoo (excludes the MLP test double).
    pub const CNN_FAMILIES: [Arch; 4] = [
        Arch::VggSmall,
        Arch::ResNetSmall,
        Arch::GoogLeNetSmall,
        Arch::DenseNetSmall,
    ];

    /// A short stable identifier, used in weight-cache file names.
    pub fn id(self) -> &'static str {
        match self {
            Arch::VggSmall => "vgg-small",
            Arch::ResNetSmall => "resnet-small",
            Arch::GoogLeNetSmall => "googlenet-small",
            Arch::DenseNetSmall => "densenet-small",
            Arch::Mlp => "mlp",
        }
    }

    /// The paper classifier this family stands in for.
    pub fn paper_counterpart(self) -> &'static str {
        match self {
            Arch::VggSmall => "VGG-16-BN",
            Arch::ResNetSmall => "ResNet18/ResNet50",
            Arch::GoogLeNetSmall => "GoogLeNet",
            Arch::DenseNetSmall => "DenseNet121",
            Arch::Mlp => "(test double)",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Expected input geometry of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InputSpec {
    /// Channel count (always 3 in this reproduction).
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
}

impl InputSpec {
    /// 32×32 RGB, the CIFAR-10-scale input.
    pub const RGB32: InputSpec = InputSpec {
        channels: 3,
        height: 32,
        width: 32,
    };

    /// 64×64 RGB, the ImageNet-scale stand-in input.
    pub const RGB64: InputSpec = InputSpec {
        channels: 3,
        height: 64,
        width: 64,
    };

    /// Elements per image.
    pub fn numel(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// A classification network from the zoo: a layer stack plus metadata.
pub struct ConvNet {
    arch: Arch,
    input: InputSpec,
    num_classes: usize,
    stack: Sequential,
}

impl fmt::Debug for ConvNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConvNet")
            .field("arch", &self.arch)
            .field("input", &self.input)
            .field("num_classes", &self.num_classes)
            .field("num_params", &self.num_params())
            .finish()
    }
}

impl ConvNet {
    /// Builds a randomly initialized network of the given family.
    ///
    /// # Panics
    ///
    /// Panics if the input spec's spatial extents are not divisible by the
    /// architecture's pooling factor (all families pool by 4; `RGB32` and
    /// `RGB64` both qualify).
    pub fn build(arch: Arch, input: InputSpec, num_classes: usize, rng: &mut impl Rng) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        let stack = match arch {
            Arch::VggSmall => build_vgg(input, num_classes, rng),
            Arch::ResNetSmall => build_resnet(input, num_classes, rng),
            Arch::GoogLeNetSmall => build_googlenet(input, num_classes, rng),
            Arch::DenseNetSmall => build_densenet(input, num_classes, rng),
            Arch::Mlp => build_mlp(input, num_classes, rng),
        };
        ConvNet {
            arch,
            input,
            num_classes,
            stack,
        }
    }

    /// The architecture family.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Expected input geometry.
    pub fn input_spec(&self) -> InputSpec {
        self.input
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All trainable parameters in a stable order.
    pub fn params(&self) -> Vec<Param> {
        self.stack.params()
    }

    /// The layer stack, for compilation into an inference plan.
    pub(crate) fn stack(&self) -> &Sequential {
        &self.stack
    }

    /// Total scalar weight count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }

    /// Extends `tape` with the network body; `x` must be `[n, c, h, w]`.
    pub fn logits_on_tape(&self, tape: &mut Tape, x: Var) -> Var {
        self.stack.forward(tape, x)
    }

    /// Computes logits for a batch without recording gradients.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is not `[n, c, h, w]` matching the input spec.
    pub fn logits(&self, batch: &Tensor) -> Tensor {
        assert_eq!(batch.shape().rank(), 4, "logits expects an [n,c,h,w] batch");
        assert_eq!(
            (
                batch.shape().dim(1),
                batch.shape().dim(2),
                batch.shape().dim(3)
            ),
            (self.input.channels, self.input.height, self.input.width),
            "batch geometry disagrees with network input spec"
        );
        let mut tape = Tape::no_grad();
        let x = tape.input(batch.clone());
        let y = self.logits_on_tape(&mut tape, x);
        tape.value(y).clone()
    }

    /// Computes the softmax score vector for a single `[c, h, w]` image.
    ///
    /// # Panics
    ///
    /// Panics if the image geometry disagrees with the input spec.
    pub fn scores(&self, image: &Tensor) -> Vec<f32> {
        assert_eq!(image.shape().rank(), 3, "scores expects a [c,h,w] image");
        let batch = image.reshape([1, self.input.channels, self.input.height, self.input.width]);
        let logits = self.logits(&batch);
        softmax_rows(&logits).into_vec()
    }

    /// Predicted class indices for a batch.
    pub fn predict(&self, batch: &Tensor) -> Vec<usize> {
        let logits = self.logits(batch);
        let classes = self.num_classes;
        (0..logits.shape().dim(0))
            .map(|row| {
                let slice = &logits.data()[row * classes..(row + 1) * classes];
                argmax_slice(slice)
            })
            .collect()
    }
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if `slice` is empty.
pub fn argmax_slice(slice: &[f32]) -> usize {
    assert!(!slice.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in slice.iter().enumerate() {
        if v > slice[best] {
            best = i;
        }
    }
    best
}

fn conv_relu(rng: &mut impl Rng, name: &str, in_c: usize, out_c: usize) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(rng, name, in_c, out_c, 3, 1))
        .push(Relu)
}

fn build_vgg(input: InputSpec, classes: usize, rng: &mut impl Rng) -> Sequential {
    let (h, w) = (input.height / 4, input.width / 4);
    Sequential::new()
        .push(Conv2d::new(rng, "vgg.c1", input.channels, 12, 3, 1))
        .push(Relu)
        .push(Conv2d::new(rng, "vgg.c2", 12, 12, 3, 1))
        .push(Relu)
        .push(MaxPool::new(2))
        .push(Conv2d::new(rng, "vgg.c3", 12, 24, 3, 1))
        .push(Relu)
        .push(MaxPool::new(2))
        .push(Flatten)
        .push(Linear::new(rng, "vgg.fc1", 24 * h * w, 48))
        .push(Relu)
        .push(Linear::new(rng, "vgg.fc2", 48, classes))
}

fn head(
    rng: &mut impl Rng,
    name: &str,
    channels: usize,
    input: InputSpec,
    classes: usize,
) -> Sequential {
    // Pool once more, then flatten into a fully connected head. The real
    // architectures end in global average pooling, but at this reproduction's
    // scale (tens of channels instead of hundreds) GAP averages a single
    // pixel's influence away and makes one-pixel attacks vacuously hard; a
    // small FC head preserves the local sensitivity the paper's full-size
    // networks get from their depth (see DESIGN.md).
    let (h, w) = (input.height / 8, input.width / 8);
    Sequential::new()
        .push(MaxPool::new(2))
        .push(Flatten)
        .push(Linear::new(rng, name, channels * h * w, classes))
}

fn build_resnet(input: InputSpec, classes: usize, rng: &mut impl Rng) -> Sequential {
    let block1 = Residual::identity(
        Sequential::new()
            .push(Conv2d::new(rng, "res.b1.c1", 12, 12, 3, 1))
            .push(Relu)
            .push(Conv2d::new(rng, "res.b1.c2", 12, 12, 3, 1)),
    );
    let block2 = Residual::projected(
        Sequential::new()
            .push(Conv2d::new(rng, "res.b2.c1", 12, 24, 3, 1))
            .push(Relu)
            .push(Conv2d::new(rng, "res.b2.c2", 24, 24, 3, 1)),
        Conv2d::new(rng, "res.b2.proj", 12, 24, 1, 0),
    );
    Sequential::new()
        .push(Conv2d::new(rng, "res.stem", input.channels, 12, 3, 1))
        .push(Relu)
        .push(block1)
        .push(MaxPool::new(2))
        .push(block2)
        .push(MaxPool::new(2))
        .push(head(rng, "res.fc", 24, input, classes))
}

fn inception(rng: &mut impl Rng, name: &str, in_c: usize, per_branch: usize) -> ParallelConcat {
    let b1 = Sequential::new()
        .push(Conv2d::new(
            rng,
            &format!("{name}.b1x1"),
            in_c,
            per_branch,
            1,
            0,
        ))
        .push(Relu);
    let b3 = Sequential::new()
        .push(Conv2d::new(
            rng,
            &format!("{name}.b3r"),
            in_c,
            per_branch,
            1,
            0,
        ))
        .push(Relu)
        .push(Conv2d::new(
            rng,
            &format!("{name}.b3x3"),
            per_branch,
            per_branch,
            3,
            1,
        ))
        .push(Relu);
    let b5 = Sequential::new()
        .push(Conv2d::new(
            rng,
            &format!("{name}.b5r"),
            in_c,
            per_branch,
            1,
            0,
        ))
        .push(Relu)
        .push(Conv2d::new(
            rng,
            &format!("{name}.b5x5"),
            per_branch,
            per_branch,
            5,
            2,
        ))
        .push(Relu);
    ParallelConcat::new(vec![b1, b3, b5])
}

fn build_googlenet(input: InputSpec, classes: usize, rng: &mut impl Rng) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(rng, "goog.stem", input.channels, 12, 3, 1))
        .push(Relu)
        .push(MaxPool::new(2))
        .push(inception(rng, "goog.inc1", 12, 6)) // -> 18 channels
        .push(MaxPool::new(2))
        .push(inception(rng, "goog.inc2", 18, 8)) // -> 24 channels
        .push(head(rng, "goog.fc", 24, input, classes))
}

fn build_densenet(input: InputSpec, classes: usize, rng: &mut impl Rng) -> Sequential {
    // Two dense growth steps: channels 12 -> 12+8 -> 20+8.
    let growth = 8;
    let grow1 = ParallelConcat::with_input(vec![conv_relu(rng, "dense.g1", 12, growth)]);
    let grow2 = ParallelConcat::with_input(vec![conv_relu(rng, "dense.g2", 12 + growth, growth)]);
    Sequential::new()
        .push(Conv2d::new(rng, "dense.stem", input.channels, 12, 3, 1))
        .push(Relu)
        .push(MaxPool::new(2))
        .push(grow1)
        .push(MaxPool::new(2))
        .push(grow2)
        .push(head(rng, "dense.fc", 12 + 2 * growth, input, classes))
}

fn build_mlp(input: InputSpec, classes: usize, rng: &mut impl Rng) -> Sequential {
    Sequential::new()
        .push(Flatten)
        .push(Linear::new(rng, "mlp.fc1", input.numel(), 32))
        .push(Relu)
        .push(Linear::new(rng, "mlp.fc2", 32, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_arch(arch: Arch) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = ConvNet::build(arch, InputSpec::RGB32, 10, &mut rng);
        let batch = Tensor::zeros([2, 3, 32, 32]);
        let logits = net.logits(&batch);
        assert_eq!(logits.shape().dims(), &[2, 10], "{arch} logits shape");
        assert!(logits.is_finite(), "{arch} produced non-finite logits");
        assert!(net.num_params() > 0);
    }

    #[test]
    fn every_family_produces_logits() {
        for arch in [
            Arch::VggSmall,
            Arch::ResNetSmall,
            Arch::GoogLeNetSmall,
            Arch::DenseNetSmall,
            Arch::Mlp,
        ] {
            check_arch(arch);
        }
    }

    #[test]
    fn families_also_run_at_64x64() {
        for arch in [Arch::ResNetSmall, Arch::DenseNetSmall] {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let net = ConvNet::build(arch, InputSpec::RGB64, 20, &mut rng);
            let logits = net.logits(&Tensor::zeros([1, 3, 64, 64]));
            assert_eq!(logits.shape().dims(), &[1, 20]);
        }
    }

    #[test]
    fn scores_are_a_probability_vector() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 10, &mut rng);
        let img = Tensor::from_fn([3, 32, 32], |i| (i % 7) as f32 / 7.0);
        let scores = net.scores(&img);
        assert_eq!(scores.len(), 10);
        let sum: f32 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn predict_matches_argmax_of_logits() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 10, &mut rng);
        let batch = Tensor::from_fn([3, 3, 32, 32], |i| ((i as f32) * 0.01).sin().abs());
        let preds = net.predict(&batch);
        let logits = net.logits(&batch);
        for (row, &p) in preds.iter().enumerate() {
            assert_eq!(p, argmax_slice(&logits.data()[row * 10..(row + 1) * 10]));
        }
    }

    #[test]
    fn build_is_deterministic_under_seed() {
        let a = ConvNet::build(
            Arch::VggSmall,
            InputSpec::RGB32,
            10,
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let b = ConvNet::build(
            Arch::VggSmall,
            InputSpec::RGB32,
            10,
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let img = Tensor::from_fn([3, 32, 32], |i| (i % 11) as f32 / 11.0);
        assert_eq!(a.scores(&img), b.scores(&img));
    }

    #[test]
    fn argmax_slice_prefers_first_on_ties() {
        assert_eq!(argmax_slice(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        ConvNet::build(Arch::Mlp, InputSpec::RGB32, 1, &mut rng);
    }
}
