//! First-order optimizers over shared [`Param`] cells.

use crate::autograd::Param;
use oppsla_tensor::Tensor;

/// An optimizer that updates a fixed set of parameters from their
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step and leaves gradients untouched (call
    /// [`Optimizer::zero_grad`] before the next accumulation).
    fn step(&mut self);

    /// Clears all parameter gradients.
    fn zero_grad(&self);
}

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
///
/// # Examples
///
/// ```
/// use oppsla_nn::autograd::{Param, Tape};
/// use oppsla_nn::optim::{Optimizer, Sgd};
/// use oppsla_tensor::Tensor;
///
/// let w = Param::new("w", Tensor::from_vec([2, 1], vec![0.1, -0.1]));
/// let b = Param::new("b", Tensor::zeros([2]));
/// let mut opt = Sgd::new(vec![w.clone(), b.clone()], 0.5, 0.0, 0.0);
/// opt.zero_grad();
/// let mut tape = Tape::new();
/// let x = tape.input(Tensor::from_vec([1, 1], vec![2.0]));
/// let (wv, bv) = (tape.param(&w), tape.param(&b));
/// let y = tape.linear(x, wv, bv);
/// let loss = tape.softmax_cross_entropy(y, &[0]);
/// tape.backward(loss);
/// opt.step(); // weights moved against the gradient
/// ```
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    velocity: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is not in `[0, 1)`.
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        Sgd {
            params,
            velocity,
            lr,
            momentum,
            weight_decay,
        }
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            p.apply_update(|value, grad| {
                let vd = v.data_mut();
                for ((vv, &g), w) in vd.iter_mut().zip(grad.data()).zip(value.data().iter()) {
                    *vv = momentum * *vv + g + wd * *w;
                }
                value.add_scaled_inplace(v, -lr);
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Adam with bias correction (Kingma & Ba 2015), the default trainer
/// optimizer — small CNNs on synthetic data converge in a handful of epochs.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁=0.9, β₂=0.999.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        Adam {
            params,
            m,
            v,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for ((p, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            p.apply_update(|value, grad| {
                let md = m.data_mut();
                let vd = v.data_mut();
                let wd = value.data_mut();
                for ((w, &g), (mm, vv)) in wd
                    .iter_mut()
                    .zip(grad.data())
                    .zip(md.iter_mut().zip(vd.iter_mut()))
                {
                    *mm = b1 * *mm + (1.0 - b1) * g;
                    *vv = b2 * *vv + (1.0 - b2) * g * g;
                    let mhat = *mm / bc1;
                    let vhat = *vv / bc2;
                    *w -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;

    /// Trains w so that sign(w·x) separates x=+1 (class 0) from x=-1
    /// (class 1) using the real tape; returns the learned separation.
    fn train_logistic(make: impl Fn(Vec<Param>) -> Box<dyn Optimizer>) -> f32 {
        let w = Param::new("w", Tensor::from_vec([2, 1], vec![0.1, -0.1]));
        let b = Param::new("b", Tensor::zeros([2]));
        let mut opt = make(vec![w.clone(), b.clone()]);
        for _ in 0..100 {
            opt.zero_grad();
            let mut tape = Tape::new();
            let x = tape.input(Tensor::from_vec([2, 1], vec![1.0, -1.0]));
            let wv = tape.param(&w);
            let bv = tape.param(&b);
            let y = tape.linear(x, wv, bv);
            let loss = tape.softmax_cross_entropy(y, &[0, 1]);
            tape.backward(loss);
            opt.step();
        }
        // class-0 weight minus class-1 weight measures separation strength
        let wd = w.value();
        wd.data()[0] - wd.data()[1]
    }

    #[test]
    fn sgd_descends_logistic_loss() {
        let p = train_logistic(|params| Box::new(Sgd::new(params, 0.5, 0.9, 0.0)));
        assert!(p > 2.0, "sgd failed to increase the separating weight: {p}");
    }

    #[test]
    fn adam_descends_logistic_loss() {
        let p = train_logistic(|params| Box::new(Adam::new(params, 0.05)));
        assert!(
            p > 1.0,
            "adam failed to increase the separating weight: {p}"
        );
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let plain = train_logistic(|params| Box::new(Sgd::new(params, 0.1, 0.0, 0.0)));
        let momentum = train_logistic(|params| Box::new(Sgd::new(params, 0.1, 0.9, 0.0)));
        assert!(
            momentum > plain,
            "momentum {momentum} not ahead of plain {plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let free = train_logistic(|params| Box::new(Sgd::new(params, 0.5, 0.0, 0.0)));
        let decayed = train_logistic(|params| Box::new(Sgd::new(params, 0.5, 0.0, 0.5)));
        assert!(
            decayed < free,
            "decay {decayed} not smaller than free {free}"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(vec![], 0.0, 0.0, 0.0);
    }

    #[test]
    fn zero_grad_clears_accumulated_gradients() {
        let w = Param::new("w", Tensor::from_vec([2, 1], vec![0.5, 0.5]));
        let b = Param::new("b", Tensor::zeros([2]));
        let opt = Sgd::new(vec![w.clone(), b.clone()], 0.1, 0.0, 0.0);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec([1, 1], vec![1.0]));
        let (wv, bv) = (tape.param(&w), tape.param(&b));
        let y = tape.linear(x, wv, bv);
        let loss = tape.softmax_cross_entropy(y, &[0]);
        tape.backward(loss);
        assert!(w.grad().data().iter().any(|&g| g != 0.0));
        opt.zero_grad();
        assert!(w.grad().data().iter().all(|&g| g == 0.0));
    }
}
