//! Saving and loading trained network weights.
//!
//! Weights are stored as JSON: human-inspectable, diff-friendly, and small
//! at zoo scale (tens of kB). The format records the architecture, input
//! spec and class count so loads are validated against the rebuilt network.

use crate::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// On-disk weight bundle.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct WeightFile {
    arch: Arch,
    input: InputSpec,
    num_classes: usize,
    /// `(name, tensor)` pairs in the network's stable parameter order.
    params: Vec<(String, Tensor)>,
}

/// Errors from weight persistence.
#[derive(Debug)]
pub enum WeightError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// The file's metadata or parameter list does not match the network.
    Mismatch(String),
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightError::Io(e) => write!(f, "weight file i/o failed: {e}"),
            WeightError::Parse(e) => write!(f, "weight file is malformed: {e}"),
            WeightError::Mismatch(why) => write!(f, "weight file does not match network: {why}"),
        }
    }
}

impl std::error::Error for WeightError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WeightError::Io(e) => Some(e),
            WeightError::Parse(e) => Some(e),
            WeightError::Mismatch(_) => None,
        }
    }
}

impl From<io::Error> for WeightError {
    fn from(e: io::Error) -> Self {
        WeightError::Io(e)
    }
}

impl From<serde_json::Error> for WeightError {
    fn from(e: serde_json::Error) -> Self {
        WeightError::Parse(e)
    }
}

/// Writes `net`'s weights to `path`, creating parent directories.
///
/// The write is atomic: the JSON goes to a process-unique temporary file
/// in the same directory, which is then renamed over `path`. A reader
/// (another server process warming the same model shard) therefore sees
/// either the complete old file or the complete new file — never the
/// truncated prefix a plain `fs::write` exposes mid-write.
///
/// # Errors
///
/// Returns [`WeightError::Io`] on filesystem failure.
pub fn save_weights(net: &ConvNet, path: &Path) -> Result<(), WeightError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let file = WeightFile {
        arch: net.arch(),
        input: net.input_spec(),
        num_classes: net.num_classes(),
        params: net.params().iter().map(|p| (p.name(), p.value())).collect(),
    };
    let json = serde_json::to_string(&file)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, json)?;
    if let Err(e) = fs::rename(&tmp, path) {
        // Don't leave the orphan behind on a failed rename (read-only
        // target, cross-device cache dir): best-effort cleanup, then
        // report the rename failure.
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Loads weights from `path` into `net`.
///
/// # Errors
///
/// Returns an error if the file is unreadable, malformed, or was saved from
/// a network with different architecture, input spec, class count, or
/// parameter names/shapes.
pub fn load_weights(net: &ConvNet, path: &Path) -> Result<(), WeightError> {
    let json = fs::read_to_string(path)?;
    let file: WeightFile = serde_json::from_str(&json)?;
    if file.arch != net.arch() {
        return Err(WeightError::Mismatch(format!(
            "architecture {} vs {}",
            file.arch,
            net.arch()
        )));
    }
    if file.input != net.input_spec() || file.num_classes != net.num_classes() {
        return Err(WeightError::Mismatch(
            "input spec or class count differs".into(),
        ));
    }
    let params = net.params();
    if params.len() != file.params.len() {
        return Err(WeightError::Mismatch(format!(
            "parameter count {} vs {}",
            file.params.len(),
            params.len()
        )));
    }
    for (p, (name, value)) in params.iter().zip(file.params.iter()) {
        if p.name() != *name {
            return Err(WeightError::Mismatch(format!(
                "parameter name {name} vs {}",
                p.name()
            )));
        }
        if p.value().shape() != value.shape() {
            return Err(WeightError::Mismatch(format!(
                "parameter {name} shape {} vs {}",
                value.shape(),
                p.value().shape()
            )));
        }
    }
    for (p, (_, value)) in params.iter().zip(file.params) {
        p.set_value(value);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oppsla-serialize-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_scores() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let path = tmpdir("roundtrip").join("mlp.json");
        save_weights(&net, &path).unwrap();

        let mut rng2 = ChaCha8Rng::seed_from_u64(999); // different init
        let net2 = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng2);
        let img = Tensor::from_fn([3, 32, 32], |i| (i % 13) as f32 / 13.0);
        assert_ne!(net.scores(&img), net2.scores(&img));
        load_weights(&net2, &path).unwrap();
        assert_eq!(net.scores(&img), net2.scores(&img));
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let dir = tmpdir("atomic");
        let path = dir.join("mlp.json");
        // Pre-existing good file: a concurrent reader racing this save
        // must see either the old bytes or the new bytes, so the save
        // must replace via rename, never truncate-then-write in place.
        fs::write(&path, b"{\"old\": true}").unwrap();
        save_weights(&net, &path).unwrap();
        load_weights(&net, &path).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn load_rejects_arch_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let path = tmpdir("archmismatch").join("mlp.json");
        save_weights(&net, &path).unwrap();
        let other = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 4, &mut rng);
        let err = load_weights(&other, &path).unwrap_err();
        assert!(matches!(err, WeightError::Mismatch(_)), "{err}");
    }

    #[test]
    fn load_rejects_class_count_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let path = tmpdir("classmismatch").join("mlp.json");
        save_weights(&net, &path).unwrap();
        let other = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 5, &mut rng);
        assert!(load_weights(&other, &path).is_err());
    }

    #[test]
    fn load_reports_missing_file_as_io() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let err = load_weights(&net, Path::new("/nonexistent/x.json")).unwrap_err();
        assert!(matches!(err, WeightError::Io(_)), "{err}");
    }

    #[test]
    fn load_rejects_malformed_json() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
        let path = tmpdir("badjson").join("garbage.json");
        fs::write(&path, "{not json").unwrap();
        let err = load_weights(&net, &path).unwrap_err();
        assert!(matches!(err, WeightError::Parse(_)), "{err}");
    }
}
