//! Minibatch training loop for zoo networks.

use crate::autograd::Tape;
use crate::models::ConvNet;
use crate::optim::{Adam, Optimizer};
use oppsla_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size (the last batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 0x0995A, // "OPPSLA"
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch's batches.
    pub mean_loss: f32,
    /// Training accuracy measured on the shuffled epoch stream.
    pub accuracy: f32,
}

/// Result of [`fit`]: one entry per epoch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Statistics per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// The final epoch's training accuracy (0.0 if no epochs ran).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.accuracy)
    }
}

/// Trains `net` in place on `(images, labels)` with Adam.
///
/// `images` are `[c, h, w]` tensors matching the network's input spec.
///
/// # Panics
///
/// Panics if the dataset is empty, lengths differ, a label is out of range,
/// or an image's geometry disagrees with the network.
pub fn fit(
    net: &ConvNet,
    images: &[Tensor],
    labels: &[usize],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!images.is_empty(), "training set is empty");
    assert_eq!(images.len(), labels.len(), "one label per image required");
    assert!(config.batch_size > 0, "batch size must be positive");
    let spec = net.input_spec();
    for (i, img) in images.iter().enumerate() {
        assert_eq!(
            img.shape().dims(),
            &[spec.channels, spec.height, spec.width],
            "image {i} geometry disagrees with the network input spec"
        );
    }
    for (i, &l) in labels.iter().enumerate() {
        assert!(
            l < net.num_classes(),
            "label {l} of sample {i} out of range ({} classes)",
            net.num_classes()
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut opt = Adam::new(net.params(), config.learning_rate);
    let mut order: Vec<usize> = (0..images.len()).collect();
    let mut report = TrainReport::default();

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        let mut correct = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let batch = stack(images, chunk, spec.channels, spec.height, spec.width);
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            opt.zero_grad();
            let mut tape = Tape::new();
            let x = tape.input(batch);
            let logits = net.logits_on_tape(&mut tape, x);
            let loss = tape.softmax_cross_entropy(logits, &batch_labels);
            loss_sum += tape.value(loss).item();
            batches += 1;
            correct += count_correct(tape.value(logits), &batch_labels);
            tape.backward(loss);
            opt.step();
        }
        report.epochs.push(EpochStats {
            mean_loss: loss_sum / batches as f32,
            accuracy: correct as f32 / images.len() as f32,
        });
    }
    report
}

/// Fraction of `images` the network labels as `labels`.
///
/// # Panics
///
/// Panics if the slices' lengths differ or the set is empty.
pub fn evaluate_accuracy(net: &ConvNet, images: &[Tensor], labels: &[usize]) -> f32 {
    assert!(!images.is_empty(), "evaluation set is empty");
    assert_eq!(images.len(), labels.len(), "one label per image required");
    let spec = net.input_spec();
    let mut correct = 0usize;
    // Chunked batches bound peak memory on large evaluation sets.
    const CHUNK: usize = 64;
    let indices: Vec<usize> = (0..images.len()).collect();
    for chunk in indices.chunks(CHUNK) {
        let batch = stack(images, chunk, spec.channels, spec.height, spec.width);
        let preds = net.predict(&batch);
        correct += preds
            .iter()
            .zip(chunk.iter())
            .filter(|(p, &i)| **p == labels[i])
            .count();
    }
    correct as f32 / images.len() as f32
}

fn stack(images: &[Tensor], indices: &[usize], c: usize, h: usize, w: usize) -> Tensor {
    let per = c * h * w;
    let mut data = Vec::with_capacity(indices.len() * per);
    for &i in indices {
        data.extend_from_slice(images[i].data());
    }
    Tensor::from_vec([indices.len(), c, h, w], data)
}

fn count_correct(logits: &Tensor, labels: &[usize]) -> usize {
    let classes = logits.shape().dim(1);
    labels
        .iter()
        .enumerate()
        .filter(|(row, &label)| {
            crate::models::argmax_slice(&logits.data()[row * classes..(row + 1) * classes]) == label
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Arch, ConvNet, InputSpec};
    use rand::Rng;

    /// Two trivially separable classes: bright vs dark images.
    fn toy_problem(n: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.8 } else { 0.2 };
            images.push(Tensor::from_fn([3, 32, 32], |_| {
                (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0)
            }));
            labels.push(class);
        }
        (images, labels)
    }

    #[test]
    fn mlp_learns_brightness_classes() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
        let (images, labels) = toy_problem(32);
        let report = fit(
            &net,
            &images,
            &labels,
            &TrainConfig {
                epochs: 25,
                batch_size: 8,
                learning_rate: 3e-3,
                seed: 1,
            },
        );
        assert_eq!(report.epochs.len(), 25);
        assert!(
            report.final_accuracy() > 0.8,
            "mlp failed to learn a separable problem: {report:?}"
        );
        assert!(evaluate_accuracy(&net, &images, &labels) > 0.9);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
        let (images, labels) = toy_problem(16);
        let report = fit(
            &net,
            &images,
            &labels,
            &TrainConfig {
                epochs: 10,
                batch_size: 8,
                learning_rate: 1e-3,
                seed: 2,
            },
        );
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn fit_rejects_empty_dataset() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
        fit(&net, &[], &[], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fit_rejects_bad_label() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng);
        let images = vec![Tensor::zeros([3, 32, 32])];
        fit(&net, &images, &[5], &TrainConfig::default());
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let build = || {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            ConvNet::build(Arch::Mlp, InputSpec::RGB32, 2, &mut rng)
        };
        let (images, labels) = toy_problem(8);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            learning_rate: 1e-2,
            seed: 3,
        };
        let (a, b) = (build(), build());
        let ra = fit(&a, &images, &labels, &cfg);
        let rb = fit(&b, &images, &labels, &cfg);
        assert_eq!(ra, rb);
        let probe = Tensor::from_fn([3, 32, 32], |i| (i % 5) as f32 / 5.0);
        assert_eq!(a.scores(&probe), b.scores(&probe));
    }
}
