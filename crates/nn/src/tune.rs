//! Arch-adaptive kernel-route tuning for compiled plans.
//!
//! The inference planner has two bit-identical routes for every
//! convolution — the fused direct kernel
//! ([`oppsla_tensor::ops::conv2d_region_into`]) and the im2col + packed
//! GEMM pipeline — and the batched delta engine additionally chooses per
//! group between a per-candidate direct kernel and one shared GEMM. Which
//! route is faster depends on the layer shape, the cache hierarchy, and
//! the SIMD level the GEMM dispatches to, so a hand-coded threshold tuned
//! on one machine (the old `DIRECT_CONV_MIN_PIXELS` / `MIN_GEMM_COLS`
//! constants) silently mis-routes on another — the committed
//! densenet-small `engine_speedup` 0.968 regression was exactly that.
//!
//! This module measures instead: at plan-compile time each unique
//! `(geometry, out_c)` conv shape runs both routes on a deterministic
//! synthetic input (best-of-trials wall time) and the plan caches the
//! winner. Because the routes are bit-identical, tuning can never change
//! a score — only wall-clock time — so attack stdout stays byte-identical
//! whatever the tuner decides. `OPPSLA_TUNE=off` (or
//! [`set_policy`]`(TunePolicy::Off)`, the `--tune off` CLI flag) pins the
//! static thresholds instead, making plan construction itself
//! deterministic for A/B timing comparisons.
//!
//! Decisions are recorded in the plan ([`crate::infer::InferencePlan::
//! tuner_report`], [`crate::delta::DeltaPlan::tuner_report`]) so bench
//! reports can attribute regressions to dispatch vs kernel.

use oppsla_tensor::gemm::{self, PackedA};
use oppsla_tensor::ops::{self, Conv2dGeometry, Rect};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// How plan compilation picks conv kernel routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunePolicy {
    /// Measure both routes per unique conv shape and take the faster
    /// (the default).
    Measure,
    /// Pin the static hand-tuned thresholds; no timing at compile.
    Off,
}

/// `0` = unresolved, otherwise `TunePolicy` discriminant + 1.
static POLICY: AtomicU8 = AtomicU8::new(0);

/// Resolves `OPPSLA_TUNE`: `off` or `0` (case-insensitive) pin the
/// static thresholds; unset, empty, `on`, `1` and `measure` keep the
/// measuring default. Any other value also keeps the default but returns
/// a warning — in a daemon a typo like `OPPSLA_TUNE=of` should be
/// visible once on stderr, not silently interpreted as "measure". Split
/// out so the parse table is unit-testable without mutating the process
/// environment.
pub(crate) fn off_env(value: Option<&str>) -> (bool, Option<String>) {
    match value {
        None => (false, None),
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "0" => (true, None),
            "" | "on" | "1" | "measure" => (false, None),
            other => (
                false,
                Some(format!(
                    "OPPSLA_TUNE={other:?} is not a recognized policy \
                     (use off or measure); keeping the measuring default"
                )),
            ),
        },
    }
}

/// The active tuning policy: [`TunePolicy::Measure`] unless
/// `OPPSLA_TUNE=off` or [`set_policy`] said otherwise. An unrecognized
/// `OPPSLA_TUNE` value warns once on stderr and keeps the default.
pub fn policy() -> TunePolicy {
    match POLICY.load(Ordering::Relaxed) {
        0 => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            let (off, warning) = off_env(std::env::var("OPPSLA_TUNE").ok().as_deref());
            if let Some(msg) = &warning {
                WARNED.call_once(|| eprintln!("warning: {msg}"));
            }
            let p = if off {
                TunePolicy::Off
            } else {
                TunePolicy::Measure
            };
            POLICY.store(code(p), Ordering::Relaxed);
            p
        }
        1 => TunePolicy::Measure,
        _ => TunePolicy::Off,
    }
}

/// Overrides the tuning policy for subsequently compiled plans. Safe at
/// any time: routes are bit-identical, so already-compiled plans remain
/// correct whichever policy chose their routes.
pub fn set_policy(p: TunePolicy) {
    POLICY.store(code(p), Ordering::Relaxed);
}

fn code(p: TunePolicy) -> u8 {
    match p {
        TunePolicy::Measure => 1,
        TunePolicy::Off => 2,
    }
}

/// The tuner's verdict for one full-forward convolution: which route the
/// plan runs and the timings (zero when the static policy decided).
#[derive(Debug, Clone)]
pub struct ConvRouteDecision {
    /// Output channels of the conv.
    pub out_c: usize,
    /// Reduction depth `in_c · kh · kw`.
    pub k: usize,
    /// Output pixels `oh · ow` (the GEMM's column count).
    pub out_pixels: usize,
    /// `true` → fused direct kernel, `false` → im2col + packed GEMM.
    pub direct: bool,
    /// Whether the routes were timed (`false` under [`TunePolicy::Off`]).
    pub measured: bool,
    /// Best-of-trials nanoseconds for the direct route (0 if unmeasured).
    pub direct_ns: u64,
    /// Best-of-trials nanoseconds for the GEMM route (0 if unmeasured).
    pub gemm_ns: u64,
}

impl ConvRouteDecision {
    /// A static (unmeasured) decision under [`TunePolicy::Off`].
    pub(crate) fn unmeasured(out_c: usize, k: usize, out_pixels: usize, direct: bool) -> Self {
        ConvRouteDecision {
            out_c,
            k,
            out_pixels,
            direct,
            measured: false,
            direct_ns: 0,
            gemm_ns: 0,
        }
    }

    /// Short route name for bench reports.
    pub fn route(&self) -> &'static str {
        if self.direct {
            "direct"
        } else {
            "gemm"
        }
    }
}

/// The tuner's verdict for one convolution on the batched delta path.
///
/// The two routes cross over in *both* directions depending on the
/// kernel shape: tiny dirty rects have sub-register spans (the direct
/// kernel degrades to its latency-bound scalar core, so the GEMM's
/// fixed costs can still win), while wide interior rects let the direct
/// kernel run full-width SIMD with no im2col gather at all (so it beats
/// the GEMM that wins small rects). A single "GEMM above N columns"
/// threshold cannot express the second regime, so the decision stores
/// the measured winner at each probe size and [`Self::use_direct`]
/// consults whichever probe is nearer the group's rect size.
#[derive(Debug, Clone)]
pub struct BatchRouteDecision {
    /// Output channels of the conv.
    pub out_c: usize,
    /// Reduction depth `in_c · kh · kw`.
    pub k: usize,
    /// Output pixels of the full conv (upper bound on a group's columns).
    pub out_pixels: usize,
    /// Direct won the ~[`SMALL_PROBE_COLS`]-column probe.
    pub direct_small: bool,
    /// Direct won the ~[`LARGE_PROBE_COLS`]-column probe.
    pub direct_large: bool,
    /// Rect-width watershed between the regimes: groups whose mean rect
    /// width is at most this consult the small-probe winner. The
    /// geometric mean of the two probe rects' widths, so each group
    /// follows the probe nearer (ratio-wise) its own span — span is the
    /// regime key because it sets the vector width the direct kernel
    /// can run at, which dominates its per-column cost.
    pub span_cut: usize,
    /// Whether the probes were timed (`false` under [`TunePolicy::Off`]).
    pub measured: bool,
    /// Direct-route nanoseconds at the ~[`SMALL_PROBE_COLS`]-column probe.
    pub small_direct_ns: u64,
    /// GEMM-route nanoseconds at the small probe.
    pub small_gemm_ns: u64,
    /// Direct-route nanoseconds at the ~[`LARGE_PROBE_COLS`]-column probe.
    pub large_direct_ns: u64,
    /// GEMM-route nanoseconds at the large probe.
    pub large_gemm_ns: u64,
}

impl BatchRouteDecision {
    /// A static (unmeasured) decision under [`TunePolicy::Off`]: the old
    /// hand-tuned behavior — direct below the static size threshold,
    /// GEMM above it.
    pub(crate) fn unmeasured(out_c: usize, k: usize, out_pixels: usize) -> Self {
        BatchRouteDecision {
            out_c,
            k,
            out_pixels,
            direct_small: true,
            direct_large: false,
            span_cut: 5,
            measured: false,
            small_direct_ns: 0,
            small_gemm_ns: 0,
            large_direct_ns: 0,
            large_gemm_ns: 0,
        }
    }

    /// Whether a group whose mean per-candidate rectangle is
    /// `mean_span` cells wide should run the per-candidate direct
    /// kernel (`true`) or the shared im2col + GEMM (`false`): the
    /// winner measured at the probe with the nearer span extrapolates,
    /// because per-column cost tracks span (the direct kernel's vector
    /// width), not area.
    pub fn use_direct(&self, mean_span: usize) -> bool {
        if mean_span <= self.span_cut {
            self.direct_small
        } else {
            self.direct_large
        }
    }

    /// Short route label for bench reports: `direct` / `gemm` when one
    /// route owns both regimes, `d-small` / `d-large` when they split.
    pub fn route(&self) -> String {
        match (self.direct_small, self.direct_large) {
            (true, true) => "direct",
            (false, false) => "gemm",
            (true, false) => "d-small",
            (false, true) => "d-large",
        }
        .to_owned()
    }
}

/// Per-candidate column count of the small delta probe (a near-minimal
/// dirty rect).
const SMALL_PROBE_COLS: usize = 8;
/// Per-candidate column count of the large delta probe (a deep-layer
/// dirty rect).
const LARGE_PROBE_COLS: usize = 256;
/// Candidates per probe group — the batched path concatenates a group's
/// columns into one GEMM, which amortizes its fixed and packing costs
/// across candidates (the direct route gets no such amortization), so a
/// single-candidate probe would systematically overstate the GEMM's
/// per-column cost. Matches the typical attack batch width.
const PROBE_GROUP: usize = 8;
/// Timed repetitions per route; the minimum is taken. A warmup run
/// precedes timing so neither route pays first-touch page faults.
const TRIALS: usize = 2;

/// Deterministic synthetic activations for tuner probes — fixed LCG, so
/// every compile measures the same arithmetic (values only affect timing
/// through denormals, which the range here avoids).
fn probe_input(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Best-of-[`TRIALS`] wall time of `f`, after one untimed warmup.
fn best_ns<F: FnMut()>(mut f: F) -> u64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..TRIALS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Times the direct kernel against the im2col + packed GEMM for one full
/// conv and returns the faster route. Both routes compute the identical
/// output, so only wall time is at stake.
pub(crate) fn tune_conv_route(
    weight: &[f32],
    bias: &[f32],
    packed: &PackedA,
    geom: &Conv2dGeometry,
    out_c: usize,
) -> ConvRouteDecision {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let area = oh * ow;
    let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
    let input = probe_input(geom.in_channels * geom.in_h * geom.in_w, 0x7e57);
    let mut out = vec![0.0f32; out_c * area];

    let full = Rect::full(oh, ow);
    let direct_ns = best_ns(|| {
        ops::conv2d_region_into(&input, weight, bias, geom, out_c, full, &mut out);
    });

    let mut cols = vec![0.0f32; k * area];
    let mut pack_buf = Vec::new();
    let gemm_ns = best_ns(|| {
        ops::im2col_into(&input, geom, &mut cols);
        gemm::matmul_packed_into(packed, &cols, area, &mut pack_buf, &mut out);
        for oc in 0..out_c {
            let b = bias[oc];
            for v in &mut out[oc * area..(oc + 1) * area] {
                *v += b;
            }
        }
    });

    ConvRouteDecision {
        out_c,
        k,
        out_pixels: area,
        direct: direct_ns <= gemm_ns,
        measured: true,
        direct_ns,
        gemm_ns,
    }
}

/// A probe rectangle of roughly `cols` output cells, clamped to the
/// conv's output extent and centered in it. Centering matters: a pixel
/// delta's dirty rectangle grows around an interior pixel, so the
/// typical rect is interior-dominated — an origin-anchored probe would
/// charge the direct route for edge clamping it rarely pays in practice.
fn probe_rect(oh: usize, ow: usize, cols: usize) -> Rect {
    let side = (cols as f64).sqrt().round() as usize;
    let sh = side.clamp(1, oh);
    let sw = side.clamp(1, ow);
    let y0 = (oh - sh) / 2;
    let x0 = (ow - sw) / 2;
    Rect {
        y0,
        y1: y0 + sh,
        x0,
        x1: x0 + sw,
    }
}

/// Probes the batched delta conv's two routes (per-candidate direct
/// kernel vs shared im2col + GEMM + scatter) at a small and a large dirty
/// rectangle and records the winner of each, so
/// [`BatchRouteDecision::use_direct`] can route every group by the probe
/// nearer its own rect size.
pub(crate) fn tune_batch_route(
    weight: &[f32],
    bias: &[f32],
    packed: &PackedA,
    geom: &Conv2dGeometry,
    out_c: usize,
) -> BatchRouteDecision {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
    // One input buffer per group member: the real batched path reads a
    // distinct workspace per candidate, so a single shared (and thus
    // cache-resident) buffer would flatter whichever route re-reads its
    // input more — the direct kernel touches every cell `kh·kw` times.
    let inputs: Vec<Vec<f32>> = (0..PROBE_GROUP)
        .map(|i| probe_input(geom.in_channels * geom.in_h * geom.in_w, 0x50b3 + i as u32))
        .collect();
    let mut out = vec![0.0f32; out_c * oh * ow];
    let mut cols = Vec::new();
    let mut gemm_out = Vec::new();
    let mut pack_buf = Vec::new();

    // Both routes run a whole [`PROBE_GROUP`]-candidate group per trial:
    // the direct kernel once per candidate, the GEMM once over the
    // group's concatenated columns — exactly the shapes
    // `run_conv_batch` hands each route.
    let mut probe = |target: usize| -> (u64, u64) {
        let rect = probe_rect(oh, ow, target);
        let n = (rect.y1 - rect.y0) * (rect.x1 - rect.x0);
        let total = n * PROBE_GROUP;
        let direct_ns = best_ns(|| {
            for input in &inputs {
                ops::conv2d_region_into(input, weight, bias, geom, out_c, rect, &mut out);
            }
        });
        cols.resize(k * total, 0.0);
        gemm_out.resize(out_c * total, 0.0);
        let rw = rect.x1 - rect.x0;
        let gemm_ns = best_ns(|| {
            for (cand, input) in inputs.iter().enumerate() {
                ops::im2col_region_into(input, geom, rect, cand * n, total, &mut cols);
            }
            gemm::matmul_packed_into(packed, &cols, total, &mut pack_buf, &mut gemm_out);
            // Scatter + bias, mirroring the batched path's write-back.
            for cand in 0..PROBE_GROUP {
                for oc in 0..out_c {
                    let g = &gemm_out[oc * total + cand * n..oc * total + (cand + 1) * n];
                    let b = bias[oc];
                    let mut src = 0;
                    for oy in rect.y0..rect.y1 {
                        let obase = (oc * oh + oy) * ow;
                        for (o, &v) in out[obase + rect.x0..obase + rect.x1]
                            .iter_mut()
                            .zip(&g[src..src + rw])
                        {
                            *o = v + b;
                        }
                        src += rw;
                    }
                }
            }
        });
        (direct_ns, gemm_ns)
    };

    let (small_direct_ns, small_gemm_ns) = probe(SMALL_PROBE_COLS);
    let (large_direct_ns, large_gemm_ns) = probe(LARGE_PROBE_COLS);
    let small_span = {
        let r = probe_rect(oh, ow, SMALL_PROBE_COLS);
        r.x1 - r.x0
    };
    let large_span = {
        let r = probe_rect(oh, ow, LARGE_PROBE_COLS);
        r.x1 - r.x0
    };

    BatchRouteDecision {
        out_c,
        k,
        out_pixels: oh * ow,
        direct_small: small_direct_ns < small_gemm_ns,
        direct_large: large_direct_ns < large_gemm_ns,
        span_cut: ((small_span * large_span) as f64).sqrt().round() as usize,
        measured: true,
        small_direct_ns,
        small_gemm_ns,
        large_direct_ns,
        large_gemm_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_env_policy() {
        // Recognized spellings parse cleanly (no warning).
        for (value, want_off) in [
            (None, false),
            (Some(""), false),
            (Some("1"), false),
            (Some("on"), false),
            (Some("measure"), false),
            (Some("off"), true),
            (Some("OFF"), true),
            (Some("0"), true),
        ] {
            let (off, warning) = off_env(value);
            assert_eq!(off, want_off, "{value:?}");
            assert!(warning.is_none(), "{value:?} must not warn: {warning:?}");
        }
        // Unrecognized values keep the measuring default, with a warning.
        for value in ["of", "disable", "2"] {
            let (off, warning) = off_env(Some(value));
            assert!(!off, "{value:?} keeps the default");
            assert!(warning.is_some(), "{value:?} must warn");
        }
    }

    #[test]
    fn probe_rects_clamp_to_the_output() {
        let r = probe_rect(2, 3, 256);
        assert_eq!((r.y0, r.y1, r.x0, r.x1), (0, 2, 0, 3));
        let r = probe_rect(32, 32, 8);
        assert!((r.y1 - r.y0) * (r.x1 - r.x0) >= 4);
    }

    #[test]
    fn probe_rects_are_centered() {
        // 16x16 probe in a 30x30 output sits 7 cells from every edge —
        // interior-dominated, like a real deep-layer dirty rect.
        let r = probe_rect(30, 30, 256);
        assert_eq!((r.y0, r.y1, r.x0, r.x1), (7, 23, 7, 23));
    }
}
