//! Proves the compiled inference path performs zero heap allocations in
//! steady state.
//!
//! A counting wrapper around the system allocator is armed around a batch
//! of warm queries; any allocation (or reallocation) while armed fails the
//! test. This file deliberately holds a single test: the counter is
//! process-global and concurrent tests would pollute it.

use oppsla_nn::delta::{BaseActivations, DeltaPlan};
use oppsla_nn::infer::InferencePlan;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_queries_do_not_allocate() {
    // A convolutional family exercises every op kind on the hot path
    // (conv + im2col scratch, pooling, flatten aliasing, linear head).
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let net = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 10, &mut rng);
    let plan = InferencePlan::compile(&net);
    let mut ws = plan.workspace();
    let image = Tensor::from_fn([3, 32, 32], |i| ((i as f32) * 0.311).sin().abs());
    let mut scores = Vec::with_capacity(plan.num_classes());

    // Warm up: first calls may size `scores`' spare capacity.
    for _ in 0..2 {
        plan.scores_into(&mut ws, &image, &mut scores);
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..100 {
        plan.scores_into(&mut ws, &image, &mut scores);
    }
    ARMED.store(false, Ordering::SeqCst);

    let count = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "inference hot path allocated {count} times over 100 queries"
    );
    assert_eq!(scores.len(), 10);

    // The incremental pixel-delta path must be allocation-free in steady
    // state too: candidate queries against a cached base dominate the
    // attack's runtime.
    let delta = DeltaPlan::compile(&plan);
    let acts = BaseActivations::capture(&plan, &mut ws, &image);
    let mut dws = delta.workspace(&acts);
    for i in 0..2 {
        delta.scores_pixel_delta_into(
            &plan,
            &acts,
            &mut dws,
            i,
            31 - i,
            [1.0, 0.0, 0.5],
            &mut scores,
        );
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for i in 0..100 {
        let (row, col) = (i % 32, (i * 7) % 32);
        delta.scores_pixel_delta_into(
            &plan,
            &acts,
            &mut dws,
            row,
            col,
            [0.9, 0.1, 0.4],
            &mut scores,
        );
    }
    ARMED.store(false, Ordering::SeqCst);

    let count = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "pixel-delta hot path allocated {count} times over 100 queries"
    );
    assert_eq!(scores.len(), 10);
}
