//! The batched paths' determinism contract: the layer-major batched full
//! forward and the batched pixel-delta pass produce **bit-identical**
//! scores to their sequential counterparts, per image / per candidate,
//! across every architecture family (exercising the GEMM conv path, the
//! direct conv path at 64x64, residual adds, concats, and the MLP's flat
//! fallback).

use oppsla_nn::delta::{BaseActivations, DeltaBatchScratch};
use oppsla_nn::infer::InferencePlan;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ARCHS: [Arch; 5] = [
    Arch::VggSmall,
    Arch::ResNetSmall,
    Arch::GoogLeNetSmall,
    Arch::DenseNetSmall,
    Arch::Mlp,
];

fn build(arch: Arch, spec: InputSpec) -> InferencePlan {
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    InferencePlan::compile(&ConvNet::build(arch, spec, 6, &mut rng))
}

fn test_images(spec: InputSpec, n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|b| {
            Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
                (((i + 113 * b) as f32) * 0.137).sin().abs()
            })
        })
        .collect()
}

fn check_forward(arch: Arch, spec: InputSpec) {
    let plan = build(arch, spec);
    let batched = plan.batched();
    let images = test_images(spec, 5);
    let mut bws = batched.workspace(images.len());
    let mut got = Vec::new();
    batched.scores_batch_into(&mut bws, &images, &mut got);

    let mut ws = plan.workspace();
    let mut want = Vec::new();
    for (b, image) in images.iter().enumerate() {
        plan.scores_into(&mut ws, image, &mut want);
        let chunk = &got[b * plan.num_classes()..(b + 1) * plan.num_classes()];
        assert_eq!(chunk, &want[..], "{arch} image {b} diverged in the batch");
    }

    // A smaller batch through the same (now dirty) workspace must not see
    // stale lanes.
    let mut again = Vec::new();
    batched.scores_batch_into(&mut bws, &images[..2], &mut again);
    assert_eq!(
        again,
        got[..2 * plan.num_classes()],
        "{arch} prefix rerun diverged"
    );
}

fn check_delta(arch: Arch, spec: InputSpec) {
    let plan = build(arch, spec);
    let delta = oppsla_nn::delta::DeltaPlan::compile(&plan);
    let mut ws = plan.workspace();
    let image = test_images(spec, 1).pop().unwrap();
    let base = BaseActivations::capture(&plan, &mut ws, &image);
    let (h, w) = (spec.height, spec.width);
    let candidates: Vec<(usize, usize, [f32; 3])> = (0..7)
        .map(|i| {
            (
                (i * 13) % h,
                (i * 29) % w,
                [1.0, (i % 2) as f32, 0.1 * i as f32],
            )
        })
        .collect();

    let mut batch_ws: Vec<_> = (0..candidates.len())
        .map(|_| delta.workspace(&base))
        .collect();
    let mut scratch = DeltaBatchScratch::new();
    let mut got = Vec::new();
    delta.scores_pixel_delta_batch_into(
        &plan,
        &base,
        &mut batch_ws,
        &candidates,
        &mut scratch,
        &mut got,
    );

    let mut dws = delta.workspace(&base);
    let mut want = Vec::new();
    for (i, &(row, col, rgb)) in candidates.iter().enumerate() {
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, row, col, rgb, &mut want);
        let chunk = &got[i * plan.num_classes()..(i + 1) * plan.num_classes()];
        assert_eq!(
            chunk,
            &want[..],
            "{arch} candidate {i} diverged in the batch"
        );
    }

    // Reusing the batch workspaces for a second batch (their pending
    // regions restored lazily) must stay exact.
    let rerun: Vec<(usize, usize, [f32; 3])> = candidates
        .iter()
        .rev()
        .map(|&(r, c, _)| (r, c, [0.25, 0.5, 0.75]))
        .collect();
    delta.scores_pixel_delta_batch_into(
        &plan,
        &base,
        &mut batch_ws,
        &rerun,
        &mut scratch,
        &mut got,
    );
    for (i, &(row, col, rgb)) in rerun.iter().enumerate() {
        delta.scores_pixel_delta_into(&plan, &base, &mut dws, row, col, rgb, &mut want);
        let chunk = &got[i * plan.num_classes()..(i + 1) * plan.num_classes()];
        assert_eq!(chunk, &want[..], "{arch} rerun candidate {i} diverged");
    }
}

#[test]
fn batched_forward_matches_sequential_at_32x32() {
    for arch in ARCHS {
        check_forward(arch, InputSpec::RGB32);
    }
}

#[test]
fn batched_forward_matches_sequential_at_64x64_direct_convs() {
    // 64x64 feature maps cross DIRECT_CONV_MIN_PIXELS, exercising the
    // per-image direct-kernel branch of the batched conv.
    check_forward(Arch::ResNetSmall, InputSpec::RGB64);
}

#[test]
fn batched_delta_matches_sequential_at_32x32() {
    for arch in ARCHS {
        check_delta(arch, InputSpec::RGB32);
    }
}

#[test]
fn batched_delta_matches_sequential_at_64x64() {
    check_delta(Arch::DenseNetSmall, InputSpec::RGB64);
}

#[test]
fn batched_delta_handles_partial_workspace_use() {
    // More workspaces than candidates: only the prefix runs.
    let plan = build(Arch::VggSmall, InputSpec::RGB32);
    let delta = oppsla_nn::delta::DeltaPlan::compile(&plan);
    let mut ws = plan.workspace();
    let image = test_images(InputSpec::RGB32, 1).pop().unwrap();
    let base = BaseActivations::capture(&plan, &mut ws, &image);
    let mut batch_ws: Vec<_> = (0..8).map(|_| delta.workspace(&base)).collect();
    let candidates = [(3usize, 4usize, [1.0f32, 0.0, 0.0])];
    let mut scratch = DeltaBatchScratch::new();
    let mut got = Vec::new();
    delta.scores_pixel_delta_batch_into(
        &plan,
        &base,
        &mut batch_ws,
        &candidates,
        &mut scratch,
        &mut got,
    );
    let mut dws = delta.workspace(&base);
    let mut want = Vec::new();
    delta.scores_pixel_delta_into(&plan, &base, &mut dws, 3, 4, [1.0, 0.0, 0.0], &mut want);
    assert_eq!(got, want);
}
