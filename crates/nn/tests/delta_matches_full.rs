//! Property test: the incremental pixel-delta engine is bit-identical to
//! a full forward pass across every model family, both input sizes, and
//! adversarial pixel placements (corners, edges, centre, random).
//!
//! The attack's query accounting and the paper figures assume the
//! incremental path computes *the same function* as the full engine —
//! not merely a close approximation. Exact `Vec<f32>` equality (no
//! tolerance) enforces that dirty-region recomputation reproduces the
//! full forward's arithmetic bit for bit.

use oppsla_nn::delta::BaseActivations;
use oppsla_nn::infer::InferenceEngine;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ALL_ARCHS: [Arch; 5] = [
    Arch::VggSmall,
    Arch::ResNetSmall,
    Arch::GoogLeNetSmall,
    Arch::DenseNetSmall,
    Arch::Mlp,
];

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![
        Just(Arch::VggSmall),
        Just(Arch::ResNetSmall),
        Just(Arch::GoogLeNetSmall),
        Just(Arch::DenseNetSmall),
        Just(Arch::Mlp),
    ]
}

/// Pixel coordinates biased toward the boundary cases the dirty-region
/// clipping must get right: corners, the rows/columns next to them, and
/// the centre, plus uniformly random interior placements.
fn arb_coord(extent: usize) -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(extent - 1),
        Just(extent - 2),
        Just(extent / 2),
        0..extent,
    ]
}

fn random_image(spec: InputSpec, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_fn([spec.channels, spec.height, spec.width], |_| {
        rng.gen_range(0.0..1.0f32)
    })
}

/// Asserts delta == full for one (engine, base, pixel) combination; the
/// full reference pokes the pixel into a copy of the base and runs the
/// plain plan.
fn assert_delta_matches_full(
    engine: &InferenceEngine,
    base: &Tensor,
    row: usize,
    col: usize,
    rgb: [f32; 3],
) -> Result<(), TestCaseError> {
    let plan = engine.plan();
    let spec = plan.input_spec();
    let mut poked = base.clone();
    let area = spec.height * spec.width;
    for (c, v) in rgb.iter().enumerate() {
        poked.data_mut()[c * area + row * spec.width + col] = *v;
    }
    let mut ws = plan.workspace();
    let mut full = Vec::new();
    plan.scores_into(&mut ws, &poked, &mut full);

    let mut delta = Vec::new();
    engine.scores_pixel_delta_into(base, row, col, rgb, &mut delta);
    prop_assert_eq!(delta, full);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pixel_delta_equals_full_forward_rgb32(
        arch in arb_arch(),
        build_seed in any::<u64>(),
        image_seed in any::<u64>(),
        row in arb_coord(32),
        col in arb_coord(32),
        rgb in [0.0f32..=1.0, 0.0f32..=1.0, 0.0f32..=1.0],
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(build_seed);
        let net = ConvNet::build(arch, InputSpec::RGB32, 7, &mut rng);
        let engine = InferenceEngine::new(&net);
        let base = random_image(InputSpec::RGB32, image_seed);
        assert_delta_matches_full(&engine, &base, row, col, rgb)?;
    }

    #[test]
    fn pixel_delta_equals_full_forward_rgb64(
        arch in arb_arch(),
        image_seed in any::<u64>(),
        row in arb_coord(64),
        col in arb_coord(64),
        rgb in [0.0f32..=1.0, 0.0f32..=1.0, 0.0f32..=1.0],
    ) {
        // A fixed build seed keeps the 64x64 cases affordable while the
        // image, placement and perturbation still vary per case.
        let mut rng = ChaCha8Rng::seed_from_u64(0x64);
        let net = ConvNet::build(arch, InputSpec::RGB64, 6, &mut rng);
        let engine = InferenceEngine::new(&net);
        let base = random_image(InputSpec::RGB64, image_seed);
        assert_delta_matches_full(&engine, &base, row, col, rgb)?;
    }

    #[test]
    fn successive_deltas_restore_the_base(
        arch in arb_arch(),
        build_seed in any::<u64>(),
        pixels in prop::collection::vec((0usize..32, 0usize..32, [0.0f32..=1.0, 0.0f32..=1.0, 0.0f32..=1.0]), 2..5),
    ) {
        // A sequence of different candidates against one base must each
        // see pristine base activations — lazy restore may not leak the
        // previous candidate's dirty values.
        let mut rng = ChaCha8Rng::seed_from_u64(build_seed);
        let net = ConvNet::build(arch, InputSpec::RGB32, 5, &mut rng);
        let engine = InferenceEngine::new(&net);
        let base = random_image(InputSpec::RGB32, 99);
        for (row, col, rgb) in pixels {
            assert_delta_matches_full(&engine, &base, row, col, rgb)?;
        }
    }
}

/// Deterministic sweep: every family × both input sizes × the exact
/// corner/edge/centre placements named in the acceptance criteria, via the
/// low-level `DeltaPlan` API (no engine cache in the loop).
#[test]
fn corner_edge_center_sweep_all_families_both_sizes() {
    for spec in [InputSpec::RGB32, InputSpec::RGB64] {
        let n = spec.height;
        let placements = [
            (0, 0),
            (0, n - 1),
            (n - 1, 0),
            (n - 1, n - 1),
            (0, n / 2),
            (n / 2, 0),
            (n / 2, n / 2),
        ];
        for arch in ALL_ARCHS {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let net = ConvNet::build(arch, spec, 5, &mut rng);
            let engine = InferenceEngine::new(&net);
            let plan = engine.plan();
            let base = random_image(spec, 3);
            let mut ws = plan.workspace();
            let acts = BaseActivations::capture(plan, &mut ws, &base);
            let delta = engine.delta_plan();
            let mut dws = delta.workspace(&acts);
            let mut delta_out = Vec::new();
            let mut full_out = Vec::new();
            let area = spec.height * spec.width;
            for (row, col) in placements {
                let rgb = [1.0, 0.0, 0.5];
                delta.scores_pixel_delta_into(plan, &acts, &mut dws, row, col, rgb, &mut delta_out);
                let mut poked = base.clone();
                for (c, v) in rgb.iter().enumerate() {
                    poked.data_mut()[c * area + row * spec.width + col] = *v;
                }
                plan.scores_into(&mut ws, &poked, &mut full_out);
                assert_eq!(
                    delta_out, full_out,
                    "{arch:?} {}x{} pixel ({row}, {col})",
                    spec.height, spec.width,
                );
            }
        }
    }
}
