//! Finite-difference gradient checks for every zoo architecture.
//!
//! The unit tests in `autograd.rs` verify individual ops; this suite
//! verifies the *composition* — residual adds, channel concats, pooling
//! and the FC heads all backpropagating correctly through whole networks.
//!
//! Coordinate-wise differencing is unreliable here: ReLU and max-pool
//! introduce kinks that a single coordinate step can cross. Instead we
//! check the *directional derivative along the gradient itself*:
//! `(f(θ + ε·ĝ) − f(θ − ε·ĝ)) / 2ε ≈ ‖g‖`, which averages away isolated
//! kinks while still failing loudly if any op's backward rule is wrong.

use oppsla_nn::autograd::Tape;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn loss_of(net: &ConvNet, batch: &Tensor, labels: &[usize]) -> f32 {
    let mut tape = Tape::new();
    let x = tape.input(batch.clone());
    let logits = net.logits_on_tape(&mut tape, x);
    let loss = tape.softmax_cross_entropy(logits, labels);
    tape.value(loss).item()
}

fn check_arch(arch: Arch, tolerance: f32) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let net = ConvNet::build(arch, InputSpec::RGB32, 4, &mut rng);
    let batch = Tensor::from_fn([2, 3, 32, 32], |i| ((i as f32) * 0.13).sin() * 0.5 + 0.5);
    let labels = [1usize, 3];

    // Analytic gradients.
    for p in net.params() {
        p.zero_grad();
    }
    let mut tape = Tape::new();
    let x = tape.input(batch.clone());
    let logits = net.logits_on_tape(&mut tape, x);
    let loss = tape.softmax_cross_entropy(logits, &labels);
    tape.backward(loss);

    // ‖g‖ over all parameters.
    let params = net.params();
    let grads: Vec<Tensor> = params.iter().map(|p| p.grad()).collect();
    let norm: f32 = grads
        .iter()
        .flat_map(|g| g.data().iter().map(|v| v * v))
        .sum::<f32>()
        .sqrt();
    assert!(norm > 1e-4, "{arch:?}: gradient vanished entirely ({norm})");

    // Step all parameters along ±ε·ĝ and compare the directional
    // derivative to ‖g‖.
    let eps = 1e-3f32;
    let bases: Vec<Tensor> = params.iter().map(|p| p.value()).collect();
    let stepped = |sign: f32| {
        for ((p, base), g) in params.iter().zip(&bases).zip(&grads) {
            let mut v = base.clone();
            v.add_scaled_inplace(g, sign * eps / norm);
            p.set_value(v);
        }
        let f = loss_of(&net, &batch, &labels);
        for (p, base) in params.iter().zip(&bases) {
            p.set_value(base.clone());
        }
        f
    };
    let f_plus = stepped(1.0);
    let f_minus = stepped(-1.0);
    let numeric = (f_plus - f_minus) / (2.0 * eps);
    assert!(
        (numeric - norm).abs() <= tolerance * norm,
        "{arch:?}: directional derivative {numeric} vs gradient norm {norm}"
    );
}

#[test]
fn vgg_gradients_match_finite_differences() {
    check_arch(Arch::VggSmall, 0.05);
}

#[test]
fn resnet_gradients_match_finite_differences() {
    check_arch(Arch::ResNetSmall, 0.05);
}

#[test]
fn googlenet_gradients_match_finite_differences() {
    check_arch(Arch::GoogLeNetSmall, 0.05);
}

#[test]
fn densenet_gradients_match_finite_differences() {
    check_arch(Arch::DenseNetSmall, 0.05);
}

#[test]
fn mlp_gradients_match_finite_differences() {
    check_arch(Arch::Mlp, 0.05);
}

#[test]
fn gradient_of_wrong_direction_fails_the_check() {
    // Meta-test: the directional check actually discriminates. Stepping
    // along a *random* direction must not reproduce the norm.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = ConvNet::build(Arch::Mlp, InputSpec::RGB32, 4, &mut rng);
    let batch = Tensor::from_fn([2, 3, 32, 32], |i| ((i as f32) * 0.29).cos() * 0.5 + 0.5);
    let labels = [0usize, 2];
    for p in net.params() {
        p.zero_grad();
    }
    let mut tape = Tape::new();
    let x = tape.input(batch.clone());
    let logits = net.logits_on_tape(&mut tape, x);
    let loss = tape.softmax_cross_entropy(logits, &labels);
    tape.backward(loss);
    let params = net.params();
    let norm: f32 = params
        .iter()
        .flat_map(|p| p.grad().into_vec())
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt();
    // A fixed arbitrary direction (alternating signs) is essentially
    // orthogonal to the gradient in this high-dimensional space.
    let eps = 1e-3f32;
    let bases: Vec<Tensor> = params.iter().map(|p| p.value()).collect();
    let dim: usize = bases.iter().map(|b| b.numel()).sum();
    let unit = 1.0 / (dim as f32).sqrt();
    let stepped = |sign: f32| {
        for (p, base) in params.iter().zip(&bases) {
            let dir = Tensor::from_fn(
                base.shape().clone(),
                |i| {
                    if i % 2 == 0 {
                        unit
                    } else {
                        -unit
                    }
                },
            );
            let mut v = base.clone();
            v.add_scaled_inplace(&dir, sign * eps);
            p.set_value(v);
        }
        let f = loss_of(&net, &batch, &labels);
        for (p, base) in params.iter().zip(&bases) {
            p.set_value(base.clone());
        }
        f
    };
    let numeric = (stepped(1.0) - stepped(-1.0)) / (2.0 * eps);
    assert!(
        (numeric - norm).abs() > 0.05 * norm,
        "random direction reproduced the norm: {numeric} vs {norm}"
    );
}
