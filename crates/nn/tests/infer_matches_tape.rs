//! Property test: the compiled inference plan is bit-identical to the
//! allocating tape forward pass across every model family.
//!
//! The one-pixel attack's query accounting assumes the fast path is the
//! same function as the reference path — not merely close. Exact `Vec<f32>`
//! equality (no tolerance) enforces that the plan mirrors the tape's
//! arithmetic operation-for-operation.

use oppsla_nn::infer::InferenceEngine;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![
        Just(Arch::VggSmall),
        Just(Arch::ResNetSmall),
        Just(Arch::GoogLeNetSmall),
        Just(Arch::DenseNetSmall),
        Just(Arch::Mlp),
    ]
}

fn random_image(spec: InputSpec, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_fn([spec.channels, spec.height, spec.width], |_| {
        rng.gen_range(0.0..1.0f32)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn plan_scores_equal_tape_scores(
        arch in arb_arch(),
        build_seed in any::<u64>(),
        image_seed in any::<u64>(),
        classes in 2usize..11,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(build_seed);
        let net = ConvNet::build(arch, InputSpec::RGB32, classes, &mut rng);
        let engine = InferenceEngine::new(&net);
        let image = random_image(InputSpec::RGB32, image_seed);
        let fast = engine.scores(&image);
        let reference = net.scores(&image);
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn repeated_queries_stay_bit_identical(
        arch in arb_arch(),
        build_seed in any::<u64>(),
    ) {
        // Workspace reuse must not leak state between queries, even when
        // images of different content alternate.
        let mut rng = ChaCha8Rng::seed_from_u64(build_seed);
        let net = ConvNet::build(arch, InputSpec::RGB32, 5, &mut rng);
        let engine = InferenceEngine::new(&net);
        let images: Vec<Tensor> = (0..3).map(|i| random_image(InputSpec::RGB32, i)).collect();
        let first: Vec<Vec<f32>> = images.iter().map(|im| engine.scores(im)).collect();
        for (im, expected) in images.iter().zip(&first).rev() {
            prop_assert_eq!(&engine.scores(im), expected);
        }
    }
}
