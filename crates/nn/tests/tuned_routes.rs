//! The arch-adaptive dispatcher's correctness contract: whatever routes
//! the tuner picks, scores are bit-identical to the statically routed
//! plan — tuning moves wall-clock time, never a single output bit — and
//! every compiled plan carries an attributable route report.

use oppsla_nn::delta::{BaseActivations, DeltaBatchScratch, DeltaPlan};
use oppsla_nn::infer::InferencePlan;
use oppsla_nn::models::{Arch, ConvNet, InputSpec};
use oppsla_nn::tune::{set_policy, TunePolicy};
use oppsla_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

/// The tuning policy is process-global, so tests that flip it must not
/// overlap. Lock (ignoring poisoning — an assert failure elsewhere must
/// not cascade) around every policy-sensitive section.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

fn test_image(spec: InputSpec) -> Tensor {
    Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
        ((i as f32) * 0.137).sin().abs()
    })
}

/// Compiles `arch` once per policy and byte-compares full, incremental,
/// and batched-delta scores across the two plans.
fn check_policies_agree(arch: Arch, spec: InputSpec) {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let net = ConvNet::build(arch, spec, 6, &mut rng);

    let (static_plan, static_delta, tuned_plan, tuned_delta) = {
        let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_policy(TunePolicy::Off);
        let static_plan = InferencePlan::compile(&net);
        let static_delta = DeltaPlan::compile(&static_plan);
        set_policy(TunePolicy::Measure);
        let tuned_plan = InferencePlan::compile(&net);
        let tuned_delta = DeltaPlan::compile(&tuned_plan);
        (static_plan, static_delta, tuned_plan, tuned_delta)
    };

    let image = test_image(spec);
    let (mut ws_a, mut ws_b) = (static_plan.workspace(), tuned_plan.workspace());
    let (mut got_a, mut got_b) = (Vec::new(), Vec::new());
    static_plan.scores_into(&mut ws_a, &image, &mut got_a);
    tuned_plan.scores_into(&mut ws_b, &image, &mut got_b);
    assert_eq!(got_a, got_b, "{arch}: tuned full forward diverged");

    let base_a = BaseActivations::capture(&static_plan, &mut ws_a, &image);
    let base_b = BaseActivations::capture(&tuned_plan, &mut ws_b, &image);
    let mut dws_a = static_delta.workspace(&base_a);
    let mut dws_b = tuned_delta.workspace(&base_b);
    for (row, col) in [(0, 0), (13, 7), (spec.height - 1, spec.width - 1)] {
        let rgb = [0.8, 0.1, 0.6];
        static_delta.scores_pixel_delta_into(
            &static_plan,
            &base_a,
            &mut dws_a,
            row,
            col,
            rgb,
            &mut got_a,
        );
        tuned_delta.scores_pixel_delta_into(
            &tuned_plan,
            &base_b,
            &mut dws_b,
            row,
            col,
            rgb,
            &mut got_b,
        );
        assert_eq!(got_a, got_b, "{arch}: tuned delta ({row}, {col}) diverged");
    }

    let candidates: Vec<(usize, usize, [f32; 3])> = (0..6)
        .map(|i| {
            (
                i * 5 % spec.height,
                i * 3 % spec.width,
                [0.2 * i as f32, 0.5, 0.9],
            )
        })
        .collect();
    let mut batch_a: Vec<_> = (0..candidates.len())
        .map(|_| static_delta.workspace(&base_a))
        .collect();
    let mut batch_b: Vec<_> = (0..candidates.len())
        .map(|_| tuned_delta.workspace(&base_b))
        .collect();
    let mut scratch = DeltaBatchScratch::new();
    static_delta.scores_pixel_delta_batch_into(
        &static_plan,
        &base_a,
        &mut batch_a,
        &candidates,
        &mut scratch,
        &mut got_a,
    );
    tuned_delta.scores_pixel_delta_batch_into(
        &tuned_plan,
        &base_b,
        &mut batch_b,
        &candidates,
        &mut scratch,
        &mut got_b,
    );
    assert_eq!(got_a, got_b, "{arch}: tuned batched delta diverged");
}

#[test]
fn tuned_and_static_routes_are_bit_identical() {
    for arch in [Arch::VggSmall, Arch::ResNetSmall, Arch::DenseNetSmall] {
        check_policies_agree(arch, InputSpec::RGB32);
    }
}

#[test]
fn tuner_reports_cover_every_conv() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let net = ConvNet::build(Arch::GoogLeNetSmall, InputSpec::RGB32, 5, &mut rng);
    let (plan, delta) = {
        let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_policy(TunePolicy::Measure);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        (plan, delta)
    };

    let convs = plan.tuner_report().len();
    assert!(convs > 0, "GoogLeNet plan should contain convolutions");
    assert_eq!(delta.tuner_report().len(), convs);
    for d in plan.tuner_report() {
        assert!(d.measured, "Measure policy must time every conv route");
        assert!(d.direct_ns > 0 && d.gemm_ns > 0);
        assert_eq!(d.direct, d.direct_ns <= d.gemm_ns);
        assert!(matches!(d.route(), "direct" | "gemm"));
    }
    for d in delta.tuner_report() {
        assert!(d.measured);
        assert!(d.small_direct_ns > 0 && d.small_gemm_ns > 0);
        assert!(d.large_direct_ns > 0 && d.large_gemm_ns > 0);
        assert_eq!(d.direct_small, d.small_direct_ns < d.small_gemm_ns);
        assert_eq!(d.direct_large, d.large_direct_ns < d.large_gemm_ns);
        assert!(
            ["direct", "gemm", "d-small", "d-large"].contains(&d.route().as_str()),
            "unexpected route label {}",
            d.route()
        );
        // The selector consults the small-probe winner below the regime
        // cut and the large-probe winner above it.
        assert_eq!(d.use_direct(1), d.direct_small);
        assert_eq!(d.use_direct(4096), d.direct_large);
    }
}

#[test]
fn off_policy_pins_the_static_thresholds() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let net = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 4, &mut rng);
    let (plan, delta) = {
        let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_policy(TunePolicy::Off);
        let plan = InferencePlan::compile(&net);
        let delta = DeltaPlan::compile(&plan);
        set_policy(TunePolicy::Measure);
        (plan, delta)
    };
    for d in plan.tuner_report() {
        assert!(!d.measured);
        assert_eq!((d.direct_ns, d.gemm_ns), (0, 0));
        // The static heuristic: direct only at >= 4096 output pixels.
        assert_eq!(d.direct, d.out_pixels >= 4096);
    }
    for d in delta.tuner_report() {
        assert!(!d.measured);
        // The static fallback mirrors the old hand-tuned threshold:
        // direct for small groups, GEMM for large ones.
        assert!(d.direct_small && !d.direct_large);
        assert_eq!(d.route(), "d-small");
    }
    set_policy(TunePolicy::Measure);
}
