//! Telemetry for the OPPSLA query path.
//!
//! The paper's central cost metric is the classifier query count, so the
//! attack and synthesis loops are worth instrumenting: which phase of an
//! attack spends the queries (initial scan, refinement, re-prioritization),
//! how the per-image query counts distribute, how often the incremental
//! inference backend hits its cached base activations, and where a forward
//! pass spends its time per layer kind.
//!
//! # Design
//!
//! * **Feature-gated.** Everything records through free functions
//!   ([`count`], [`observe_image_queries`], [`op_timer`], …) that are inert
//!   inline no-ops unless the `telemetry` cargo feature is enabled. The
//!   query hot path therefore pays nothing — not even an `Instant::now()`
//!   — in a default build, which the counting-allocator and A/B-diff
//!   harnesses verify.
//! * **Lock-free thread-local recorder.** With `telemetry` on, increments
//!   go to plain thread-local cells (no atomics, no locks on the hot
//!   path). Each thread's cells are merged into global atomic totals when
//!   the thread exits — before a scoped-thread join returns — or on an
//!   explicit [`flush`]. Totals are sums of non-negative integers, so the
//!   merged [`Snapshot`] is identical for any thread count and schedule;
//!   only the (stderr/JSONL-only) wall-clock timings are nondeterministic.
//! * **Sinks.** A [`Snapshot`] can be rendered as a human summary or
//!   emitted as one JSONL event through a [`MetricsSink`] (the experiment
//!   binaries' `--telemetry out.jsonl`). [`Snapshot`] and the sinks exist
//!   in both builds, so binaries need no `cfg` at call sites: with the
//!   feature off they simply observe zeros and `telemetry_enabled: false`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

pub mod metrics;
pub mod trace;

/// Declares [`Counter`] with stable snake_case wire names.
macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// A monotonically increasing event counter.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)*
        }

        impl Counter {
            /// Number of counters.
            pub const COUNT: usize = [$($name),*].len();

            /// Every counter, in declaration (and wire) order.
            pub const ALL: [Counter; Counter::COUNT] = [$(Counter::$variant),*];

            /// The stable snake_case name used in JSONL events and
            /// summaries.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)*
                }
            }
        }
    };
}

counters! {
    /// Baseline `N(x)` queries (one per attack run).
    QueryBaseline => "query_baseline",
    /// Queries spent scanning fresh candidates (the sketch's main queue
    /// loop; an attack's exploration proposals).
    QueryInitScan => "query_init_scan",
    /// Queries spent refining around earlier candidates (the sketch's
    /// eager B3/B4 checks; an attack's exploitation proposals).
    QueryRefine => "query_refine",
    /// B1 firings: location neighbours pushed to the back of the queue.
    ReprioritizeB1 => "reprioritize_b1",
    /// B2 firings: the next perturbation pushed to the back of the queue.
    ReprioritizeB2 => "reprioritize_b2",
    /// Full-image oracle queries (`Oracle::query_into`).
    OracleQueryFull => "oracle_query_full",
    /// Single-pixel-delta oracle queries
    /// (`Oracle::query_pixel_delta_into`).
    OracleQueryPixelDelta => "oracle_query_pixel_delta",
    /// Pixel-delta queries served from already-cached base activations.
    DeltaCacheHit => "delta_cache_hit",
    /// Pixel-delta queries that recaptured the cache for a new base image.
    DeltaCacheRebase => "delta_cache_rebase",
    /// Pixel-delta queries that populated a cold (empty) cache.
    DeltaCacheCold => "delta_cache_cold",
    /// Incremental forward passes executed by the delta engine.
    DeltaQueries => "delta_queries",
    /// Dirty regions promoted to a full-buffer recompute because the
    /// rectangle covered the whole spatial extent (excludes the
    /// unconditional GAP/Linear fallback).
    DeltaFullPromotions => "delta_full_promotions",
    /// Weight-cache files loaded successfully.
    WeightCacheHit => "weight_cache_hit",
    /// Weight-cache files absent (a plain miss; the model is trained).
    WeightCacheMiss => "weight_cache_miss",
    /// Weight-cache files present but unusable (truncated/corrupt); the
    /// model is retrained and the cache rewritten.
    WeightCacheCorrupt => "weight_cache_corrupt",
    /// Candidate programs scored by the synthesizer.
    SynthPrograms => "synth_programs",
    /// Metropolis–Hastings proposals accepted.
    SynthAccepted => "synth_accepted",
    /// Speculative candidate batches evaluated ahead of consumption by a
    /// prefetching oracle (one per batched classifier call).
    BatchPrefetch => "batch_prefetch",
    /// Candidates evaluated inside those batches. Mean batch size is
    /// `batch_prefetched / batch_prefetch`.
    BatchPrefetched => "batch_prefetched",
    /// Prefetched candidates actually consumed by a later sequential
    /// query (served from the batch). Batch occupancy — the fraction of
    /// speculative work that paid off — is `batch_hit / batch_prefetched`.
    BatchHit => "batch_hit",
    /// Sequential queries that found no matching candidate in the pending
    /// batch (the caller diverged from its speculation); the query runs
    /// sequentially and the batch is kept for later hits.
    BatchMiss => "batch_miss",
    /// Prefetched batches discarded before being fully consumed — the
    /// caller prefetched again (stale speculation) or queried against a
    /// different base image — counted per discarded batch.
    BatchFlush => "batch_flush",
    /// Images run through the layer-major batched full forward.
    BatchedForwardImages => "batched_forward_images",
    /// Cross-tenant grouped delta calls issued by the attack server's
    /// batch scheduler (one per merged GEMM dispatch).
    SchedGroupedCalls => "sched_grouped_calls",
    /// Tenant submissions merged into those grouped calls. Mean pack
    /// density is `sched_grouped_submissions / sched_grouped_calls`.
    SchedGroupedSubmissions => "sched_grouped_submissions",
    /// Candidate queries served from the cross-restart memo cache without
    /// touching the classifier. Never counted as oracle queries.
    MemoHit => "memo_hit",
    /// Freshly computed scores inserted into the memo cache.
    MemoInsert => "memo_insert",
    /// Memo entries evicted (oldest first) to respect the entry cap.
    MemoEvict => "memo_evict",
}

/// Declares [`OpKind`] with stable wire names.
macro_rules! op_kinds {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// The kind of a compiled forward-pass op, for per-layer timing.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum OpKind {
            $($(#[$doc])* $variant,)*
        }

        impl OpKind {
            /// Number of op kinds.
            pub const COUNT: usize = [$($name),*].len();

            /// Every op kind, in declaration (and wire) order.
            pub const ALL: [OpKind; OpKind::COUNT] = [$(OpKind::$variant),*];

            /// The stable name used in JSONL events and summaries.
            pub fn name(self) -> &'static str {
                match self {
                    $(OpKind::$variant => $name,)*
                }
            }
        }
    };
}

op_kinds! {
    /// 2-D convolution (direct or im2col+GEMM).
    Conv => "conv2d",
    /// Fully connected layer.
    Linear => "linear",
    /// Elementwise ReLU.
    Relu => "relu",
    /// Max pooling.
    MaxPool => "max_pool",
    /// Global average pooling.
    Gap => "global_avg_pool",
    /// Residual addition.
    Add => "add",
    /// Concatenation segment copy.
    CopySeg => "copy_seg",
}

/// Number of buckets in the per-image query histogram: bucket 0 counts
/// zero-query images, bucket `b ≥ 1` counts images with `2^(b−1) ≤ q <
/// 2^b` queries, and the last bucket absorbs everything above.
pub const QUERY_HIST_BUCKETS: usize = 22;

/// The histogram bucket for a per-image query count.
pub fn query_hist_bucket(queries: u64) -> usize {
    ((64 - queries.leading_zeros()) as usize).min(QUERY_HIST_BUCKETS - 1)
}

/// The inclusive-exclusive bounds `[lo, hi)` of a histogram bucket (the
/// last bucket's `hi` is `u64::MAX`).
pub fn query_hist_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < QUERY_HIST_BUCKETS, "bucket out of range");
    match bucket {
        0 => (0, 1),
        b if b == QUERY_HIST_BUCKETS - 1 => (1 << (b - 1), u64::MAX),
        b => (1 << (b - 1), 1 << b),
    }
}

/// Whether this build records telemetry (`telemetry` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

#[cfg(feature = "telemetry")]
mod recorder {
    use super::{Counter, OpKind, Snapshot, QUERY_HIST_BUCKETS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    /// Global totals, merged from per-thread recorders.
    struct Globals {
        counters: [AtomicU64; Counter::COUNT],
        op_ns: [AtomicU64; OpKind::COUNT],
        op_calls: [AtomicU64; OpKind::COUNT],
        hist: [AtomicU64; QUERY_HIST_BUCKETS],
    }

    static GLOBALS: Globals = Globals {
        counters: [const { AtomicU64::new(0) }; Counter::COUNT],
        op_ns: [const { AtomicU64::new(0) }; OpKind::COUNT],
        op_calls: [const { AtomicU64::new(0) }; OpKind::COUNT],
        hist: [const { AtomicU64::new(0) }; QUERY_HIST_BUCKETS],
    };

    /// Per-thread counter cells: plain (non-atomic) increments on the hot
    /// path, merged into [`GLOBALS`] on thread exit or explicit flush.
    struct TlsRecorder {
        counters: [Cell<u64>; Counter::COUNT],
        op_ns: [Cell<u64>; OpKind::COUNT],
        op_calls: [Cell<u64>; OpKind::COUNT],
        hist: [Cell<u64>; QUERY_HIST_BUCKETS],
    }

    impl TlsRecorder {
        fn flush_to_globals(&self) {
            fn drain<const N: usize>(cells: &[Cell<u64>; N], totals: &[AtomicU64; N]) {
                for (cell, total) in cells.iter().zip(totals) {
                    let v = cell.replace(0);
                    if v != 0 {
                        total.fetch_add(v, Relaxed);
                    }
                }
            }
            drain(&self.counters, &GLOBALS.counters);
            drain(&self.op_ns, &GLOBALS.op_ns);
            drain(&self.op_calls, &GLOBALS.op_calls);
            drain(&self.hist, &GLOBALS.hist);
        }
    }

    impl Drop for TlsRecorder {
        fn drop(&mut self) {
            // Thread exit: merge this thread's residue. Runs before a
            // scoped-thread join returns, so parents observe full totals.
            self.flush_to_globals();
        }
    }

    thread_local! {
        static TLS: TlsRecorder = const {
            TlsRecorder {
                counters: [const { Cell::new(0) }; Counter::COUNT],
                op_ns: [const { Cell::new(0) }; OpKind::COUNT],
                op_calls: [const { Cell::new(0) }; OpKind::COUNT],
                hist: [const { Cell::new(0) }; QUERY_HIST_BUCKETS],
            }
        };
    }

    #[inline]
    pub(super) fn count_n(c: Counter, n: u64) {
        TLS.with(|t| {
            let cell = &t.counters[c as usize];
            cell.set(cell.get() + n);
        });
    }

    #[inline]
    pub(super) fn record_op(kind: OpKind, ns: u64) {
        TLS.with(|t| {
            let sum = &t.op_ns[kind as usize];
            sum.set(sum.get() + ns);
            let calls = &t.op_calls[kind as usize];
            calls.set(calls.get() + 1);
        });
    }

    #[inline]
    pub(super) fn observe_hist(bucket: usize) {
        TLS.with(|t| {
            let cell = &t.hist[bucket];
            cell.set(cell.get() + 1);
        });
    }

    pub(super) fn flush() {
        TLS.with(|t| t.flush_to_globals());
    }

    pub(super) fn snapshot() -> Snapshot {
        flush();
        fn read<const N: usize>(totals: &[AtomicU64; N]) -> [u64; N] {
            let mut out = [0u64; N];
            for (o, t) in out.iter_mut().zip(totals) {
                *o = t.load(Relaxed);
            }
            out
        }
        Snapshot {
            counters: read(&GLOBALS.counters),
            op_ns: read(&GLOBALS.op_ns),
            op_calls: read(&GLOBALS.op_calls),
            query_hist: read(&GLOBALS.hist),
        }
    }

    pub(super) fn reset() {
        TLS.with(|t| {
            for c in &t.counters {
                c.set(0);
            }
            for c in &t.op_ns {
                c.set(0);
            }
            for c in &t.op_calls {
                c.set(0);
            }
            for c in &t.hist {
                c.set(0);
            }
        });
        for t in &GLOBALS.counters {
            t.store(0, Relaxed);
        }
        for t in &GLOBALS.op_ns {
            t.store(0, Relaxed);
        }
        for t in &GLOBALS.op_calls {
            t.store(0, Relaxed);
        }
        for t in &GLOBALS.hist {
            t.store(0, Relaxed);
        }
    }
}

/// Increments `c` by one.
#[inline(always)]
pub fn count(c: Counter) {
    count_n(c, 1);
}

/// Increments `c` by `n`.
#[inline(always)]
pub fn count_n(c: Counter, n: u64) {
    #[cfg(feature = "telemetry")]
    recorder::count_n(c, n);
    #[cfg(not(feature = "telemetry"))]
    let _ = (c, n);
}

/// Records one finished attack run's per-image query count into the
/// distribution histogram.
#[inline(always)]
pub fn observe_image_queries(queries: u64) {
    #[cfg(feature = "telemetry")]
    recorder::observe_hist(query_hist_bucket(queries));
    #[cfg(not(feature = "telemetry"))]
    let _ = queries;
}

/// A timing guard for one forward-pass op: records elapsed nanoseconds
/// (and one call) against its [`OpKind`] when dropped. With telemetry off
/// it is a zero-sized no-op — no clock is read.
#[must_use = "the timer records on drop; bind it for the op's duration"]
pub struct OpTimer {
    #[cfg(feature = "telemetry")]
    kind: OpKind,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

/// Starts an [`OpTimer`] for `kind`.
#[inline(always)]
pub fn op_timer(kind: OpKind) -> OpTimer {
    #[cfg(not(feature = "telemetry"))]
    let _ = kind;
    OpTimer {
        #[cfg(feature = "telemetry")]
        kind,
        #[cfg(feature = "telemetry")]
        start: std::time::Instant::now(),
    }
}

impl Drop for OpTimer {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        recorder::record_op(self.kind, self.start.elapsed().as_nanos() as u64);
    }
}

/// Merges the calling thread's buffered counts into the global totals.
/// Worker threads flush automatically on exit; call this on long-lived
/// threads before reading a [`snapshot`] elsewhere.
pub fn flush() {
    #[cfg(feature = "telemetry")]
    recorder::flush();
}

/// Flushes the calling thread and returns the current global totals.
/// All-zero when telemetry is off.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "telemetry")]
    return recorder::snapshot();
    #[cfg(not(feature = "telemetry"))]
    Snapshot::zero()
}

/// Zeroes the calling thread's buffers and the global totals. Meant for
/// single-threaded harnesses; concurrent recorders on other threads are
/// not reset. Prefer [`Snapshot::since`] deltas where possible.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    recorder::reset();
}

/// A point-in-time copy of every telemetry total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Summed nanoseconds per op kind (wall-clock; nondeterministic).
    pub op_ns: [u64; OpKind::COUNT],
    /// Op executions per kind.
    pub op_calls: [u64; OpKind::COUNT],
    /// Per-image query distribution (see [`query_hist_bucket`]).
    pub query_hist: [u64; QUERY_HIST_BUCKETS],
}

impl Snapshot {
    /// The all-zero snapshot.
    pub fn zero() -> Self {
        Snapshot {
            counters: [0; Counter::COUNT],
            op_ns: [0; OpKind::COUNT],
            op_calls: [0; OpKind::COUNT],
            query_hist: [0; QUERY_HIST_BUCKETS],
        }
    }

    /// The total of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The difference `self − earlier` (saturating), for per-section
    /// deltas around a unit of work.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::zero();
        for (o, (a, b)) in out
            .counters
            .iter_mut()
            .zip(self.counters.iter().zip(&earlier.counters))
        {
            *o = a.saturating_sub(*b);
        }
        for (o, (a, b)) in out
            .op_ns
            .iter_mut()
            .zip(self.op_ns.iter().zip(&earlier.op_ns))
        {
            *o = a.saturating_sub(*b);
        }
        for (o, (a, b)) in out
            .op_calls
            .iter_mut()
            .zip(self.op_calls.iter().zip(&earlier.op_calls))
        {
            *o = a.saturating_sub(*b);
        }
        for (o, (a, b)) in out
            .query_hist
            .iter_mut()
            .zip(self.query_hist.iter().zip(&earlier.query_hist))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }

    /// Sum of the per-phase attack query counters (baseline + init scan +
    /// refine).
    pub fn phase_queries(&self) -> u64 {
        self.get(Counter::QueryBaseline)
            + self.get(Counter::QueryInitScan)
            + self.get(Counter::QueryRefine)
    }

    /// Fraction of pixel-delta queries served from an already-cached base,
    /// or `None` when no pixel-delta query ran.
    pub fn delta_cache_hit_rate(&self) -> Option<f64> {
        let hit = self.get(Counter::DeltaCacheHit);
        let total = hit + self.get(Counter::DeltaCacheRebase) + self.get(Counter::DeltaCacheCold);
        (total > 0).then(|| hit as f64 / total as f64)
    }

    /// Number of images observed by the query histogram.
    pub fn images_observed(&self) -> u64 {
        self.query_hist.iter().sum()
    }

    /// True when nothing was recorded (e.g. telemetry is off).
    pub fn is_zero(&self) -> bool {
        *self == Snapshot::zero()
    }

    /// A deterministic multi-line human summary of the counters and the
    /// query histogram. Op timings are appended only when present (they
    /// are wall-clock and vary run to run — keep this off stdout).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "telemetry (enabled: {})", enabled());
        for c in Counter::ALL {
            if self.get(c) != 0 {
                let _ = writeln!(s, "  {:<24} {}", c.name(), self.get(c));
            }
        }
        if let Some(rate) = self.delta_cache_hit_rate() {
            let _ = writeln!(s, "  {:<24} {:.4}", "delta_cache_hit_rate", rate);
        }
        if self.images_observed() > 0 {
            let _ = writeln!(s, "  per-image query histogram:");
            for (b, &n) in self.query_hist.iter().enumerate() {
                if n != 0 {
                    let (lo, hi) = query_hist_bounds(b);
                    if hi == u64::MAX {
                        let _ = writeln!(s, "    [{lo}, inf)  {n}");
                    } else {
                        let _ = writeln!(s, "    [{lo}, {hi})  {n}");
                    }
                }
            }
        }
        for (kind, (&ns, &calls)) in OpKind::ALL
            .iter()
            .zip(self.op_ns.iter().zip(&self.op_calls))
        {
            if calls != 0 {
                let _ = writeln!(
                    s,
                    "  op {:<17} {} calls, {} ns total, {:.0} ns/call",
                    kind.name(),
                    calls,
                    ns,
                    ns as f64 / calls as f64
                );
            }
        }
        s
    }
}

/// A value attached to a [`MetricsSink`] event field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Floating point (serialized with full precision).
    F64(f64),
    /// String (JSON-escaped on emission).
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// A receiver of telemetry events.
pub trait MetricsSink {
    /// Emits one event with its fields.
    fn emit(&mut self, event: &str, fields: &[(&str, FieldValue)]);
}

/// A sink that drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn emit(&mut self, _event: &str, _fields: &[(&str, FieldValue)]) {}
}

/// A sink appending one JSON object per event to a writer (the experiment
/// binaries' `--telemetry out.jsonl`).
///
/// Event I/O failures never abort a run: failed writes are counted (see
/// [`JsonlSink::dropped_writes`]). The *first* failure warns on stderr
/// immediately — a long-lived daemon sink may never be consumed or
/// dropped, so deferring the only warning to that point would silently
/// discard events for the life of the process. A final summary with the
/// total count is printed once when the sink is consumed or dropped.
pub struct JsonlSink<W: Write = BufWriter<File>> {
    out: Option<W>,
    dropped: u64,
    /// First-drop stderr warning already printed.
    warned: bool,
    /// Final drop-count summary already printed (consume and drop must
    /// not both report).
    summarized: bool,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::from_writer(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer (for tests).
    pub fn from_writer(out: W) -> Self {
        JsonlSink {
            out: Some(out),
            dropped: 0,
            warned: false,
            summarized: false,
        }
    }

    /// Events whose write (or flush) failed and were therefore dropped
    /// from the output.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped
    }

    /// Counts a dropped event; the first drop warns on stderr right away
    /// so a daemon operator learns about a failing sink while it is
    /// failing, not at process exit.
    fn note_drop(&mut self) {
        self.dropped += 1;
        if !self.warned {
            self.warned = true;
            eprintln!(
                "warning: telemetry sink failed to write an event; \
                 further failures will be counted and summarized"
            );
        }
    }

    /// Prints the final dropped-event summary on stderr, at most once per
    /// sink. The count itself stays observable via
    /// [`JsonlSink::dropped_writes`].
    fn warn_if_dropped(&mut self) {
        if self.dropped > 0 && !self.summarized {
            self.summarized = true;
            eprintln!(
                "warning: telemetry sink dropped {} event write(s) due to I/O errors",
                self.dropped
            );
        }
    }

    /// The wrapped writer, flushing buffered events. Infallible: a flush
    /// failure is reported like a dropped event (use
    /// [`JsonlSink::try_into_inner`] to observe it).
    pub fn into_inner(mut self) -> W {
        if self
            .out
            .as_mut()
            .expect("writer present until consumed")
            .flush()
            .is_err()
        {
            self.note_drop();
        }
        self.warn_if_dropped();
        self.out.take().expect("writer present until consumed")
    }

    /// The wrapped writer, propagating the final flush error instead of
    /// swallowing it (the writer is lost on failure).
    ///
    /// # Errors
    ///
    /// Returns the flush error.
    pub fn try_into_inner(mut self) -> io::Result<W> {
        let result = self
            .out
            .as_mut()
            .expect("writer present until consumed")
            .flush();
        match result {
            Ok(()) => {
                self.warn_if_dropped();
                Ok(self.out.take().expect("writer present until consumed"))
            }
            Err(e) => {
                self.note_drop();
                self.warn_if_dropped();
                Err(e)
            }
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if self.out.as_mut().is_some_and(|out| out.flush().is_err()) {
            self.note_drop();
        }
        self.warn_if_dropped();
    }
}

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

impl<W: Write> MetricsSink for JsonlSink<W> {
    fn emit(&mut self, event: &str, fields: &[(&str, FieldValue)]) {
        let mut line = String::from("{\"event\":");
        push_json_str(&mut line, event);
        for (key, value) in fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::F64(_) => line.push_str("null"),
                FieldValue::Str(s) => push_json_str(&mut line, s),
                FieldValue::Bool(b) => {
                    let _ = write!(line, "{b}");
                }
            }
        }
        line.push_str("}\n");
        // Sink I/O failures must never abort an experiment run; they are
        // counted and surfaced once when the sink is consumed or dropped.
        let out = self.out.as_mut().expect("writer present until consumed");
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            self.note_drop();
        }
    }
}

/// Emits `snap` as one event: `labels` first, then `telemetry_enabled`,
/// every non-zero counter by name, the delta-cache hit rate, non-empty
/// histogram buckets (`qhist_<lo>`), and per-op timing sums.
pub fn emit_snapshot(
    sink: &mut dyn MetricsSink,
    event: &str,
    labels: &[(&str, FieldValue)],
    snap: &Snapshot,
) {
    let mut fields: Vec<(&str, FieldValue)> = labels.to_vec();
    fields.push(("telemetry_enabled", FieldValue::Bool(enabled())));
    for c in Counter::ALL {
        if snap.get(c) != 0 {
            fields.push((c.name(), FieldValue::U64(snap.get(c))));
        }
    }
    if let Some(rate) = snap.delta_cache_hit_rate() {
        fields.push(("delta_cache_hit_rate", FieldValue::F64(rate)));
    }
    let hist_names: [&str; QUERY_HIST_BUCKETS] = [
        "qhist_0",
        "qhist_1",
        "qhist_2",
        "qhist_4",
        "qhist_8",
        "qhist_16",
        "qhist_32",
        "qhist_64",
        "qhist_128",
        "qhist_256",
        "qhist_512",
        "qhist_1024",
        "qhist_2048",
        "qhist_4096",
        "qhist_8192",
        "qhist_16384",
        "qhist_32768",
        "qhist_65536",
        "qhist_131072",
        "qhist_262144",
        "qhist_524288",
        "qhist_1048576",
    ];
    for (name, &n) in hist_names.iter().zip(&snap.query_hist) {
        if n != 0 {
            fields.push((name, FieldValue::U64(n)));
        }
    }
    let op_ns_names: [&str; OpKind::COUNT] = [
        "op_ns_conv2d",
        "op_ns_linear",
        "op_ns_relu",
        "op_ns_max_pool",
        "op_ns_global_avg_pool",
        "op_ns_add",
        "op_ns_copy_seg",
    ];
    let op_call_names: [&str; OpKind::COUNT] = [
        "op_calls_conv2d",
        "op_calls_linear",
        "op_calls_relu",
        "op_calls_max_pool",
        "op_calls_global_avg_pool",
        "op_calls_add",
        "op_calls_copy_seg",
    ];
    for kind in OpKind::ALL {
        let i = kind as usize;
        if snap.op_calls[i] != 0 {
            fields.push((op_call_names[i], FieldValue::U64(snap.op_calls[i])));
            fields.push((op_ns_names[i], FieldValue::U64(snap.op_ns[i])));
        }
    }
    sink.emit(event, &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_partition_the_counts() {
        assert_eq!(query_hist_bucket(0), 0);
        assert_eq!(query_hist_bucket(1), 1);
        assert_eq!(query_hist_bucket(2), 2);
        assert_eq!(query_hist_bucket(3), 2);
        assert_eq!(query_hist_bucket(4), 3);
        assert_eq!(query_hist_bucket(1023), 10);
        assert_eq!(query_hist_bucket(1024), 11);
        assert_eq!(query_hist_bucket(u64::MAX), QUERY_HIST_BUCKETS - 1);
        for b in 0..QUERY_HIST_BUCKETS {
            let (lo, hi) = query_hist_bounds(b);
            assert_eq!(query_hist_bucket(lo), b, "lower bound of bucket {b}");
            if hi != u64::MAX {
                assert_eq!(query_hist_bucket(hi - 1), b, "upper bound of bucket {b}");
            }
        }
    }

    #[test]
    fn hist_bounds_cover_zero_boundaries_and_max() {
        assert_eq!(query_hist_bounds(0), (0, 1));
        assert_eq!(query_hist_bounds(1), (1, 2));
        assert_eq!(query_hist_bounds(2), (2, 4));
        let (lo, hi) = query_hist_bounds(QUERY_HIST_BUCKETS - 1);
        assert_eq!(lo, 1 << (QUERY_HIST_BUCKETS - 2));
        assert_eq!(hi, u64::MAX, "last bucket absorbs everything above");
        assert_eq!(query_hist_bucket(u64::MAX), QUERY_HIST_BUCKETS - 1);
        // Adjacent buckets tile the counts with no gaps or overlaps.
        for b in 1..QUERY_HIST_BUCKETS - 1 {
            assert_eq!(query_hist_bounds(b).0, query_hist_bounds(b - 1).1);
        }
    }

    #[test]
    #[should_panic(expected = "bucket out of range")]
    fn hist_bounds_reject_out_of_range_buckets() {
        let _ = query_hist_bounds(QUERY_HIST_BUCKETS);
    }

    #[test]
    fn snapshot_since_is_a_saturating_delta() {
        let mut later = Snapshot::zero();
        let mut earlier = Snapshot::zero();
        later.counters[Counter::QueryRefine as usize] = 10;
        earlier.counters[Counter::QueryRefine as usize] = 4;
        earlier.counters[Counter::QueryBaseline as usize] = 9; // later has 0
        let d = later.since(&earlier);
        assert_eq!(d.get(Counter::QueryRefine), 6);
        assert_eq!(d.get(Counter::QueryBaseline), 0, "saturates, never wraps");
    }

    #[test]
    fn jsonl_sink_writes_one_escaped_object_per_event() {
        let mut sink = JsonlSink::from_writer(Vec::new());
        sink.emit(
            "unit \"test\"",
            &[
                ("n", FieldValue::U64(3)),
                ("rate", FieldValue::F64(0.5)),
                ("nan", FieldValue::F64(f64::NAN)),
                ("who", FieldValue::Str("a\nb".into())),
                ("on", FieldValue::Bool(true)),
            ],
        );
        sink.emit("second", &[]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"unit \\\"test\\\"\",\"n\":3,\"rate\":0.5,\"nan\":null,\"who\":\"a\\nb\",\"on\":true}"
        );
        assert_eq!(lines[1], "{\"event\":\"second\"}");
    }

    #[test]
    fn emit_snapshot_field_values_round_trip_through_json() {
        // Hostile label values (quotes, backslashes, control characters,
        // non-ASCII) must survive a parse of the emitted line.
        let nasty = "a\"b\\c\nd\re\tf\u{1}g é";
        let mut snap = Snapshot::zero();
        snap.counters[Counter::QueryRefine as usize] = 123;
        let mut sink = JsonlSink::from_writer(Vec::new());
        emit_snapshot(
            &mut sink,
            "escape \"test\"",
            &[
                ("label", FieldValue::Str(nasty.into())),
                ("rate", FieldValue::F64(0.125)),
            ],
            &snap,
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let fields = trace::parse_flat_json(text.trim_end()).unwrap();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key} in {text}"))
        };
        assert_eq!(
            get("event"),
            trace::JsonScalar::Str("escape \"test\"".into())
        );
        assert_eq!(get("label"), trace::JsonScalar::Str(nasty.into()));
        assert_eq!(get("rate"), trace::JsonScalar::Num("0.125".into()));
        assert_eq!(get("query_refine"), trace::JsonScalar::Num("123".into()));
    }

    /// A writer whose writes fail after the first `ok_writes` calls.
    struct FlakyWriter {
        ok_writes: usize,
        flush_fails: bool,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            if self.flush_fails {
                Err(io::Error::other("flush failed"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn jsonl_sink_counts_dropped_writes() {
        let mut sink = JsonlSink::from_writer(FlakyWriter {
            ok_writes: 1,
            flush_fails: false,
        });
        sink.emit("first", &[]);
        assert_eq!(sink.dropped_writes(), 0);
        sink.emit("second", &[]);
        sink.emit("third", &[]);
        assert_eq!(sink.dropped_writes(), 2, "failed writes are counted");
        let _ = sink.into_inner();
    }

    #[test]
    fn jsonl_sink_drop_count_survives_the_summary() {
        // Regression: the drop-time summary must report the accumulated
        // count without discarding it — `dropped_writes` stays accurate
        // after a consume, and a flush failure at drop is still counted.
        let mut sink = JsonlSink::from_writer(FlakyWriter {
            ok_writes: 0,
            flush_fails: false,
        });
        sink.emit("lost", &[]);
        sink.emit("also lost", &[]);
        assert_eq!(sink.dropped_writes(), 2);
        // try_into_inner flushes OK here; the count must not be reset by
        // the summary it prints.
        let sink2 = JsonlSink::from_writer(FlakyWriter {
            ok_writes: 0,
            flush_fails: true,
        });
        // Dropping a sink whose final flush fails must not panic; the
        // failure joins the count reported by the drop-time summary.
        drop(sink2);
        drop(sink);
    }

    #[test]
    fn jsonl_sink_try_into_inner_propagates_flush_errors() {
        let sink = JsonlSink::from_writer(FlakyWriter {
            ok_writes: usize::MAX,
            flush_fails: true,
        });
        assert!(sink.try_into_inner().is_err());

        let sink = JsonlSink::from_writer(Vec::new());
        assert!(sink.try_into_inner().is_ok(), "healthy writer is returned");
    }

    #[test]
    fn emit_snapshot_lists_only_nonzero_counters() {
        let mut snap = Snapshot::zero();
        snap.counters[Counter::DeltaCacheHit as usize] = 3;
        snap.counters[Counter::DeltaCacheCold as usize] = 1;
        snap.query_hist[1] = 2;
        let mut sink = JsonlSink::from_writer(Vec::new());
        emit_snapshot(
            &mut sink,
            "eval",
            &[("attack", FieldValue::Str("oppsla".into()))],
            &snap,
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"attack\":\"oppsla\""), "{text}");
        assert!(text.contains("\"delta_cache_hit\":3"), "{text}");
        assert!(text.contains("\"delta_cache_hit_rate\":0.75"), "{text}");
        assert!(text.contains("\"qhist_1\":2"), "{text}");
        assert!(!text.contains("query_baseline"), "{text}");
    }

    #[test]
    fn summary_is_deterministic_for_a_fixed_snapshot() {
        let mut snap = Snapshot::zero();
        snap.counters[Counter::QueryBaseline as usize] = 2;
        snap.query_hist[3] = 1;
        assert_eq!(snap.summary(), snap.summary());
        assert!(snap.summary().contains("query_baseline"));
        assert!(snap.summary().contains("[4, 8)  1"));
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_build_records_nothing() {
        count(Counter::QueryBaseline);
        count_n(Counter::QueryRefine, 10);
        observe_image_queries(7);
        let _t = op_timer(OpKind::Conv);
        drop(_t);
        flush();
        assert!(snapshot().is_zero());
        assert!(!enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn enabled_build_counts_and_flushes() {
        // Other tests in this process may record concurrently; assert on
        // deltas of counters this test owns exclusively.
        let before = snapshot();
        count(Counter::WeightCacheCorrupt);
        count_n(Counter::WeightCacheCorrupt, 4);
        observe_image_queries(9); // bucket 4: [8, 16)
        {
            let _t = op_timer(OpKind::CopySeg);
        }
        let delta = snapshot().since(&before);
        assert_eq!(delta.get(Counter::WeightCacheCorrupt), 5);
        assert_eq!(delta.query_hist[4], 1);
        assert_eq!(delta.op_calls[OpKind::CopySeg as usize], 1);
        assert!(enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn worker_threads_merge_on_join() {
        // Native join waits for full thread termination, TLS destructors
        // included. (`thread::scope` offers no such guarantee — its
        // completion signal fires when the closure returns, possibly
        // before destructors — which is why `parallel_map_with` workers
        // flush explicitly instead of relying on the Drop merge.)
        let before = snapshot();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        count(Counter::SynthAccepted);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        let delta = snapshot().since(&before);
        assert_eq!(delta.get(Counter::SynthAccepted), 400);
    }
}
