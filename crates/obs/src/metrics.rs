//! A lock-light live metrics registry for long-running processes.
//!
//! Unlike the feature-gated offline telemetry in the crate root (flushed
//! to JSONL after a run), these instruments are *always compiled* and
//! meant to be read while the process serves traffic: the attack server
//! threads them through its scheduler, admission gate, and sessions, and
//! exposes the registry through a `Stats` protocol frame and a
//! Prometheus-style `/metrics` text page.
//!
//! # Design
//!
//! * **Atomics only on the hot path.** Recording through a [`Counter`],
//!   [`Gauge`], or [`Histogram`] handle is one or three relaxed atomic
//!   RMWs; no lock is taken and nothing allocates. The registry's mutex
//!   guards *registration* (creating or looking up an instrument) and
//!   *readout* only — both off the hot path by construction.
//! * **No allocation after registration.** Handles are `Arc`s into
//!   fixed-size atomic storage; callers clone the `Arc` once at startup
//!   and record through it for the life of the process.
//! * **Passive by construction.** Nothing ever reads an instrument to
//!   make a decision — recording is write-only, so enabling metrics
//!   cannot perturb scheduling, query counts, or any other observable
//!   behavior. (The attack server's CI A/B-diffs its determinism digest
//!   with metrics on vs off to enforce this.)
//! * **Racy-but-monotone readout.** A readout does not stop writers;
//!   each value is an atomic load, so a snapshot taken mid-traffic may
//!   mix values from slightly different instants. Every instrument is
//!   monotone (counters) or a point-in-time level (gauges), so the skew
//!   is bounded by in-flight work and never produces negative rates.
//!
//! # Histograms
//!
//! [`Histogram`] buckets are log2-spaced over the full `u64` range:
//! bucket 0 holds the value 0, bucket `b` (1..=63) holds
//! `[2^(b-1), 2^b)`, and bucket 64 holds `[2^63, u64::MAX]`. The bounds
//! partition `u64` with no gaps or overlaps (property-tested), so every
//! observation lands in exactly one bucket. Quantile readout returns the
//! upper bound of the bucket where the cumulative count crosses the
//! rank — a ≤-factor-2 overestimate, which is the right bias for latency
//! alerting.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log2 buckets in a [`Histogram`] (value 0, one bucket per
/// power of two, and a top bucket absorbing `[2^63, u64::MAX]`).
pub const HIST_BUCKETS: usize = 65;

/// The bucket an observed value lands in: 0 for 0, `b` for
/// `[2^(b-1), 2^b)`, 64 for everything at or above `2^63`.
#[must_use]
pub fn hist_bucket(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The half-open bounds `[lo, hi)` of a bucket. The last bucket is
/// closed at the top: its `hi` is returned as `u64::MAX` and the bucket
/// includes `u64::MAX` itself.
///
/// # Panics
///
/// Panics when `bucket >= HIST_BUCKETS`.
#[must_use]
pub fn hist_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < HIST_BUCKETS, "bucket out of range");
    match bucket {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), 1 << b),
    }
}

/// A monotonically increasing counter. Handles are cheap `Arc` clones;
/// increments are single relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depths, live
/// connections). Signed so a transient release-before-acquire race in a
/// caller shows up as a visible negative level instead of wrapping.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    /// Adds `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// A log2-bucketed rolling histogram with quantile readout. One
/// observation is three relaxed atomic adds (bucket, count, sum).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[hist_bucket(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of every observed value (for means; wraps only after
    /// `u64::MAX` total, which no realistic run reaches).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A point-in-time copy of the per-bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Relaxed);
        }
        out
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket where the cumulative count reaches `ceil(q * count)` —
    /// an at-most-factor-2 overestimate. Returns 0 with no observations.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = hist_bounds(b);
                return if hi == u64::MAX { lo } else { hi };
            }
        }
        unreachable!("cumulative count reaches the total")
    }
}

/// One instrument registered in a [`Registry`].
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// One flattened readout value: a Prometheus-style key (name plus an
/// optional `{label="value",…}` selector) and its value at read time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `name` or `name{l1="v1",…}`; histogram keys carry `_count`,
    /// `_sum`, `_p50`, `_p90`, `_p99` suffixes on the name.
    pub key: String,
    /// The value; counter and histogram-count values are exact for
    /// totals below 2^53.
    pub value: f64,
}

/// A registry of named instruments. Registration and readout lock a
/// mutex; recording through the returned handles never does.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn labels_of(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

fn selector(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    s.push('}');
    s
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get_or_register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        let labels = labels_of(labels);
        let mut entries = self.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return pick(&e.instrument).unwrap_or_else(|| {
                panic!(
                    "metric {name}{} already registered as a {}",
                    selector(&labels),
                    e.instrument.kind()
                )
            });
        }
        let (handle, instrument) = make();
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            instrument,
        });
        handle
    }

    /// The counter `name` with `labels`, registering it on first use.
    /// Re-registration with the same name and labels returns the same
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics when the name/labels pair is already registered as a
    /// different instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_register(
            name,
            labels,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Instrument::Counter(c))
            },
        )
    }

    /// The gauge `name` with `labels`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics when the name/labels pair is already registered as a
    /// different instrument kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_register(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (Arc::clone(&g), Instrument::Gauge(g))
            },
        )
    }

    /// The histogram `name` with `labels`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics when the name/labels pair is already registered as a
    /// different instrument kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_register(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::default());
                (Arc::clone(&h), Instrument::Histogram(h))
            },
        )
    }

    /// Every registered value as flattened key/value samples, sorted by
    /// key (deterministic for a quiescent registry). Histograms flatten
    /// to `_count`, `_sum`, `_p50`, `_p90`, `_p99` keys.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn samples(&self) -> Vec<Sample> {
        let entries = self.lock();
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for e in entries.iter() {
            let sel = selector(&e.labels);
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.insert(format!("{}{sel}", e.name), c.get() as f64);
                }
                Instrument::Gauge(g) => {
                    out.insert(format!("{}{sel}", e.name), g.get() as f64);
                }
                Instrument::Histogram(h) => {
                    out.insert(format!("{}_count{sel}", e.name), h.count() as f64);
                    out.insert(format!("{}_sum{sel}", e.name), h.sum() as f64);
                    for (q, tag) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
                        out.insert(format!("{}_{tag}{sel}", e.name), h.quantile(q) as f64);
                    }
                }
            }
        }
        out.into_iter()
            .map(|(key, value)| Sample { key, value })
            .collect()
    }

    /// The registry as a Prometheus text-exposition page: `# TYPE`
    /// comments, integer-rendered counters and histogram buckets
    /// (cumulative `_bucket{le="…"}` series ending in `+Inf`), and
    /// `_sum`/`_count` per histogram. Instruments are sorted by name
    /// then labels, so the page is deterministic for a quiescent
    /// registry.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.lock();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            (&entries[a].name, &entries[a].labels).cmp(&(&entries[b].name, &entries[b].labels))
        });
        let mut page = String::new();
        let mut last_typed: Option<String> = None;
        for i in order {
            let e = &entries[i];
            if last_typed.as_deref() != Some(&e.name) {
                let _ = writeln!(page, "# TYPE {} {}", e.name, e.instrument.kind());
                last_typed = Some(e.name.clone());
            }
            let sel = selector(&e.labels);
            match &e.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(page, "{}{sel} {}", e.name, c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(page, "{}{sel} {}", e.name, g.get());
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (b, &n) in counts.iter().enumerate() {
                        cumulative += n;
                        if n == 0 && b + 1 != HIST_BUCKETS {
                            continue; // keep the page small; `le` is cumulative anyway
                        }
                        let hi = hist_bounds(b).1;
                        let le = if hi == u64::MAX {
                            "+Inf".to_owned()
                        } else {
                            hi.to_string()
                        };
                        let mut labels = e.labels.clone();
                        labels.push(("le".into(), le));
                        let _ =
                            writeln!(page, "{}_bucket{} {cumulative}", e.name, selector(&labels));
                    }
                    let _ = writeln!(page, "{}_sum{sel} {}", e.name, h.sum());
                    let _ = writeln!(page, "{}_count{sel} {}", e.name, h.count());
                }
            }
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_place_boundary_values() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1 << 62), 63);
        assert_eq!(hist_bucket(1 << 63), 64);
        assert_eq!(hist_bucket(u64::MAX), 64);
    }

    #[test]
    fn bounds_tile_with_no_gaps() {
        assert_eq!(hist_bounds(0), (0, 1));
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(hist_bounds(b).0, hist_bounds(b - 1).1, "bucket {b}");
        }
        let (lo, hi) = hist_bounds(HIST_BUCKETS - 1);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reads 0");
        for v in [1u64, 1, 1, 1, 100, 100, 100, 100, 100, 4000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 4 + 500 + 4000);
        // Ranks 1-4 land in [1,2), 5-9 in [64,128), 10 in [2048,4096).
        assert_eq!(h.quantile(0.4), 2);
        assert_eq!(h.quantile(0.5), 128);
        assert_eq!(h.quantile(0.9), 128);
        assert_eq!(h.quantile(0.99), 4096);
        assert_eq!(h.quantile(1.0), 4096);
    }

    #[test]
    fn quantile_of_the_top_bucket_reports_its_lower_bound() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.quantile(0.5), 1 << 63);
    }

    #[test]
    fn registration_dedupes_and_readout_is_sorted() {
        let r = Registry::new();
        let a = r.counter("jobs_done", &[]);
        let b = r.counter("jobs_done", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name+labels share one cell");
        let t0 = r.counter("tenant_jobs", &[("tenant", "t0")]);
        let t1 = r.counter("tenant_jobs", &[("tenant", "t1")]);
        t0.inc();
        t1.add(5);
        r.gauge("queue_depth", &[("shard", "mlp-shapes32")]).set(4);
        let samples = r.samples();
        let keys: Vec<&str> = samples.iter().map(|s| s.key.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "samples are key-sorted");
        let get = |k: &str| {
            samples
                .iter()
                .find(|s| s.key == k)
                .unwrap_or_else(|| panic!("missing {k} in {keys:?}"))
                .value
        };
        assert_eq!(get("jobs_done"), 3.0);
        assert_eq!(get("tenant_jobs{tenant=\"t0\"}"), 1.0);
        assert_eq!(get("tenant_jobs{tenant=\"t1\"}"), 5.0);
        assert_eq!(get("queue_depth{shard=\"mlp-shapes32\"}"), 4.0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn histogram_samples_flatten_quantiles() {
        let r = Registry::new();
        let h = r.histogram("job_latency_us", &[]);
        h.observe(3);
        h.observe(900);
        let samples = r.samples();
        let get = |k: &str| samples.iter().find(|s| s.key == k).unwrap().value;
        assert_eq!(get("job_latency_us_count"), 2.0);
        assert_eq!(get("job_latency_us_sum"), 903.0);
        assert_eq!(get("job_latency_us_p50"), 4.0);
        assert_eq!(get("job_latency_us_p99"), 1024.0);
    }

    #[test]
    fn prometheus_page_has_types_buckets_and_inf() {
        let r = Registry::new();
        r.counter("jobs_done", &[]).add(7);
        r.gauge("jobs_active", &[]).set(2);
        let h = r.histogram("lat_us", &[("shard", "mlp")]);
        h.observe(5);
        h.observe(5);
        h.observe(300);
        let page = r.render_prometheus();
        assert!(page.contains("# TYPE jobs_done counter"), "{page}");
        assert!(page.contains("jobs_done 7"), "{page}");
        assert!(page.contains("# TYPE jobs_active gauge"), "{page}");
        assert!(page.contains("jobs_active 2"), "{page}");
        assert!(page.contains("# TYPE lat_us histogram"), "{page}");
        assert!(
            page.contains("lat_us_bucket{shard=\"mlp\",le=\"8\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_bucket{shard=\"mlp\",le=\"512\"} 3"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_bucket{shard=\"mlp\",le=\"+Inf\"} 3"),
            "{page}"
        );
        assert!(page.contains("lat_us_sum{shard=\"mlp\"} 310"), "{page}");
        assert!(page.contains("lat_us_count{shard=\"mlp\"} 3"), "{page}");
        assert_eq!(page, r.render_prometheus(), "page is deterministic");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c", &[("who", "a\"b\\c")]).inc();
        let page = r.render_prometheus();
        assert!(page.contains("c{who=\"a\\\"b\\\\c\"} 1"), "{page}");
    }
}
